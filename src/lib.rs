#![forbid(unsafe_code)]
//! # stream-merging
//!
//! A complete implementation of **guaranteed start-up delay Media-on-Demand
//! with stream merging** (Bar-Noy, Goshi, Ladner — SPAA 2003; journal
//! version: *Journal of Discrete Algorithms* 4 (2006) 72–105).
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`fib`] | exact Fibonacci kernel (tables, fast doubling, Zeckendorf) |
//! | [`core`] | merge trees/forests, stream lengths, costs, receiving programs, buffers |
//! | [`offline`] | §3: optimal off-line algorithms (closed forms, O(n)/O(L+n) constructions, bounded buffers, receive-all) |
//! | [`online`] | §4: on-line delay-guaranteed algorithm, dyadic (α,β) merging, batching, patching/ERMT/tapping baselines |
//! | [`broadcast`] | §1's static-allocation baselines: staggered, pyramid, skyscraper, fast, harmonic broadcasting |
//! | [`sim`] | discrete-event Media-on-Demand simulator (correctness oracle) |
//! | [`serve`] | the serving layer: multi-title live ingest with traffic-time delay planning — overload becomes start-up delay, never a rejection |
//! | [`server`] | §5's multi-object server: Zipf catalogs, per-title delay planning, aggregate load |
//! | [`workload`] | constant-rate / Poisson arrival processes |
//! | [`experiments`] | regeneration of every figure and table of the paper |
//!
//! ## Quickstart
//!
//! ```
//! use stream_merging::offline::forest::optimal_forest;
//! use stream_merging::core::{full_cost, consecutive_slots};
//!
//! // A 2-hour movie with a 15-minute guaranteed delay: L = 8 slots.
//! // Serve 8 consecutive slots of arrivals optimally:
//! let plan = optimal_forest(8, 8);
//! let times = consecutive_slots(8);
//! let cost = full_cost(&plan.forest, &times, 8);
//! assert_eq!(cost as u64, plan.cost);
//! ```

pub use sm_broadcast as broadcast;
pub use sm_core as core;
pub use sm_experiments as experiments;
pub use sm_fib as fib;
pub use sm_offline as offline;
pub use sm_online as online;
pub use sm_serve as serve;
pub use sm_server as server;
pub use sm_sim as sim;
pub use sm_workload as workload;
