//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand` 0.9 API surface the workspace
//! uses: the [`Rng`] core trait, the [`RngExt`] extension providing
//! [`RngExt::random`], [`SeedableRng::seed_from_u64`], and the small, fast,
//! deterministic [`rngs::SmallRng`].
//!
//! The generator is not cryptographically secure — it is a SplitMix64 stream,
//! which is more than adequate for the simulation workloads and statistical
//! tests in this repository and has the virtue of being exactly reproducible
//! from a `u64` seed on every platform.

/// A source of random `u64`s. Object-safe so `dyn Rng` and `R: Rng + ?Sized`
/// bounds both work.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`Rng`]'s bit stream.
pub trait Random {
    /// Draws one uniformly distributed value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)`, using the top 24 bits.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods over any [`Rng`]; blanket-implemented.
pub trait RngExt: Rng {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_below: bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, irrelevant for simulation use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `bool` that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; the stream is a pure function
    /// of the seed on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// A small, fast, deterministic non-cryptographic generator
    /// (SplitMix64: the seeding generator recommended by the xoshiro
    /// authors, with 64 bits of state and full period 2^64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero weak state by pre-mixing the seed.
            SmallRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_below_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.random_below(bound) < bound);
            }
        }
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            use crate::RngExt;
            rng.random()
        }
        let mut rng = SmallRng::seed_from_u64(11);
        let u = draw(&mut rng);
        assert!((0.0..1.0).contains(&u));
    }
}
