//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API used by the workspace's property
//! tests: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`
//! / `boxed`, strategies for numeric ranges, tuples, vectors-of-strategies
//! and [`strategy::Just`], [`collection::vec`], [`test_runner::ProptestConfig`],
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with its values via the assert
//!   message, but no minimization is attempted;
//! * **deterministic** — each test function derives its RNG seed from its
//!   own name, so failures reproduce exactly across runs and platforms;
//! * `prop_assert!`-family macros panic (like `assert!`) instead of
//!   returning `Err`, which composes fine with bodies that `return Ok(())`;
//! * the **`SM_PROPTEST_CASES`** environment variable overrides every
//!   test's case count at runtime (real proptest spells this
//!   `PROPTEST_CASES`): CI raises the equivalence gates' depth without
//!   changing local defaults. Unset, empty, zero, or unparsable values
//!   fall back to the configured count.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy producing `T`.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Half-open: the unit draw here is strictly below 1, so
                    // the excluded endpoint is never produced.
                    self.start + rng.unit_f64_exclusive() as $t * (self.end - self.start)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    /// A vector of strategies generates a vector of values, element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size arguments for [`vec()`]: a fixed `usize`, a `Range`, or
    /// a `RangeInclusive`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u128;
            let n = self.size.lo + ((rng.next_u64() as u128 * span) >> 64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic RNG driving generation.

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs each property with `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases (real proptest defaults to 256; the stand-in trades
        /// depth for wall-clock since it cannot shrink failures anyway).
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Rejection marker returned by `prop_assume!` when its condition fails;
    /// the harness skips the case.
    #[derive(Debug)]
    pub struct Reject;

    /// The effective case count for one `proptest!` test function: the
    /// `SM_PROPTEST_CASES` environment variable, when set to a positive
    /// integer, overrides `default_cases` (whatever the block's
    /// `ProptestConfig` configured). CI uses this to deepen the
    /// equivalence gates without slowing local `cargo test` runs.
    pub fn resolve_cases(default_cases: u32) -> u32 {
        match ::std::env::var("SM_PROPTEST_CASES") {
            Ok(raw) => cases_override(&raw, default_cases),
            Err(_) => default_cases,
        }
    }

    /// Pure core of [`resolve_cases`]: parses an override, falling back to
    /// the default on empty, zero, or unparsable input.
    fn cases_override(raw: &str, default_cases: u32) -> u32 {
        raw.trim()
            .parse::<u32>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or(default_cases)
    }

    #[cfg(test)]
    mod tests {
        use super::cases_override;

        #[test]
        fn override_parses_positive_integers_and_rejects_the_rest() {
            assert_eq!(cases_override("128", 32), 128);
            assert_eq!(cases_override(" 7 ", 32), 7, "whitespace is trimmed");
            assert_eq!(cases_override("0", 32), 32, "zero cases would test nothing");
            assert_eq!(cases_override("", 32), 32);
            assert_eq!(cases_override("lots", 32), 32);
            assert_eq!(cases_override("-4", 32), 32);
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary byte string (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1]` (inclusive upper end via 53-bit grid);
        /// used by `RangeInclusive` strategies so both endpoints are
        /// reachable.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }

        /// Uniform `f64` in `[0, 1)`; used by half-open `Range` strategies
        /// so the excluded upper endpoint is never generated.
        pub fn unit_f64_exclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property; panics with the formatted message
/// on failure (the stand-in does not shrink, so this is equivalent to
/// `assert!` plus the generated-input context in the panic location).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute, then `#[test]` functions whose
/// arguments are `pattern in strategy` pairs. Each function runs
/// `config.cases` times with freshly generated inputs; bodies may
/// `return Ok(())` early or reject a case with `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let _: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (|| { $body Ok(()) })();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pair(usize, usize);

    fn arb_pair(max: usize) -> impl Strategy<Value = Pair> {
        (1..=max).prop_flat_map(|a| (Just(a), 0..a).prop_map(|(a, b)| Pair(a, b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_hit_their_bounds(x in 0u64..10, y in -5i64..=5, f in 0.25f64..=0.75) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn flat_map_respects_dependency(p in arb_pair(30)) {
            prop_assert!(p.1 < p.0, "{p:?}");
        }

        #[test]
        fn vec_sizes_and_elements_in_range(
            v in crate::collection::vec(3i64..=9, 2..=5)
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            for e in v {
                prop_assert!((3..=9).contains(&e));
            }
        }

        #[test]
        fn assume_skips_and_early_return_works(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            if n == 0 {
                return Ok(());
            }
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    fn vec_of_strategies_is_elementwise() {
        use crate::strategy::{BoxedStrategy, Strategy};
        use crate::test_runner::TestRng;
        let strategies: Vec<BoxedStrategy<usize>> = (1usize..6).map(|i| (0..i).boxed()).collect();
        let mut rng = TestRng::from_name("elementwise");
        for _ in 0..100 {
            let v = strategies.generate(&mut rng);
            assert_eq!(v.len(), 5);
            for (i, &x) in v.iter().enumerate() {
                assert!(x < i + 1);
            }
        }
    }

    #[test]
    fn half_open_float_range_excludes_upper_endpoint() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_name("half-open");
        for _ in 0..100_000 {
            let x = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&x), "got {x}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
