//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly (no `Result`), and a poisoned lock is recovered
//! rather than propagated — matching `parking_lot`'s no-poisoning semantics.

use std::sync::TryLockError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error: if a previous
    /// holder panicked, the data is handed over as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the exclusive borrow guarantees uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
