//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API used by the workspace's benches
//! (`Criterion::bench_function`, `benchmark_group` with `sample_size` and
//! `finish`, `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros) on top of a simple
//! wall-clock harness: each benchmark is auto-calibrated to a per-sample
//! iteration count, timed over `sample_size` samples, and the median
//! per-iteration time is reported on stdout.
//!
//! There is no statistical analysis, plotting, or baseline comparison — the
//! goal is that `cargo bench` compiles and produces stable, readable numbers
//! without network access to crates.io.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; retained for API compatibility.
/// The stand-in runs one setup per routine invocation regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Times `routine`, calling it many times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes ≥ ~1 ms per sample,
        // so timer resolution does not dominate.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn report(id: &str, samples: &mut Vec<Duration>, iters: u64) {
    if samples.is_empty() {
        return;
    }
    let med = median(samples);
    let per_iter = med.as_secs_f64() / iters.max(1) as f64;
    println!("bench: {id:<48} {:>12.3} µs/iter", per_iter * 1e6);
    samples.clear();
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut b = Bencher {
        samples: &mut samples,
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    let iters = b.iters_per_sample;
    report(id, &mut samples, iters);
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; retained for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Default sample count per benchmark (criterion's default is 100; the
    /// stand-in uses a smaller default since it reports only the median).
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }
}

impl Criterion {
    /// Entry point used by the `criterion_group!` expansion.
    pub fn default_for_harness() -> Self {
        Criterion::new()
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default_for_harness();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's
/// macro. Works with `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a bare
            // `--test` run (from `cargo test --benches`) should not loop
            // forever, so flags are simply ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::new().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn median_of_odd_list() {
        let mut v = vec![
            Duration::from_micros(3),
            Duration::from_micros(1),
            Duration::from_micros(2),
        ];
        assert_eq!(median(&mut v), Duration::from_micros(2));
    }
}
