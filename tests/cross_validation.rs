//! Cross-crate consistency: the same quantity computed along independent
//! paths must agree (closed form ↔ DP ↔ tree evaluation ↔ simulation ↔
//! general-arrivals DP).

use stream_merging::core::{consecutive_slots, full_cost, merge_cost};
use stream_merging::offline::closed_form::ClosedForm;
use stream_merging::offline::dp;
use stream_merging::offline::forest::{optimal_forest, optimal_full_cost};
use stream_merging::offline::general;
use stream_merging::offline::tree_builder::optimal_merge_tree;
use stream_merging::online::delay_guaranteed::online_full_cost;
use stream_merging::sim::simulate;

#[test]
#[allow(clippy::needless_range_loop)] // index parallels the math
fn five_ways_to_compute_mn() {
    let cf = ClosedForm::new();
    let dp_table = dp::merge_cost_table(120);
    for n in 1usize..=120 {
        let closed = cf.merge_cost(n as u64);
        let via_dp = dp_table[n];
        let via_tree = merge_cost(&optimal_merge_tree(n), &consecutive_slots(n)) as u64;
        let via_dp_tree = merge_cost(&dp::optimal_tree_dp(n), &consecutive_slots(n)) as u64;
        let via_general = general::optimal_tree(&consecutive_slots(n)).cost as u64;
        assert_eq!(closed, via_dp, "n = {n}");
        assert_eq!(closed, via_tree, "n = {n}");
        assert_eq!(closed, via_dp_tree, "n = {n}");
        assert_eq!(closed, via_general, "n = {n}");
    }
}

#[test]
fn four_ways_to_compute_full_cost() {
    for (media_len, n) in [(4u64, 16usize), (15, 8), (15, 14), (10, 60), (21, 100)] {
        let analytic = optimal_full_cost(media_len, n as u64);
        let plan = optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        let via_model = full_cost(&plan.forest, &times, media_len) as u64;
        let via_sim = simulate(&plan.forest, &times, media_len)
            .unwrap()
            .total_units as u64;
        let (_, via_general) = general::optimal_forest(&times, media_len);
        assert_eq!(analytic, via_model, "L = {media_len}, n = {n}");
        assert_eq!(analytic, via_sim, "L = {media_len}, n = {n}");
        assert_eq!(analytic, via_general as u64, "L = {media_len}, n = {n}");
    }
}

#[test]
fn online_cost_closed_form_vs_forest_vs_sim() {
    use stream_merging::online::DelayGuaranteedOnline;
    for (media_len, n) in [(15u64, 50usize), (7, 23), (100, 170)] {
        let alg = DelayGuaranteedOnline::new(media_len);
        let closed = online_full_cost(media_len, n as u64);
        let forest = alg.forest_after(n);
        let times = consecutive_slots(n);
        let via_model = full_cost(&forest, &times, media_len) as u64;
        let via_sim = simulate(&forest, &times, media_len).unwrap().total_units as u64;
        assert_eq!(closed, via_model);
        assert_eq!(closed, via_sim);
    }
}

#[test]
fn dyadic_cost_equals_model_cost_on_integer_grid() {
    use stream_merging::online::dyadic::{DyadicConfig, DyadicMerger};
    // Feed integer times; compare f64 dyadic accounting against the exact
    // i64 model on the same forest shape.
    let mut m = DyadicMerger::new(DyadicConfig::golden_poisson(), 30.0);
    let times_i: Vec<i64> = (0..40).map(|i| i * 2).collect();
    for &t in &times_i {
        m.on_arrival(t as f64);
    }
    let (forest, _) = m.forest();
    let f64_cost = m.total_cost();
    let exact = full_cost(&forest, &times_i, 30);
    assert!((f64_cost - exact as f64).abs() < 1e-6);
}

#[test]
fn fib_table_vs_fast_doubling_vs_binet() {
    let table = stream_merging::fib::FibTable::new();
    for k in 0..=70 {
        let (fk, _) = stream_merging::fib::fib_fast_doubling(k);
        assert_eq!(table.get(k), fk);
        assert_eq!(table.get(k), stream_merging::fib::binet_approx(k));
    }
}
