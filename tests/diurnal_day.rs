//! A full simulated day of diurnal VoD demand (§5's motivating scenario):
//! the hybrid server must track the daily cycle — DG through prime time,
//! dyadic through the trough — and beat both pure policies over the day.

use stream_merging::online::batching::batched_dyadic_cost;
use stream_merging::online::delay_guaranteed::online_full_cost;
use stream_merging::online::dyadic::DyadicConfig;
use stream_merging::online::hybrid::{HybridConfig, HybridServer, Mode};
use stream_merging::workload::{ArrivalProcess, DiurnalProcess};

const MEDIA: u64 = 100; // slots; delay = 1 slot = 1 "minute"
const DAY: f64 = 1440.0;

/// Three simulated days of diurnal arrivals in slot units: prime time
/// around 2 arrivals/slot, a near-idle trough (peak-to-trough ratio
/// (1+s)/(1−s) = 99 for s = 0.98) — the load shape §5's hybrid proposal is
/// aimed at.
fn day_arrivals(seed: u64) -> Vec<f64> {
    DiurnalProcess::new(1.0, 0.98, DAY, 0.0, seed).generate(3.0 * DAY)
}

/// Hybrid tuned to the measured Fig. 11 crossover: dyadic only pays below
/// ~0.4 arrivals/slot (the default threshold of 1.0 suits bimodal
/// burst/lull traffic; a diurnal continuum needs the crossover itself).
fn tuned_config() -> HybridConfig {
    HybridConfig {
        rate_threshold: 0.4,
        ..HybridConfig::default()
    }
}

fn slot_groups(arrivals: &[f64], horizon_slots: usize) -> Vec<Vec<f64>> {
    let mut groups = vec![Vec::new(); horizon_slots];
    for &t in arrivals {
        let slot = (t.ceil() as usize).clamp(1, horizon_slots) - 1;
        groups[slot].push(t);
    }
    groups
}

#[test]
fn hybrid_tracks_the_daily_cycle() {
    let arrivals = day_arrivals(17);
    let horizon = (3.0 * DAY) as usize;
    let groups = slot_groups(&arrivals, horizon);
    let mut server = HybridServer::new(MEDIA, tuned_config());
    for g in &groups {
        server.feed_slot(g);
    }
    let history = server.history();
    // Prime time (first quarter of each day) should be mostly DG; the
    // trough (third quarter) mostly dyadic.
    let day = DAY as usize;
    let frac_dg = |lo: usize, hi: usize| {
        let dg = history[lo..hi]
            .iter()
            .filter(|m| matches!(m, Mode::DelayGuaranteed))
            .count();
        dg as f64 / (hi - lo) as f64
    };
    // Use the second day (warmed up). The deep trough is centered at 3/4 of
    // the cycle (rate ≈ 0.02/slot); the shoulders on either side straddle
    // the crossover and may run either mode.
    let peak = frac_dg(day + 50, day + day / 4);
    let trough = frac_dg(day + day * 7 / 10, day + day * 4 / 5);
    assert!(peak > 0.8, "prime time should run DG: fraction {peak}");
    assert!(
        trough < 0.2,
        "the trough should run dyadic: fraction {trough}"
    );
}

#[test]
fn hybrid_beats_both_pure_policies_over_the_day() {
    let mut hybrid_costs = 0.0f64;
    let mut dg_costs = 0.0f64;
    let mut dyadic_costs = 0.0f64;
    for seed in [3u64, 7, 11] {
        let arrivals = day_arrivals(seed);
        let horizon = (3.0 * DAY) as usize;
        let groups = slot_groups(&arrivals, horizon);
        let mut server = HybridServer::new(MEDIA, tuned_config());
        for g in &groups {
            server.feed_slot(g);
        }
        hybrid_costs += server.total_cost();
        dg_costs += online_full_cost(MEDIA, horizon as u64) as f64;
        dyadic_costs +=
            batched_dyadic_cost(DyadicConfig::golden_poisson(), &arrivals, 1.0, MEDIA as f64);
    }
    assert!(
        hybrid_costs < dg_costs,
        "hybrid {hybrid_costs} should beat pure DG {dg_costs} on a day with a trough"
    );
    assert!(
        hybrid_costs < dyadic_costs,
        "hybrid {hybrid_costs} should beat pure dyadic {dyadic_costs} on a day with prime time"
    );
}

#[test]
fn diurnal_demand_is_day_shaped() {
    let arrivals = day_arrivals(5);
    let day = DAY;
    // Count second-day arrivals by quarter.
    let mut quarters = [0usize; 4];
    for &t in &arrivals {
        if (day..2.0 * day).contains(&t) {
            let q = (((t - day) / day) * 4.0) as usize;
            quarters[q.min(3)] += 1;
        }
    }
    assert!(
        quarters[0] > 3 * quarters[2],
        "prime time {} vs trough {}",
        quarters[0],
        quarters[2]
    );
}
