//! End-to-end oracle tests: every schedule produced by any algorithm in the
//! workspace must *execute* — uninterrupted playback, ≤ 2 concurrent
//! streams, Lemma-15 buffers — and its simulated bandwidth must equal the
//! analytic cost.

use stream_merging::core::{consecutive_slots, required_buffer};
use stream_merging::offline::forest::{optimal_forest, optimal_forest_bounded_buffer};
use stream_merging::offline::general;
use stream_merging::online::DelayGuaranteedOnline;
use stream_merging::sim::{simulate, simulate_with, SimConfig};

#[test]
fn optimal_forests_execute_across_grid() {
    for media_len in [2u64, 5, 8, 15, 21, 40] {
        for n in [1usize, 2, 7, 8, 13, 25, 60] {
            let plan = optimal_forest(media_len, n);
            let times = consecutive_slots(n);
            let report = simulate(&plan.forest, &times, media_len)
                .unwrap_or_else(|e| panic!("L = {media_len}, n = {n}: {e}"));
            assert_eq!(
                report.total_units, plan.cost as i64,
                "bandwidth mismatch at L = {media_len}, n = {n}"
            );
            assert!(report.clients.iter().all(|c| c.max_concurrent <= 2));
            assert!(report.clients.iter().all(|c| c.min_slack >= 0));
        }
    }
}

#[test]
fn simulated_buffers_equal_lemma15_everywhere() {
    for media_len in [8u64, 15, 30] {
        for n in [8usize, 20, 45] {
            let plan = optimal_forest(media_len, n);
            let times = consecutive_slots(n);
            let report = simulate(&plan.forest, &times, media_len).unwrap();
            for cr in &report.clients {
                let (ti, local) = plan.forest.locate(cr.client);
                let tree = &plan.forest.trees()[ti];
                let start = plan.forest.tree_start(ti);
                let local_times = &times[start..start + tree.len()];
                assert_eq!(
                    cr.max_buffer,
                    required_buffer(tree, local_times, media_len, local),
                    "client {} (L = {media_len}, n = {n})",
                    cr.client
                );
            }
        }
    }
}

#[test]
fn online_forests_execute() {
    for media_len in [7u64, 15, 100] {
        let alg = DelayGuaranteedOnline::new(media_len);
        for n in [1usize, 5, 34, 120] {
            let forest = alg.forest_after(n);
            let times = consecutive_slots(n);
            let report = simulate(&forest, &times, media_len)
                .unwrap_or_else(|e| panic!("L = {media_len}, n = {n}: {e}"));
            assert_eq!(report.total_units as u64, alg.total_cost_after(n as u64));
        }
    }
}

#[test]
fn bounded_buffer_forests_respect_bound_in_simulation() {
    for (media_len, n, buffer) in [(20u64, 40usize, 4u64), (15, 33, 3), (30, 60, 7)] {
        let plan = optimal_forest_bounded_buffer(media_len, n, buffer);
        let times = consecutive_slots(n);
        let report = simulate_with(
            &plan.forest,
            &times,
            media_len,
            SimConfig {
                buffer_bound: Some(buffer),
                ..SimConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("L = {media_len}, n = {n}, B = {buffer}: {e}"));
        assert!(report.clients.iter().all(|c| c.max_buffer <= buffer as i64));
    }
}

#[test]
fn general_dp_forests_execute_on_irregular_arrivals() {
    let cases: Vec<Vec<i64>> = vec![
        vec![0, 1, 2, 3, 9, 10, 11, 30],
        vec![0, 4, 5, 6, 7, 8],
        vec![0, 2, 4, 8, 16, 32],
    ];
    for times in cases {
        let (forest, cost) = general::optimal_forest(&times, 12);
        let report =
            simulate(&forest, &times, 12).unwrap_or_else(|e| panic!("times {times:?}: {e}"));
        assert_eq!(report.total_units, cost, "times {times:?}");
    }
}

#[test]
fn peak_bandwidth_bounded_by_tree_heights() {
    // Any slot's concurrent streams within one tree is at most the number
    // of overlapping stream intervals; sanity-check the profile is sane and
    // the average matches total/units.
    let plan = optimal_forest(100, 200);
    let times = consecutive_slots(200);
    let report = simulate(&plan.forest, &times, 100).unwrap();
    let bw = &report.bandwidth;
    assert_eq!(bw.total_units(), report.total_units);
    assert!(bw.peak() as i64 <= report.total_units);
    assert!(bw.average() > 0.0);
    assert!((bw.average() - report.total_units as f64 / bw.span() as f64).abs() < 1e-9);
}

#[test]
fn dense_and_event_engines_agree_end_to_end() {
    // The proptest suite pins equivalence on randomized inputs; this pins
    // it on the paper's own plans, through the facade crate.
    for (media_len, n) in [(15u64, 8usize), (40, 60), (100, 200)] {
        let plan = optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        let dense = simulate_with(&plan.forest, &times, media_len, SimConfig::dense()).unwrap();
        let events = simulate_with(&plan.forest, &times, media_len, SimConfig::events()).unwrap();
        assert_eq!(dense, events, "L = {media_len}, n = {n}");
    }
}
