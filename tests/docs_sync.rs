//! Documentation drift gate: fails when `README.md` / `ARCHITECTURE.md`
//! fall out of step with the workspace they describe. Runs in the tier-1
//! test suite and as an explicit CI step, so the front-door pages cannot
//! silently rot.

use std::fs;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = root().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
}

/// Every entry of the `cases` array in `BENCH_scale.json`, as raw lines.
fn bench_case_lines(json: &str) -> Vec<&str> {
    json.lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"name\""))
        .collect()
}

/// Extracts `"key": <number>` from a JSON case line.
fn json_number(line: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\": ");
    let start = line
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + needle.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key} in {line}"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in {line}: {e}"))
}

#[test]
fn readme_exists_and_cross_links_the_doc_set() {
    let readme = read("README.md");
    for link in ["ARCHITECTURE.md", "ROADMAP.md", "PAPER.md", "PAPERS.md"] {
        assert!(readme.contains(link), "README.md must link {link}");
    }
    // The quickstart must quote the tier-1 gate verbatim.
    assert!(
        readme.contains("cargo build --release && cargo test -q"),
        "README.md quickstart must state the tier-1 command"
    );
    // The offline-build caveat is load-bearing for contributors.
    assert!(
        readme.contains("third_party/"),
        "README.md must explain the vendored third_party/ stubs"
    );
}

#[test]
fn readme_workspace_map_matches_cargo_members() {
    let readme = read("README.md");
    let manifest = read("Cargo.toml");
    let mut crates_seen = 0;
    for line in manifest.lines() {
        let line = line.trim().trim_matches(|c| c == '"' || c == ',');
        if let Some(dir) = line.strip_prefix("crates/") {
            let krate = format!("sm-{dir}");
            assert!(
                readme.contains(&krate),
                "README.md workspace map is missing workspace member `{krate}`"
            );
            crates_seen += 1;
        }
    }
    assert_eq!(crates_seen, 11, "expected the 11 sm-* workspace members");
}

#[test]
fn readme_example_tour_names_real_examples() {
    let readme = read("README.md");
    let mut found = 0;
    for chunk in readme.split("--example ").skip(1) {
        let name: String = chunk
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let path = root().join("examples").join(format!("{name}.rs"));
        assert!(
            path.exists(),
            "README.md tours `--example {name}` but {} does not exist",
            path.display()
        );
        found += 1;
    }
    assert!(found >= 5, "README.md should tour the examples directory");
}

#[test]
fn architecture_documents_the_runtime_pieces() {
    let arch = read("ARCHITECTURE.md");
    for piece in [
        "engine::events",
        "engine::dense",
        "ScheduleStream",
        "simulate_streaming",
        "simulate_dynamic",
        "simulate_dynamic_sequential",
        "parallel_map",
        "DynamicError",
        "EpochBreakdown",
    ] {
        assert!(arch.contains(piece), "ARCHITECTURE.md must cover {piece}");
    }
    assert!(
        read("ROADMAP.md").contains("ARCHITECTURE.md"),
        "ROADMAP.md must cross-link ARCHITECTURE.md"
    );
}

#[test]
fn bench_json_schema_is_documented_field_by_field() {
    let arch = read("ARCHITECTURE.md");
    let bench_src = read("crates/bench/benches/scale.rs");
    // One canonical field list, checked against BOTH the producer and the
    // docs — drift on either side fails here.
    for field in [
        "bench",
        "cases",
        "name",
        "arrivals",
        "engine",
        "wall_ms",
        "peak_streams",
        "total_units",
    ] {
        assert!(
            bench_src.contains(&format!("\\\"{field}\\\"")),
            "benches/scale.rs no longer emits `{field}` — update this test and ARCHITECTURE.md"
        );
        assert!(
            arch.contains(&format!("`{field}`")),
            "ARCHITECTURE.md must document the BENCH_scale.json field `{field}`"
        );
    }
}

#[test]
fn committed_bench_trajectory_has_the_dynamic_datapoints() {
    let json = read("BENCH_scale.json");
    let cases = bench_case_lines(&json);
    assert!(
        cases.len() >= 5,
        "BENCH_scale.json should carry the three sim shapes plus both dynamic spines"
    );
    let dynamic: Vec<&&str> = cases
        .iter()
        .filter(|l| l.contains("server_dynamic"))
        .collect();
    let piped = dynamic
        .iter()
        .find(|l| l.contains("\"pipelined\""))
        .expect("BENCH_scale.json must carry the pipelined dynamic datapoint");
    let seq = dynamic
        .iter()
        .find(|l| l.contains("\"sequential\""))
        .expect("BENCH_scale.json must carry the sequential dynamic datapoint");
    let (piped_ms, seq_ms) = (json_number(piped, "wall_ms"), json_number(seq, "wall_ms"));
    // The acceptance bar of the cross-epoch pipeline: the committed
    // full-size run realizes the overlap (or at worst breaks even).
    assert!(
        piped_ms <= seq_ms,
        "committed dynamic datapoint regressed: pipelined {piped_ms} ms > sequential {seq_ms} ms"
    );
    // Identical workload ⇒ identical deterministic outputs.
    assert_eq!(
        json_number(piped, "total_units"),
        json_number(seq, "total_units"),
        "the two dynamic spines must report identical stream-minutes"
    );
    assert_eq!(
        json_number(piped, "peak_streams"),
        json_number(seq, "peak_streams"),
        "the two dynamic spines must report identical peaks"
    );
}

#[test]
fn doc_front_door_files_are_tracked_alongside_the_paper_docs() {
    for page in ["README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"] {
        assert!(
            Path::new(&root().join(page)).exists(),
            "{page} must exist at the workspace root"
        );
    }
}
