//! Documentation drift gate: fails when `README.md` / `ARCHITECTURE.md`
//! fall out of step with the workspace they describe. Runs in the tier-1
//! test suite and as an explicit CI step, so the front-door pages cannot
//! silently rot.

use std::fs;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = root().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
}

/// Every entry of the `cases` array in `BENCH_scale.json`, as raw lines.
fn bench_case_lines(json: &str) -> Vec<&str> {
    json.lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"name\""))
        .collect()
}

/// Extracts `"key": <number>` from a JSON case line.
fn json_number(line: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\": ");
    let start = line
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + needle.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key} in {line}"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in {line}: {e}"))
}

#[test]
fn readme_exists_and_cross_links_the_doc_set() {
    let readme = read("README.md");
    for link in ["ARCHITECTURE.md", "ROADMAP.md", "PAPER.md", "PAPERS.md"] {
        assert!(readme.contains(link), "README.md must link {link}");
    }
    // The quickstart must quote the tier-1 gate verbatim.
    assert!(
        readme.contains("cargo build --release && cargo test -q"),
        "README.md quickstart must state the tier-1 command"
    );
    // The offline-build caveat is load-bearing for contributors.
    assert!(
        readme.contains("third_party/"),
        "README.md must explain the vendored third_party/ stubs"
    );
}

#[test]
fn readme_workspace_map_matches_cargo_members() {
    let readme = read("README.md");
    let manifest = read("Cargo.toml");
    let mut crates_seen = 0;
    for line in manifest.lines() {
        let line = line.trim().trim_matches(|c| c == '"' || c == ',');
        if let Some(dir) = line.strip_prefix("crates/") {
            let krate = format!("sm-{dir}");
            assert!(
                readme.contains(&krate),
                "README.md workspace map is missing workspace member `{krate}`"
            );
            crates_seen += 1;
        }
    }
    assert_eq!(crates_seen, 13, "expected the 13 sm-* workspace members");
}

#[test]
fn readme_example_tour_names_real_examples() {
    let readme = read("README.md");
    let mut found = 0;
    for chunk in readme.split("--example ").skip(1) {
        let name: String = chunk
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let path = root().join("examples").join(format!("{name}.rs"));
        assert!(
            path.exists(),
            "README.md tours `--example {name}` but {} does not exist",
            path.display()
        );
        found += 1;
    }
    assert!(found >= 5, "README.md should tour the examples directory");
}

#[test]
fn architecture_documents_the_runtime_pieces() {
    let arch = read("ARCHITECTURE.md");
    for piece in [
        "engine::events",
        "engine::dense",
        "engine::incremental",
        "ScheduleStream",
        "simulate_streaming",
        "simulate_incremental",
        "IncrementalEngine",
        "sm-serve",
        "ServeConfig",
        "ServeReport",
        "serve_with",
        "serve_multi",
        "MultiServeConfig",
        "TitleConfig",
        "PolicySwap",
        "DelayStats",
        "merge_runs",
        "license chain",
        "rejected == 0",
        "simulate_dynamic",
        "simulate_dynamic_sequential",
        "parallel_map",
        "DynamicError",
        "EpochBreakdown",
        "DynamicConfig",
        "plan_ahead",
        "PlannerMemo",
    ] {
        assert!(arch.contains(piece), "ARCHITECTURE.md must cover {piece}");
    }
    assert!(
        read("ROADMAP.md").contains("ARCHITECTURE.md"),
        "ROADMAP.md must cross-link ARCHITECTURE.md"
    );
}

/// The rule ids `sm-lint` actually ships, parsed from its `RULE_IDS`
/// array — the same source of truth the CLI's `--list-rules` prints.
fn shipped_lint_rules() -> Vec<String> {
    let lib = read("crates/lint/src/lib.rs");
    let array = lib
        .split("pub const RULE_IDS")
        .nth(1)
        .expect("crates/lint/src/lib.rs must declare RULE_IDS")
        .split("];")
        .next()
        .expect("unterminated RULE_IDS array");
    array
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect()
}

#[test]
fn architecture_rule_catalog_matches_shipped_lint_rules() {
    let rules = shipped_lint_rules();
    assert_eq!(rules.len(), 5, "sm-lint ships five rules, got {rules:?}");
    let arch = read("ARCHITECTURE.md");
    for rule in &rules {
        assert!(
            arch.contains(&format!("`{rule}`")),
            "ARCHITECTURE.md's rule catalog is missing shipped rule `{rule}`"
        );
        let snake = rule.replace('-', "_");
        for kind in ["fail", "pass"] {
            let fixture = root().join(format!("crates/lint/tests/fixtures/{snake}_{kind}.rs"));
            assert!(
                fixture.exists(),
                "rule `{rule}` is missing its {kind} fixture at {}",
                fixture.display()
            );
        }
    }
    // The pass is only a gate if CI actually runs it, on both toolchains.
    let ci = read(".github/workflows/ci.yml");
    assert!(
        ci.contains("cargo run -p sm-lint") && ci.contains("-- --workspace"),
        "CI must run `cargo run -p sm-lint … -- --workspace` as its own leg"
    );
    assert!(
        ci.contains("cargo test -q -p sm-lint"),
        "CI must run the sm-lint unit and fixture suites explicitly"
    );
}

#[test]
fn bench_json_schema_is_documented_field_by_field() {
    let arch = read("ARCHITECTURE.md");
    let bench_src = read("crates/bench/benches/scale.rs");
    // One canonical field list, checked against BOTH the producer and the
    // docs — drift on either side fails here.
    for field in [
        "bench",
        "cases",
        "name",
        "arrivals",
        "engine",
        "wall_ms",
        "peak_streams",
        "total_units",
        "memo_hits",
        "ns_per_arrival",
        "max_open_trees",
        "allocations_per_arrival",
        // The serve_multi case's optional per-line extras.
        "titles",
        "rejected",
        "delay_p50",
        "delay_p99",
        "delay_max",
    ] {
        assert!(
            bench_src.contains(&format!("\\\"{field}\\\"")),
            "benches/scale.rs no longer emits `{field}` — update this test and ARCHITECTURE.md"
        );
        assert!(
            arch.contains(&format!("`{field}`")),
            "ARCHITECTURE.md must document the BENCH_scale.json field `{field}`"
        );
    }
}

#[test]
fn committed_bench_trajectory_has_the_dynamic_datapoints() {
    let json = read("BENCH_scale.json");
    let cases = bench_case_lines(&json);
    assert!(
        cases.len() >= 8,
        "BENCH_scale.json should carry the three sim shapes, the incremental \
         ingest run, the sequential dynamic baseline, and the pipelined \
         K ∈ {{1, 2, 4}} sweep"
    );
    let dynamic: Vec<&&str> = cases
        .iter()
        .filter(|l| l.contains("server_dynamic"))
        .collect();
    let seq = dynamic
        .iter()
        .find(|l| l.contains("\"sequential\""))
        .expect("BENCH_scale.json must carry the sequential dynamic baseline");
    let seq_ms = json_number(seq, "wall_ms");
    assert_eq!(
        json_number(seq, "memo_hits"),
        0.0,
        "the sequential baseline runs memo-free"
    );
    let k_line = |k: u32| {
        dynamic
            .iter()
            .find(|l| l.contains(&format!("_k{k}\"")) && l.contains("\"pipelined\""))
            .unwrap_or_else(|| {
                panic!("BENCH_scale.json must carry the pipelined K = {k} dynamic datapoint")
            })
    };
    let (k1, k2, k4) = (k_line(1), k_line(2), k_line(4));
    let k1_ms = json_number(k1, "wall_ms");
    for (k, line) in [(1u32, k1), (2, k2), (4, k4)] {
        let ms = json_number(line, "wall_ms");
        // The acceptance bar of the cross-epoch pipeline: the committed
        // full-size run realizes the overlap (or at worst breaks even) at
        // every plan-ahead depth.
        assert!(
            ms <= seq_ms,
            "committed K = {k} datapoint regressed: pipelined {ms} ms > sequential {seq_ms} ms"
        );
        // Identical workload ⇒ identical deterministic outputs.
        assert_eq!(
            json_number(line, "total_units"),
            json_number(seq, "total_units"),
            "K = {k} must report the sequential spine's stream-minutes"
        );
        assert_eq!(
            json_number(line, "peak_streams"),
            json_number(seq, "peak_streams"),
            "K = {k} must report the sequential spine's peak"
        );
    }
    // K = 1 is the memo-free PR-4 configuration; the K ≥ 2 runs carry the
    // cross-epoch memo and must realize its reuse: recorded hits, and wall
    // time at or below the depth-1 run's.
    assert_eq!(json_number(k1, "memo_hits"), 0.0, "K = 1 runs memo-free");
    for (k, line) in [(2u32, k2), (4, k4)] {
        assert!(
            json_number(line, "memo_hits") > 0.0,
            "K = {k} must record cross-epoch memo hits"
        );
        let ms = json_number(line, "wall_ms");
        assert!(
            ms <= k1_ms,
            "K = {k} + memo regressed past the depth-1 run: {ms} ms > {k1_ms} ms"
        );
    }
}

#[test]
fn committed_bench_trajectory_has_the_incremental_ingest_datapoint() {
    let json = read("BENCH_scale.json");
    let cases = bench_case_lines(&json);
    let inc = cases
        .iter()
        .find(|l| l.contains("serve_incremental") && l.contains("\"incremental\""))
        .expect("BENCH_scale.json must carry the serve_incremental datapoint");
    let events = cases
        .iter()
        .find(|l| l.contains("events_dg") && l.contains("\"events\""))
        .expect("BENCH_scale.json must carry the events_dg baseline");
    assert!(
        json_number(inc, "arrivals") >= 1_000_000.0,
        "the committed serve_incremental run must be full-size (10^6 arrivals)"
    );
    // Same grid, push-based: identical deterministic outputs.
    assert_eq!(
        json_number(inc, "total_units"),
        json_number(events, "total_units"),
        "incremental ingest must transmit exactly what the events engine does"
    );
    assert_eq!(
        json_number(inc, "peak_streams"),
        json_number(events, "peak_streams"),
        "incremental ingest must reproduce the events engine's peak"
    );
    // The acceptance bar of the push-based refactor: amortized ingest cost
    // within 1.5x of the batch engine, and bounded tree retention.
    let (inc_ns, events_ns) = (
        json_number(inc, "ns_per_arrival"),
        json_number(events, "ns_per_arrival"),
    );
    assert!(
        inc_ns <= events_ns * 1.5,
        "committed serve_incremental regressed: {inc_ns} ns/arrival > 1.5x \
         the events baseline ({events_ns} ns/arrival)"
    );
    let retained = json_number(inc, "max_open_trees");
    assert!(
        (1.0..=64.0).contains(&retained),
        "the DG grid keeps a handful of trees live, got {retained}"
    );
}

#[test]
fn committed_bench_trajectory_has_the_serve_multi_datapoint() {
    let json = read("BENCH_scale.json");
    let cases = bench_case_lines(&json);
    let multi = cases
        .iter()
        .find(|l| l.contains("serve_multi") && l.contains("\"multi\""))
        .expect("BENCH_scale.json must carry the serve_multi datapoint");
    let events = cases
        .iter()
        .find(|l| l.contains("events_dg") && l.contains("\"events\""))
        .expect("BENCH_scale.json must carry the events_dg baseline");
    assert!(
        json_number(multi, "arrivals") >= 1_000_000.0,
        "the committed serve_multi run must be full-size"
    );
    assert_eq!(
        json_number(multi, "titles"),
        3.0,
        "the committed serve_multi run drives a three-title catalog"
    );
    // The serving-layer contract, observable in the committed trajectory:
    // nobody is declined, the squeezed budget genuinely binds (nonzero
    // tail delay), and the ingest thread runs allocation-free.
    assert_eq!(
        json_number(multi, "rejected"),
        0.0,
        "delay planning never declines"
    );
    assert_eq!(
        json_number(multi, "allocations_per_arrival"),
        0.0,
        "the serve_multi ingest thread must run allocation-free in steady state"
    );
    for key in ["delay_p50", "delay_p99", "delay_max"] {
        assert!(
            json_number(multi, key) >= 0.0,
            "serve_multi must record {key}"
        );
    }
    assert!(
        json_number(multi, "delay_p99") > 0.0,
        "the squeezed shared budget must surface as nonzero tail delay"
    );
    assert!(
        json_number(multi, "delay_max") >= json_number(multi, "delay_p99"),
        "delay percentiles must be ordered"
    );
    assert!(
        json_number(multi, "memo_hits") > 0.0,
        "the per-title planned peaks must be served through the memo"
    );
    // The whole serving layer — workload generation and fan-in, delay
    // planning, per-title policy and engine, per-push latency sampling,
    // and the end-of-run percentile sort — amortizes to within 10x of
    // the bare batch engine's per-arrival cost (the committed lines may
    // come from different refresh runs, so the bound also absorbs
    // machine variance).
    let (multi_ns, events_ns) = (
        json_number(multi, "ns_per_arrival"),
        json_number(events, "ns_per_arrival"),
    );
    assert!(
        multi_ns <= events_ns * 10.0,
        "committed serve_multi regressed: {multi_ns} ns/arrival > 10x \
         the events baseline ({events_ns} ns/arrival)"
    );
}

/// Structural schema check applied to **both** committed bench snapshots:
/// the full-size `BENCH_scale.json` and the reduced-N
/// `BENCH_scale_smoke.json` (written by `SM_SCALE_ARRIVALS` runs, e.g. the
/// CI smoke step). Every case line must carry every schema field with a
/// parseable, non-negative value and a known engine tag.
fn assert_scale_snapshot_schema(json: &str, what: &str) {
    for top in [
        "\"bench\": \"scale\"",
        "\"engine\": \"events\"",
        "\"cases\"",
    ] {
        assert!(json.contains(top), "{what}: missing top-level {top}");
    }
    let cases = bench_case_lines(json);
    assert!(
        cases.len() >= 8,
        "{what}: expected the three sim shapes, the incremental ingest run, \
         and four dynamic datapoints, got {}",
        cases.len()
    );
    for line in cases {
        assert!(line.contains("\"name\": \""), "{what}: unnamed case {line}");
        for key in [
            "arrivals",
            "wall_ms",
            "peak_streams",
            "total_units",
            "memo_hits",
            "ns_per_arrival",
            "max_open_trees",
            "allocations_per_arrival",
        ] {
            let v = json_number(line, key);
            assert!(
                v.is_finite() && v >= 0.0,
                "{what}: bad {key} in {line}: {v}"
            );
        }
        assert!(
            ["events", "incremental", "multi", "pipelined", "sequential"]
                .iter()
                .any(|e| line.contains(&format!("\"engine\": \"{e}\""))),
            "{what}: unknown engine tag in {line}"
        );
    }
}

#[test]
fn committed_bench_trajectory_is_ten_million_arrivals_and_allocation_free() {
    let json = read("BENCH_scale.json");
    let cases = bench_case_lines(&json);
    let by_name = |needle: &str| {
        *cases
            .iter()
            .find(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("BENCH_scale.json must carry the {needle} datapoint"))
    };
    let dg = by_name("events_dg");
    // The arena-engine acceptance bar: the full-size Delay Guaranteed grid
    // is 10^7 arrivals and finishes within 1.5 s on the committed run.
    assert!(
        json_number(dg, "arrivals") >= 10_000_000.0,
        "the committed events_dg run must be full-size (10^7 arrivals)"
    );
    assert!(
        json_number(dg, "wall_ms") <= 1_500.0,
        "the committed 10^7 events_dg run must stay within 1.5 s"
    );
    // Steady-state pushes are allocation-free on every engine spine that
    // claims it: the O(log n) warm-up allocations floor to 0 per arrival.
    for case in ["events_dg", "serve_incremental", "events_deep_chain"] {
        assert_eq!(
            json_number(by_name(case), "allocations_per_arrival"),
            0.0,
            "{case} must run allocation-free in steady state"
        );
    }
}

#[test]
fn bench_snapshots_match_the_documented_schema() {
    assert_scale_snapshot_schema(&read("BENCH_scale.json"), "BENCH_scale.json");
    assert_scale_snapshot_schema(&read("BENCH_scale_smoke.json"), "BENCH_scale_smoke.json");
}

#[test]
fn doc_front_door_files_are_tracked_alongside_the_paper_docs() {
    for page in ["README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"] {
        assert!(
            Path::new(&root().join(page)).exists(),
            "{page} must exist at the workspace root"
        );
    }
}
