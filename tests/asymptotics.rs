//! The paper's asymptotic theorems as direct numeric checks across decades
//! of `n` — the workspace-level counterpart of the per-crate bounds tests.

use stream_merging::fib::{fib, log_phi, PHI, SQRT5};
use stream_merging::offline::closed_form::ClosedForm;
use stream_merging::offline::receive_all;

/// Theorem 8's explicit sandwich (Eqs. 9/10):
/// `(log_φ n − 1)·n − φ²·n + 2 ≤ M(n) ≤ (log_φ n + 1)·n − φ·n + 2`.
#[test]
fn theorem8_sandwich_holds_across_decades() {
    let cf = ClosedForm::new();
    for exp in 1..=9u32 {
        let n = 10u64.pow(exp);
        let m = cf.merge_cost(n) as f64;
        let nf = n as f64;
        let upper = (log_phi(nf) + 1.0) * nf - PHI * nf + 2.0;
        let lower = (log_phi(nf) - 1.0) * nf - PHI * PHI * nf + 2.0;
        assert!(m <= upper + 1.0, "n = {n}: M = {m} > upper {upper}");
        assert!(m >= lower - 1.0, "n = {n}: M = {m} < lower {lower}");
    }
}

/// `M(n)/n − log_φ n` stays within the `Θ(1)` corridor and the normalized
/// cost is monotone in the sense Theorem 8 implies.
#[test]
fn theorem8_normalized_cost_corridor() {
    let cf = ClosedForm::new();
    for exp in 2..=9u32 {
        let n = 10u64.pow(exp);
        let excess = cf.merge_cost(n) as f64 / n as f64 - log_phi(n as f64);
        assert!(
            (-(PHI * PHI + 1.0)..=1.0).contains(&excess),
            "n = {n}: excess {excess}"
        );
    }
}

/// Eq. 21: `Mω(n) = n·log₂ n + O(n)` — check the explicit closed form
/// `(k+1)n − 2^{k+1} + 1` against the log₂ law.
#[test]
fn receive_all_log2_law() {
    for exp in 2..=9u32 {
        let n = 10u64.pow(exp);
        let m = receive_all::merge_cost(n) as f64;
        let nf = n as f64;
        let excess = m / nf - nf.log2();
        // (k+1) − log2 n ∈ [1 − 2^{k+1}/n/… ]: the O(n) constant is small.
        assert!((-2.0..=2.0).contains(&excess), "n = {n}: excess {excess}");
    }
}

/// Binet: `F_k = round(φ^k / √5)` for every index with `F_k` in `u64` range.
///
/// The library evaluates the power in compensated (double-double) arithmetic,
/// so the identity holds all the way to `F_93`. A direct `f64` evaluation is
/// only a sound oracle while `powi`'s accumulated rounding error stays below
/// the distance from `φ^k/√5` to the nearest integer, which fails from
/// `k ≈ 71`; the plain-f64 leg of the check therefore stops at 70.
#[test]
fn binet_rounding_identity() {
    use stream_merging::fib::{binet_approx, MAX_FIB_INDEX_U64};
    for k in 0..=MAX_FIB_INDEX_U64 {
        assert_eq!(fib(k), binet_approx(k), "k = {k}");
    }
    for k in 1..=70u32 {
        let exact = fib(k as usize);
        let approx = (PHI.powi(k as i32) / SQRT5).round();
        assert_eq!(exact as f64, approx, "k = {k}");
    }
}

/// Theorem 19's limit from below: the M/Mω ratio increases towards
/// `log_φ 2 ≈ 1.4404` and never exceeds it (at Fibonacci-friendly points).
#[test]
fn theorem19_ratio_monotone_to_limit() {
    let cf = ClosedForm::new();
    let limit = 2.0f64.ln() / PHI.ln();
    let mut last = 0.0f64;
    for exp in 2..=9u32 {
        let n = 10u64.pow(exp);
        let ratio = cf.merge_cost(n) as f64 / receive_all::merge_cost(n) as f64;
        assert!(ratio <= limit + 0.01, "n = {n}: ratio {ratio}");
        assert!(
            ratio + 0.02 >= last,
            "n = {n}: ratio dropped {last} -> {ratio}"
        );
        last = ratio;
    }
    assert!(last > 1.40, "ratio should approach 1.4404, got {last}");
}

/// Theorem 13 at scale: `F(L,n)/n → log_φ L + Θ(1)` for n ≫ L.
#[test]
fn theorem13_full_cost_rate() {
    use stream_merging::offline::forest::optimal_full_cost;
    for l in [100u64, 1000, 10_000] {
        let n = 200 * l;
        let rate = optimal_full_cost(l, n) as f64 / n as f64;
        let target = log_phi(l as f64);
        assert!(
            (rate - target).abs() < 3.0,
            "L = {l}: rate {rate} vs log_φ L {target}"
        );
    }
}
