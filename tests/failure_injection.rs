//! Failure injection: the verifiers must *reject* corrupted artifacts, not
//! just accept correct ones. Each test takes a known-good object, applies a
//! specific corruption, and asserts the referee catches it.

use stream_merging::broadcast::plan::{Segment, SegmentPlan};
use stream_merging::broadcast::verify::{check_deadlines, verify_all_phases};
use stream_merging::core::{
    consecutive_slots, validate_forest, MergeForest, MergeTree, ModelError, ReceivingProgram,
    ValidationOptions,
};
use stream_merging::offline::forest::optimal_forest;
use stream_merging::sim::{simulate_with, SimConfig};

#[test]
fn stretched_tree_span_is_rejected() {
    // A tree whose last arrival sits L slots after its root cannot be
    // served by the root stream (the paper: z − r ≤ L − 1).
    let tree = MergeTree::star(3);
    let times: Vec<i64> = vec![0, 1, 10];
    let forest = MergeForest::single(tree);
    let err = validate_forest(&forest, &times, 10, ValidationOptions::default()).unwrap_err();
    assert_eq!(err, ModelError::SpanExceedsStream { root: 0, last: 2 });
}

#[test]
fn stream_past_media_end_is_rejected() {
    // ℓ(x) = 2z − x − p: an inner node whose subtree stretches far needs a
    // stream longer than the media.
    let tree = MergeTree::from_parents(&[None, Some(0), Some(1)]).unwrap();
    let times: Vec<i64> = vec![0, 1, 6];
    // ℓ(node 1) = 2·6 − 1 − 0 = 11 > L = 8, though the span 6 ≤ 7 is fine.
    let forest = MergeForest::single(tree);
    let err = validate_forest(&forest, &times, 8, ValidationOptions::default()).unwrap_err();
    assert_eq!(err, ModelError::LengthExceedsMedia { node: 1 });
}

#[test]
fn buffer_bound_violations_are_caught_by_the_simulator() {
    // The optimal L=15, n=8 plan needs buffers up to min(d, L−d); a bound
    // of 1 must fail in the simulator (and in validation).
    let plan = optimal_forest(15, 8);
    let times = consecutive_slots(8);
    let err = simulate_with(
        &plan.forest,
        &times,
        15,
        SimConfig {
            buffer_bound: Some(1),
            ..SimConfig::default()
        },
    );
    assert!(err.is_err(), "buffer bound 1 must be violated");
    // A generous bound passes.
    simulate_with(
        &plan.forest,
        &times,
        15,
        SimConfig {
            buffer_bound: Some(7),
            ..SimConfig::default()
        },
    )
    .unwrap();
}

#[test]
fn receiving_program_with_wrong_media_is_rejected() {
    let tree = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
    let times = consecutive_slots(3);
    let prog = ReceivingProgram::build(&tree, &times, 10, 2);
    prog.verify(&times, 10).unwrap();
    // Claiming a different media length breaks coverage.
    assert!(prog.verify(&times, 9).is_err());
}

#[test]
fn broadcast_stretched_period_is_caught() {
    // Fast-broadcasting shape is feasible; stretching a mid segment's
    // period (same length, sparser instances) starves some phase.
    let good = SegmentPlan::new(vec![
        Segment::back_to_back(1),
        Segment::back_to_back(2),
        Segment::back_to_back(4),
    ])
    .unwrap();
    verify_all_phases(&good, None, 10_000).unwrap();
    let bad = SegmentPlan::new(vec![
        Segment::back_to_back(1),
        Segment {
            length: 2,
            period: 7,
            offset: 0,
        },
        Segment::back_to_back(4),
    ])
    .unwrap();
    assert!(verify_all_phases(&bad, None, 10_000).is_err());
    // The analytic check agrees.
    assert!(check_deadlines(&good).is_ok());
    assert!(check_deadlines(&bad).is_err());
}

#[test]
fn broadcast_shifted_offset_agreement() {
    // Shifting a segment's phase may or may not break feasibility; whatever
    // happens, the analytic check and the sweep must agree.
    for offset in 0..6u64 {
        let plan = SegmentPlan::new(vec![
            Segment::back_to_back(2),
            Segment {
                length: 6,
                period: 6,
                offset,
            },
        ])
        .unwrap();
        let analytic = check_deadlines(&plan).is_ok();
        let swept = verify_all_phases(&plan, None, 10_000).is_ok();
        assert_eq!(analytic, swept, "offset {offset}");
    }
}

#[test]
fn broadcast_swapped_segments_are_caught() {
    // Playing the big segment first inverts the deadline structure: the
    // small late segment is fine, but the big first segment forces a huge
    // start-up period — callers relying on `delay_bound` would mis-provision,
    // and deadline feasibility breaks for the late small segment.
    let swapped =
        SegmentPlan::new(vec![Segment::back_to_back(8), Segment::back_to_back(1)]).unwrap();
    // Segment 1 has period 1 so it is always catchable — but its deadline
    // is 8 units out while the *first* segment dictates an 8-unit delay
    // bound: the report must expose the bad delay.
    let report = verify_all_phases(&swapped, None, 10_000).unwrap();
    assert_eq!(report.worst_delay, 7);
    // The properly ordered plan has delay 0 at integer phases.
    let proper =
        SegmentPlan::new(vec![Segment::back_to_back(1), Segment::back_to_back(8)]).unwrap();
    // 8 > 1 + prefix(=1): the doubling limit is violated — infeasible.
    assert!(verify_all_phases(&proper, None, 10_000).is_err());
}
