//! Workspace-wiring smoke test: every facade re-export must be reachable
//! under its documented path. This pins the `Cargo.toml` lib-name mapping
//! (`sm-core` → `sm_core` → `stream_merging::core`, etc.) so a manifest
//! regression fails loudly instead of silently dropping a module.

#[test]
fn every_facade_module_is_reachable() {
    // One load-bearing call per re-exported crate; each forces the module
    // path to resolve through the facade.
    assert_eq!(stream_merging::core::consecutive_slots(3), vec![0, 1, 2]);
    assert_eq!(stream_merging::fib::fib(10), 55);
    let cf = stream_merging::offline::closed_form::ClosedForm::new();
    assert!(cf.merge_cost(10) > 0);
    let dg = stream_merging::online::delay_guaranteed::DelayGuaranteedOnline::new(15);
    assert!(dg.tree_size() >= 1);
    assert!(stream_merging::broadcast::HarmonicPlan::new(16, 4).is_ok());
    let mut arrivals = stream_merging::workload::ConstantRate::new(1.0);
    assert!(!stream_merging::workload::ArrivalProcess::generate(&mut arrivals, 5.0).is_empty());
    assert!(stream_merging::server::Zipf::new(8, 1.0).pmf(0) > 0.0);
    let squares = stream_merging::core::parallel_map(&[1u64, 2, 3], |&x| x * x);
    assert_eq!(squares, vec![1, 4, 9]);
}

#[test]
fn facade_paths_agree_with_underlying_crates() {
    // The facade must re-export the very same types, not parallel copies:
    // a value produced through one path must typecheck through the other.
    let forest: stream_merging::core::MergeForest =
        stream_merging::offline::forest::optimal_forest(8, 8).forest;
    let times = stream_merging::core::consecutive_slots(8);
    let report = stream_merging::sim::simulate(&forest, &times, 8).expect("plan must simulate");
    assert!(report.total_units > 0);
}
