//! Cross-crate validation of the receive-all model (§3.4): the optimal
//! receive-all forests from `sm-offline` must execute at the program level
//! via `sm-core`'s Lemma-17 receiving programs.

use stream_merging::core::{consecutive_slots, cost::receive_all_full_cost, ReceiveAllProgram};
use stream_merging::offline::receive_all;

#[test]
fn optimal_receive_all_forests_execute_program_level() {
    for (media_len, n) in [(8u64, 5usize), (15, 8), (15, 14), (31, 25), (100, 60)] {
        let (forest, cost) = receive_all::optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        assert_eq!(
            receive_all_full_cost(&forest, &times, media_len) as u64,
            cost,
            "L = {media_len}, n = {n}"
        );
        for (range, tree) in forest.iter_with_ranges() {
            let local = &times[range];
            for c in 0..tree.len() {
                let prog = ReceiveAllProgram::build(tree, local, media_len, c);
                prog.verify(local, media_len, tree)
                    .unwrap_or_else(|e| panic!("L={media_len} n={n} client {c}: {e}"));
                assert_eq!(prog.total_parts(), media_len as i64);
            }
        }
    }
}

#[test]
fn receive_all_uses_more_receivers_but_less_bandwidth() {
    // §3.4's tradeoff, observed program-level: receive-all clients listen
    // to more streams at once, and the server pays less in total.
    let n = 16usize;
    let media = 34u64;
    let times = consecutive_slots(n);

    let (ra_forest, ra_cost) = receive_all::optimal_forest(media, n);
    let r2_plan = stream_merging::offline::forest::optimal_forest(media, n);
    assert!(
        ra_cost <= r2_plan.cost,
        "receive-all {ra_cost} must not exceed receive-two {}",
        r2_plan.cost
    );

    let mut max_receivers = 0usize;
    for (range, tree) in ra_forest.iter_with_ranges() {
        let local = &times[range];
        for c in 0..tree.len() {
            let prog = ReceiveAllProgram::build(tree, local, media, c);
            max_receivers = max_receivers.max(prog.max_concurrent());
        }
    }
    // The binary receive-all tree goes deeper than 2.
    assert!(
        max_receivers > 2,
        "receive-all trees should exercise >2 receivers, got {max_receivers}"
    );
}

#[test]
fn receive_all_merge_cost_table_matches_programs() {
    // Mω(n) priced by the DP equals the cost of the constructed tree, and
    // the constructed tree's programs verify.
    let table = receive_all::merge_cost_table_dp(16);
    for (n, &expected) in table.iter().enumerate().skip(1) {
        let tree = receive_all::optimal_merge_tree(n);
        let times = consecutive_slots(n);
        let cost = stream_merging::core::receive_all_merge_cost(&tree, &times);
        assert_eq!(cost as u64, expected, "n = {n}");
        let media = 2 * n as u64 + 2;
        for c in 0..n {
            ReceiveAllProgram::build(&tree, &times, media, c)
                .verify(&times, media, &tree)
                .unwrap();
        }
    }
}
