//! Property-based tests over the core invariants, using proptest.

use proptest::prelude::*;
use stream_merging::core::{
    consecutive_slots, merge_cost, validate_tree, MergeTree, ValidationOptions,
};
use stream_merging::offline::closed_form::ClosedForm;
use stream_merging::offline::forest as off_forest;
use stream_merging::offline::general;
use stream_merging::offline::receive_all;
use stream_merging::offline::tree_builder::optimal_merge_tree;
use stream_merging::online::delay_guaranteed::online_full_cost;
use stream_merging::online::dyadic::{DyadicConfig, DyadicMerger};
use stream_merging::sim::simulate;

/// Random merge tree over n arrivals: each node picks an earlier parent.
fn arb_tree(max_n: usize) -> impl Strategy<Value = MergeTree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut v: Vec<Option<usize>> = vec![None];
            v.extend(ps.into_iter().map(Some));
            MergeTree::from_parents(&v).expect("parent < child by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_tree_beats_the_closed_form(tree in arb_tree(40)) {
        let cf = ClosedForm::new();
        let n = tree.len();
        let cost = merge_cost(&tree, &consecutive_slots(n)) as u64;
        prop_assert!(cost >= cf.merge_cost(n as u64),
            "tree {} costs {cost} < M({n})", tree.to_sexpr());
    }

    #[test]
    fn receive_all_cost_le_receive_two(tree in arb_tree(40)) {
        let n = tree.len();
        let times = consecutive_slots(n);
        let two = merge_cost(&tree, &times);
        let all = stream_merging::core::receive_all_merge_cost(&tree, &times);
        prop_assert!(all <= two);
    }

    #[test]
    fn optimal_tree_simulates_when_l_allows(n in 1usize..=60) {
        // Use the forest machinery (which sizes trees feasibly) rather than
        // a bare n-tree.
        let media_len = (n as u64).max(4);
        let plan = off_forest::optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        let report = simulate(&plan.forest, &times, media_len).unwrap();
        prop_assert_eq!(report.total_units as u64, plan.cost);
    }

    #[test]
    fn theorem12_equals_brute_force(media_len in 1u64..=30, n in 1u64..=100) {
        let cf = ClosedForm::new();
        let s = off_forest::optimal_s(&cf, media_len, n);
        let fast = off_forest::full_cost_given_s(&cf, media_len, n, s);
        let (_, slow) = off_forest::brute_force_optimal_s(&cf, media_len, n);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn online_at_least_offline_at_most_bound(media_len in 7u64..=25, mult in 1u64..=20) {
        let n = media_len * media_len + 2 + mult * media_len;
        let a = online_full_cost(media_len, n);
        let f = off_forest::optimal_full_cost(media_len, n);
        prop_assert!(a >= f);
        let bound = 1.0 + 2.0 * media_len as f64 / n as f64;
        prop_assert!(a as f64 / f as f64 <= bound + 1e-12);
    }

    #[test]
    fn general_dp_matches_naive(times in proptest::collection::vec(1i64..=8, 1..=14)) {
        // Random positive gaps -> strictly increasing times.
        let mut acc = 0i64;
        let times: Vec<i64> = times.into_iter().map(|g| { acc += g; acc }).collect();
        let fast = general::optimal_tree(&times);
        let slow = general::optimal_tree_naive(&times);
        prop_assert_eq!(fast.cost, slow.cost, "times {:?}", times);
        prop_assert_eq!(merge_cost(&fast.tree, &times), fast.cost);
    }

    #[test]
    fn general_dp_on_consecutive_equals_closed_form(n in 1usize..=60) {
        let cf = ClosedForm::new();
        let sol = general::optimal_tree(&consecutive_slots(n));
        prop_assert_eq!(sol.cost as u64, cf.merge_cost(n as u64));
    }

    #[test]
    fn dyadic_forest_always_valid(
        gaps in proptest::collection::vec(0.01f64..=3.0, 1..=80),
        beta_case in 0usize..3,
    ) {
        let media = 20.0f64;
        let cfg = match beta_case {
            0 => DyadicConfig::classic(),
            1 => DyadicConfig::golden_poisson(),
            _ => DyadicConfig::golden_constant_rate(20),
        };
        let mut m = DyadicMerger::new(cfg, media);
        let mut t = 0.0;
        for g in gaps {
            t += g;
            m.on_arrival(t);
        }
        let (forest, times) = m.forest();
        for (range, tree) in forest.iter_with_ranges() {
            prop_assert!(tree.has_preorder_property());
            // Spans stay within the merge window.
            let slice = &times[range];
            let span = slice[tree.last_arrival()] - slice[0];
            prop_assert!(span <= cfg.beta * media + 1e-9);
        }
        prop_assert!(m.total_cost() >= media * m.roots() as f64 - 1e-9);
    }

    #[test]
    fn momega_closed_form_vs_dp(n in 1usize..=200) {
        let dp = receive_all::merge_cost_table_dp(n);
        prop_assert_eq!(receive_all::merge_cost(n as u64), dp[n]);
    }

    #[test]
    fn optimal_trees_validate(n in 1usize..=80) {
        let t = optimal_merge_tree(n);
        let times = consecutive_slots(n);
        // 2n always dominates every stream length.
        validate_tree(&t, &times, 2 * n as u64, ValidationOptions {
            require_preorder: true,
            buffer_bound: None,
        }).unwrap();
    }

    #[test]
    fn merge_cost_superadditive_concatenation(a in 1u64..=150, b in 1u64..=150) {
        // Splitting arrivals into two independent trees loses the cross
        // merges but avoids the connector cost; the closed form must obey
        // M(a+b) <= M(a) + M(b) + (2(a+b) - a - 2)  (Eq. (5) with h = a).
        let cf = ClosedForm::new();
        let lhs = cf.merge_cost(a + b);
        let rhs = cf.merge_cost(a) + cf.merge_cost(b) + 2 * (a + b) - a - 2;
        prop_assert!(lhs <= rhs);
        // And monotonicity.
        prop_assert!(cf.merge_cost(a + b) >= cf.merge_cost(a));
    }
}
