//! Cross-crate checks between the static broadcasting substrate and the
//! stream-merging side: both must agree on the delay axis, and the measured
//! channel counts must match the published closed forms.

use stream_merging::broadcast::{
    fast_broadcasting, harmonic_bandwidth, skyscraper_broadcasting, static_tradeoff,
    verify_all_phases, HarmonicPlan,
};
use stream_merging::fib::PHI;
use stream_merging::online::capacity::steady_state_bandwidth;

#[test]
fn fast_channels_match_the_log2_formula() {
    // k channels cover delay·(2^k − 1): the measured plan bandwidth equals
    // ⌈log₂(L/D + 1)⌉ channels for every geometry where D | L.
    for (l, d) in [(100u64, 1u64), (100, 2), (120, 4), (60, 5)] {
        let k = stream_merging::broadcast::fast::channels_for(l, d);
        let expected = ((l as f64 / d as f64) + 1.0).log2().ceil() as u32;
        assert_eq!(k, expected, "L={l} D={d}");
        let plan = fast_broadcasting(k, d).unwrap();
        assert!(plan.media_len() >= l);
    }
}

#[test]
fn harmonic_bandwidth_is_ln_plus_gamma() {
    // H_K = ln K + γ + o(1).
    let gamma = 0.577_215_664_901_532_9;
    for k in [10u32, 100, 1000] {
        let h = harmonic_bandwidth(k);
        let approx = (k as f64).ln() + gamma;
        assert!((h - approx).abs() < 0.06, "K={k}: {h} vs {approx}");
    }
}

#[test]
fn merging_average_matches_theorem13_rate() {
    // Theorem 13: F(L,n) = n·log_φ L + Θ(n) ⇒ steady average ≈ log_φ L + c.
    for l in [50u64, 100, 200, 400] {
        let avg = steady_state_bandwidth(l).average;
        let log_phi = (l as f64).ln() / PHI.ln();
        assert!(
            (avg - log_phi).abs() < 3.0,
            "L={l}: avg {avg} vs log_φ {log_phi}"
        );
    }
}

#[test]
fn static_and_dynamic_log_families_scale_together() {
    // Doubling the media adds ~1 channel to fast broadcasting and
    // ~log_φ 2 ≈ 1.44 streams to the merging average: the paper's log-law
    // on both sides of the static/dynamic divide.
    let fast_small = stream_merging::broadcast::fast::channels_for(64, 1);
    let fast_large = stream_merging::broadcast::fast::channels_for(128, 1);
    assert_eq!(fast_large - fast_small, 1);

    let merge_small = steady_state_bandwidth(64).average;
    let merge_large = steady_state_bandwidth(128).average;
    let delta = merge_large - merge_small;
    assert!((delta - 1.44).abs() < 0.8, "merging delta {delta}");
}

#[test]
fn skyscraper_is_receive_two_like_the_merging_model() {
    // The paper's receive-two client assumption is exactly skyscraper's
    // two-loader design: both sides of the comparison use the same client.
    let plan = skyscraper_broadcasting(89, 1, u64::MAX).unwrap();
    let report = verify_all_phases(&plan, Some(2), 1_000_000).unwrap();
    assert_eq!(report.max_concurrent, 2);
}

#[test]
fn tradeoff_delays_are_honored_on_both_sides() {
    for delay in [1u64, 2, 5, 10] {
        let rows = static_tradeoff(100, delay).unwrap();
        for r in &rows {
            assert!(r.worst_delay <= delay, "{}: {}", r.scheme, r.worst_delay);
        }
        // The merging side's guarantee is structural: one slot = the delay.
        let dg = steady_state_bandwidth(100 / delay);
        assert!(dg.peak > 0);
    }
}

#[test]
fn harmonic_is_the_cheapest_static_scheme_everywhere() {
    for delay in [1u64, 2, 4, 5, 10, 20, 25] {
        let rows = static_tradeoff(100, delay).unwrap();
        let harmonic = rows
            .iter()
            .find(|r| r.scheme.starts_with("harmonic"))
            .unwrap()
            .channels;
        for r in rows.iter().filter(|r| !r.scheme.starts_with("harmonic")) {
            assert!(
                harmonic <= r.channels + 1e-9,
                "delay {delay}: harmonic {harmonic} vs {} {}",
                r.scheme,
                r.channels
            );
        }
    }
}

#[test]
fn undelayed_harmonic_bug_is_reproducible_at_scale() {
    // The Pâris–Carter–Long discovery, pinned for every K in one sweep.
    for k in 2..=128u32 {
        let plan = HarmonicPlan::new(k as u64 * 5, k).unwrap();
        assert!(plan.verify_delayed().is_ok(), "delayed K={k}");
        assert!(plan.undelayed_violation().is_some(), "undelayed K={k}");
    }
}
