//! Cross-crate checks for the §5 multi-object server: the planner, the
//! capacity analysis and the aggregate simulation must tell one consistent
//! story.

use stream_merging::online::capacity::{
    aggregate_peak, min_delay_for_budget, steady_state_bandwidth, MediaObject,
};
use stream_merging::server::{aggregate_profile, plan_weighted, simulate_requests, Catalog, Title};

fn catalog() -> Catalog {
    Catalog::new(vec![
        Title {
            name: "hit".into(),
            duration_minutes: 120.0,
            weight: 6.0,
        },
        Title {
            name: "steady".into(),
            duration_minutes: 90.0,
            weight: 3.0,
        },
        Title {
            name: "tail".into(),
            duration_minutes: 100.0,
            weight: 1.0,
        },
    ])
}

const CANDS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

#[test]
fn weighted_planner_beats_uniform_capacity_planning() {
    let c = catalog();
    // Uniform plan via the sm-online capacity API on equivalent objects.
    let objects: Vec<MediaObject> = c
        .titles()
        .iter()
        .map(|t| MediaObject {
            name: t.name.clone(),
            duration_minutes: t.duration_minutes,
        })
        .collect();
    let full = plan_weighted(&c, u64::MAX, &[1.0]).unwrap().total_peak;
    let budget = full * 2 / 3;
    let uniform_delay = min_delay_for_budget(&objects, budget, &CANDS)
        .expect("uniform plan fits at some candidate");
    let probs = c.probabilities();
    let uniform_expected: f64 = probs.iter().map(|p| p * uniform_delay).sum();

    let weighted = plan_weighted(&c, budget, &CANDS).expect("weighted plan fits");
    assert!(
        weighted.expected_delay <= uniform_expected + 1e-9,
        "weighted {} vs uniform {uniform_expected}",
        weighted.expected_delay
    );
}

#[test]
fn planner_peaks_are_exactly_capacity_peaks() {
    let c = catalog();
    let plan = plan_weighted(&c, u64::MAX, &CANDS).unwrap();
    for (i, t) in c.titles().iter().enumerate() {
        let l = t.media_len(plan.delays_minutes[i]);
        assert_eq!(plan.peaks[i], steady_state_bandwidth(l).peak);
    }
    // And the planned total equals the capacity-API aggregate for the
    // uniform special case.
    let objects: Vec<MediaObject> = c
        .titles()
        .iter()
        .map(|t| MediaObject {
            name: t.name.clone(),
            duration_minutes: t.duration_minutes,
        })
        .collect();
    let plan_1min = plan_weighted(&c, u64::MAX, &[1.0]).unwrap();
    // `MediaObject::media_len` rounds, `Title::media_len` ceils; on these
    // durations with 1-minute delays both give the same integer lengths.
    assert_eq!(plan_1min.total_peak, aggregate_peak(&objects, 1.0));
}

#[test]
fn aggregate_never_exceeds_planned_peak_across_budgets() {
    let c = catalog();
    let full = plan_weighted(&c, u64::MAX, &[1.0]).unwrap().total_peak;
    for budget in [full, full * 3 / 4, full / 2] {
        if let Some(plan) = plan_weighted(&c, budget, &CANDS) {
            let agg = aggregate_profile(&c, &plan, 1_000);
            assert!(agg.peak <= plan.total_peak);
            assert!(plan.total_peak <= budget);
        }
    }
}

#[test]
fn requests_respect_per_title_delay_guarantees() {
    let c = catalog();
    let budget = plan_weighted(&c, u64::MAX, &[1.0]).unwrap().total_peak / 2;
    let plan = plan_weighted(&c, budget, &CANDS).expect("feasible");
    let report = simulate_requests(&c, &plan, 2_000.0, 2.0, 99);
    assert_eq!(report.declined, 0);
    assert!(report.served > 1_000);
    let max_planned = plan.delays_minutes.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(report.max_wait <= max_planned + 1e-9);
    // The measured mean wait is below the weighted *guarantee* (waits are
    // uniform within a slot, so the mean is roughly half the guarantee).
    assert!(report.mean_wait <= plan.expected_delay);
}

#[test]
fn single_title_degenerates_to_capacity_analysis() {
    let one = Catalog::new(vec![Title {
        name: "solo".into(),
        duration_minutes: 100.0,
        weight: 1.0,
    }]);
    let plan = plan_weighted(&one, u64::MAX, &[5.0]).unwrap();
    let s = steady_state_bandwidth(20); // 100 min / 5 min
    assert_eq!(plan.total_peak, s.peak as u64);
    let agg = aggregate_profile(&one, &plan, 600);
    assert_eq!(agg.peak, s.peak as u64);
}
