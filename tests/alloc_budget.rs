#![allow(unsafe_code)] // counting #[global_allocator]: raw-pointer plumbing by design
//! Allocation-budget harness for the arena-backed engines.
//!
//! A counting `#[global_allocator]` (the same wrapper `sm-bench`'s
//! `scale.rs` installs) feeds `sm_core::alloc_counter`'s per-thread
//! counters, and the tests here pin the engines' allocation discipline:
//!
//! * **events** — one cold streaming run allocates only the engine's
//!   reusable storage (the `EngineScratch` program/sweep buffers, the
//!   pooled tree arenas and spec vectors, and the bandwidth profile's
//!   change-point log), each growing by amortized doubling. The total is
//!   `O(log n)`, so it fits a fixed [`EVENTS_SETUP_BUDGET`] and — the
//!   sharper claim — barely moves when `n` quadruples.
//! * **incremental** — after a warm-up prefix of pushes has grown every
//!   pool and buffer, the remaining pushes are allocation-free up to the
//!   log-many residual doublings of the bandwidth log
//!   ([`INCREMENTAL_STEADY_BUDGET`]): `allocations / pushes` floors to 0.
//!
//! The counters are per-thread, so the harness is immune to the test
//! runner's own threads; each test observes only its own allocations.

use sm_core::{alloc_counter, consecutive_slots};
use sm_online::DelayGuaranteedOnline;
use sm_sim::{simulate_streaming_slice, Attach, IncrementalEngine, SimConfig};
use sm_workload::deep_chain_forest;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;

/// The system allocator wrapped with `sm_core::alloc_counter` bookkeeping.
struct CountingAlloc;

// SAFETY: every operation delegates verbatim to `System`; the counter
// update is allocation-free and panic-free (see `sm_core::alloc_counter`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_counter::note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_counter::note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const MEDIA: u64 = 100;

/// Setup budget for one cold `simulate_streaming_slice` run: the schedule
/// stream, scratch buffers, tree-storage pool, sweep heap, and bandwidth
/// log together allocate a few dozen times (amortized doublings included).
/// The budget leaves generous headroom; the scaling assertion below is the
/// load-bearing one.
const EVENTS_SETUP_BUDGET: u64 = 512;

/// How much the cold-run allocation count may grow when `n` quadruples:
/// only the bandwidth log and spec buffers keep doubling, so the
/// difference is a handful of allocations, never `O(n)`.
const EVENTS_GROWTH_SLACK: u64 = 64;

/// Post-warm-up budget for the incremental engine: every pool and scratch
/// buffer is already grown, leaving only the residual amortized doublings
/// of the run-length bandwidth log — log-many, not per-push.
const INCREMENTAL_STEADY_BUDGET: u64 = 64;

/// One cold Delay Guaranteed streaming run; returns the allocations the
/// run itself performed (workload construction excluded).
fn events_run_allocations(n: usize) -> u64 {
    let alg = DelayGuaranteedOnline::new(MEDIA);
    let forest = alg.forest_after(n);
    let times = consecutive_slots(n);
    let ckpt = alloc_counter::checkpoint();
    let mut served = 0usize;
    simulate_streaming_slice(&forest, &times, MEDIA, SimConfig::events(), |report| {
        served += 1;
        black_box(report.max_buffer);
    })
    .expect("DG plan must execute");
    let allocs = ckpt.allocations_since();
    assert_eq!(served, n);
    allocs
}

#[test]
fn counting_allocator_is_live() {
    let ckpt = alloc_counter::checkpoint();
    let boxed = Box::new(black_box([0u8; 64]));
    black_box(&boxed);
    assert!(
        ckpt.allocations_since() >= 1,
        "the counting allocator must observe a fresh Box"
    );
}

#[test]
fn events_steady_state_is_allocation_free() {
    let small = events_run_allocations(4_000);
    let large = events_run_allocations(16_000);
    assert!(
        small <= EVENTS_SETUP_BUDGET,
        "cold events run allocated {small} times, budget is {EVENTS_SETUP_BUDGET}"
    );
    // The per-arrival discipline: quadrupling the workload must not scale
    // the allocation count — only log-many further doublings are allowed.
    assert!(
        large <= small + EVENTS_GROWTH_SLACK,
        "allocations scaled with n: {small} at n=4000 vs {large} at n=16000"
    );
    assert_eq!(
        large / 16_000,
        0,
        "allocations per arrival must floor to zero"
    );
}

#[test]
fn incremental_push_steady_state_is_allocation_free() {
    const TOTAL: usize = 20_000;
    const WARMUP: usize = 2_000;
    // Deep chains recycle tree storage constantly: every tree the cursor
    // drains returns its arena to the pool for the next chain to reuse.
    let (forest, times) = deep_chain_forest(TOTAL, MEDIA);
    let mut attaches = Vec::with_capacity(times.len());
    let mut base = 0usize;
    for tree in forest.trees() {
        let parents = tree.to_parents();
        attaches.push(Attach::Root);
        for parent in parents.iter().skip(1) {
            let parent = parent.expect("non-root chain nodes have parents");
            attaches.push(Attach::Under(base + parent));
        }
        base += parents.len();
    }
    assert_eq!(attaches.len(), times.len());

    let mut engine = IncrementalEngine::new(MEDIA, SimConfig::events()).expect("valid media len");
    let mut served = 0usize;
    for i in 0..WARMUP {
        engine
            .push(times[i], attaches[i], |report| {
                served += 1;
                black_box(report.max_buffer);
            })
            .expect("deep chains are feasible by construction");
    }
    let ckpt = alloc_counter::checkpoint();
    for i in WARMUP..times.len() {
        engine
            .push(times[i], attaches[i], |report| {
                served += 1;
                black_box(report.max_buffer);
            })
            .expect("deep chains are feasible by construction");
    }
    let steady = ckpt.allocations_since();
    let inc = engine
        .finish(|report| {
            served += 1;
            black_box(report.max_buffer);
        })
        .expect("finish drains every pending deadline");
    assert_eq!(served, times.len());
    assert_eq!(inc.summary.clients, times.len());
    assert!(
        steady <= INCREMENTAL_STEADY_BUDGET,
        "steady-state pushes allocated {steady} times, budget is {INCREMENTAL_STEADY_BUDGET}"
    );
    assert_eq!(
        steady / (TOTAL - WARMUP) as u64,
        0,
        "allocations per push must floor to zero after warm-up"
    );
}
