//! Cross-crate checks for the on-line policy roster: every policy's forest
//! must be a valid receive-two solution, must never beat the off-line
//! optimum, and the structural equivalences between policies must hold.

use stream_merging::core::{full_cost, validate_forest, ValidationOptions};
use stream_merging::offline::forest::optimal_full_cost;
use stream_merging::online::dyadic::{DyadicConfig, DyadicMerger};
use stream_merging::online::hierarchical::{HierarchicalMerger, MergePolicy};
use stream_merging::online::patching::PatchingMerger;

const MEDIA: u64 = 30;

/// Slotted arrivals 0..n−1 as f64 times (the delay-guaranteed special case,
/// on which the off-line optimum is known exactly).
fn slot_arrivals(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

/// Runs a policy over the arrivals and returns (forest cost, forest, times).
fn run_policy(
    policy: &str,
    arrivals: &[f64],
) -> (f64, stream_merging::core::MergeForest, Vec<f64>) {
    match policy {
        "patching" => {
            let mut m = PatchingMerger::new(MEDIA as f64, 14.0);
            for &t in arrivals {
                m.on_arrival(t);
            }
            let (forest, times) = m.forest();
            (m.total_cost(), forest, times)
        }
        "ermt" => {
            let mut m = HierarchicalMerger::new(MergePolicy::EarliestReachable, MEDIA as f64, 14.0);
            for &t in arrivals {
                m.on_arrival(t);
            }
            let (forest, times) = m.forest();
            (m.total_cost(), forest, times)
        }
        "dyadic" => {
            let mut m = DyadicMerger::new(DyadicConfig::golden_poisson(), MEDIA as f64);
            for &t in arrivals {
                m.on_arrival(t);
            }
            let (forest, times) = m.forest();
            (m.total_cost(), forest, times)
        }
        other => panic!("unknown policy {other}"),
    }
}

#[test]
fn every_policy_forest_validates_as_receive_two() {
    let arrivals = slot_arrivals(60);
    for policy in ["patching", "ermt", "dyadic"] {
        let (_, forest, times) = run_policy(policy, &arrivals);
        validate_forest(&forest, &times, MEDIA, ValidationOptions::default())
            .unwrap_or_else(|e| panic!("{policy}: {e}"));
    }
}

#[test]
fn no_policy_beats_the_offline_optimum_on_slotted_arrivals() {
    for n in [5usize, 13, 34, 60, 89] {
        let arrivals = slot_arrivals(n);
        let optimal = optimal_full_cost(MEDIA, n as u64) as f64;
        for policy in ["patching", "ermt", "dyadic"] {
            let (cost, _, _) = run_policy(policy, &arrivals);
            assert!(
                cost + 1e-6 >= optimal,
                "{policy} at n={n}: {cost} < optimal {optimal}"
            );
        }
    }
}

#[test]
fn policy_costs_agree_with_generic_cost_machinery() {
    let arrivals = slot_arrivals(40);
    for policy in ["patching", "ermt", "dyadic"] {
        let (cost, forest, times) = run_policy(policy, &arrivals);
        let generic = full_cost(&forest, &times, MEDIA);
        assert!(
            (cost - generic).abs() < 1e-9,
            "{policy}: direct {cost} vs generic {generic}"
        );
    }
}

#[test]
fn direct_to_root_policy_is_patching_everywhere() {
    // Irregular arrival pattern exercising window resets.
    let arrivals: Vec<f64> = (0..200)
        .map(|i| i as f64 * 0.7 + ((i % 7) as f64) * 0.05)
        .collect();
    let mut p = PatchingMerger::new(MEDIA as f64, 10.0);
    let mut h = HierarchicalMerger::new(MergePolicy::DirectToRoot, MEDIA as f64, 10.0);
    for &t in &arrivals {
        p.on_arrival(t);
        h.on_arrival(t);
    }
    assert_eq!(p.roots(), h.roots());
    assert!((p.total_cost() - h.total_cost()).abs() < 1e-9);
}

#[test]
fn ermt_never_worse_than_patching_at_equal_window() {
    for gap in [0.2f64, 0.5, 1.0, 2.0] {
        let arrivals: Vec<f64> = (0..300).map(|i| i as f64 * gap).collect();
        for window in [5.0f64, 10.0, 14.0] {
            let mut p = PatchingMerger::new(MEDIA as f64, window);
            let mut e =
                HierarchicalMerger::new(MergePolicy::EarliestReachable, MEDIA as f64, window);
            for &t in &arrivals {
                p.on_arrival(t);
                e.on_arrival(t);
            }
            assert!(
                e.total_cost() <= p.total_cost() + 1e-6,
                "gap {gap}, window {window}: ermt {} > patching {}",
                e.total_cost(),
                p.total_cost()
            );
        }
    }
}

#[test]
fn continuous_verifier_accepts_policy_forests_on_real_times() {
    // Non-integer arrival times: the continuous-time §2 receiving-rules
    // verifier must accept every policy's forest (coverage, supply,
    // timeliness).
    use stream_merging::sim::verify_continuous;
    let arrivals: Vec<f64> = (0..150)
        .map(|i| i as f64 * 0.73 + ((i % 5) as f64) * 0.11)
        .collect();
    for policy in ["patching", "ermt", "dyadic"] {
        let (_, forest, times) = run_policy(policy, &arrivals);
        verify_continuous(&forest, &times, MEDIA as f64, 1e-9)
            .unwrap_or_else(|e| panic!("{policy}: {e:?}"));
    }
}

#[test]
fn simulator_oracle_executes_policy_schedules() {
    // Policies produce integer-slot forests here; the discrete-event
    // simulator must execute them without stalls or receive-two violations.
    use stream_merging::sim::simulate;
    let arrivals = slot_arrivals(30);
    for policy in ["patching", "ermt"] {
        let (cost, forest, times) = run_policy(policy, &arrivals);
        let times_i: Vec<i64> = times.iter().map(|&t| t as i64).collect();
        let report = simulate(&forest, &times_i, MEDIA).unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert_eq!(report.clients.len(), times.len());
        // Metered transmission equals the analytic cost.
        assert_eq!(report.total_units as f64, cost, "{policy}");
    }
}
