//! Behavioural integration tests for the on-line layer: DG vs dyadic vs
//! batching across traffic regimes, channel assignment of on-line plans,
//! and continuous-time verification of dyadic output.

use stream_merging::core::consecutive_slots;
use stream_merging::online::batching::{batch_arrivals, batched_dyadic_cost, plain_batching_cost};
use stream_merging::online::capacity::{steady_state_bandwidth, MediaObject};
use stream_merging::online::delay_guaranteed::online_full_cost;
use stream_merging::online::dyadic::{dyadic_total_cost, DyadicConfig, DyadicMerger};
use stream_merging::online::hybrid::{HybridConfig, HybridServer};
use stream_merging::online::DelayGuaranteedOnline;
use stream_merging::sim::{assign_channels, stream_schedule, verify_continuous, BandwidthProfile};
use stream_merging::workload::{ArrivalProcess, ConstantRate, PoissonProcess};

#[test]
fn dg_beats_dyadic_at_high_intensity_poisson() {
    // λ = 0.1 slots (10 arrivals per delay window), L = 100, horizon 2000.
    let media = 100.0;
    let arrivals = PoissonProcess::new(0.1, 7).generate(2_000.0);
    let dyadic = dyadic_total_cost(DyadicConfig::golden_poisson(), media, &arrivals);
    let batched = batched_dyadic_cost(DyadicConfig::golden_poisson(), &arrivals, 1.0, media);
    let dg = online_full_cost(100, 2_000) as f64;
    assert!(dg < dyadic, "DG {dg} vs immediate dyadic {dyadic}");
    assert!(dg < batched, "DG {dg} vs batched dyadic {batched}");
}

#[test]
fn dyadic_beats_dg_at_low_intensity_poisson() {
    // λ = 10 slots (one arrival per 10 windows).
    let media = 100.0;
    let arrivals = PoissonProcess::new(10.0, 11).generate(2_000.0);
    let batched = batched_dyadic_cost(DyadicConfig::golden_poisson(), &arrivals, 1.0, media);
    let dg = online_full_cost(100, 2_000) as f64;
    assert!(batched < dg, "batched dyadic {batched} vs DG {dg}");
}

#[test]
fn batching_equals_batched_dyadic_when_nothing_can_merge() {
    // Gaps beyond β·L: merging adds nothing.
    let arrivals = [10.0, 200.0, 390.0, 580.0];
    let media = 100.0;
    let a = batched_dyadic_cost(DyadicConfig::golden_poisson(), &arrivals, 1.0, media);
    let b = plain_batching_cost(&arrivals, 1.0, media);
    assert_eq!(a, b);
}

#[test]
fn constant_rate_at_slot_rate_makes_batching_transparent() {
    // One arrival per slot: batching changes nothing for the dyadic input.
    let arrivals = ConstantRate::new(1.0).generate(500.0);
    let batched = batch_arrivals(&arrivals, 1.0);
    assert_eq!(batched.len(), arrivals.len());
    let media = 50.0;
    let imm = dyadic_total_cost(DyadicConfig::golden_poisson(), media, &arrivals);
    let bat = batched_dyadic_cost(DyadicConfig::golden_poisson(), &arrivals, 1.0, media);
    assert!((imm - bat).abs() < 1e-6);
}

#[test]
fn dyadic_forests_pass_continuous_verification() {
    for (seed, gap) in [(1u64, 0.05f64), (2, 0.5), (3, 3.0)] {
        let arrivals = PoissonProcess::new(gap, seed).generate(300.0);
        let mut m = DyadicMerger::new(DyadicConfig::golden_poisson(), 40.0);
        for &t in &arrivals {
            m.on_arrival(t);
        }
        let (forest, times) = m.forest();
        verify_continuous(&forest, &times, 40.0, 1e-7)
            .unwrap_or_else(|e| panic!("seed {seed}, gap {gap}: {e:?}"));
    }
}

#[test]
fn online_plan_fits_exactly_peak_channels() {
    let alg = DelayGuaranteedOnline::new(60);
    let n = 240usize;
    let forest = alg.forest_after(n);
    let times = consecutive_slots(n);
    let specs = stream_schedule(&forest, &times, 60).unwrap();
    let plan = assign_channels(&specs);
    let peak = BandwidthProfile::from_streams(&specs).peak();
    assert_eq!(plan.channels_used, peak);
}

#[test]
fn steady_state_peak_bounds_any_horizon_interior() {
    let ss = steady_state_bandwidth(80);
    let alg = DelayGuaranteedOnline::new(80);
    let n = 800usize;
    let forest = alg.forest_after(n);
    let times = consecutive_slots(n);
    let profile = BandwidthProfile::from_streams(&stream_schedule(&forest, &times, 80).unwrap());
    // Interior slots (skip L at each end) never exceed the steady peak.
    let counts = profile.window(profile.origin() + 80, profile.end() - 160);
    assert!(counts.iter().all(|&c| c <= ss.peak));
    assert!(counts.contains(&ss.peak));
}

#[test]
fn hybrid_server_matches_components_at_extremes() {
    // All-heavy traffic -> ≈ pure DG; all-idle -> ≈ pure dyadic cost.
    let mut heavy = HybridServer::new(50, HybridConfig::default());
    for s in 0..300u64 {
        let a: Vec<f64> = (0..3).map(|i| s as f64 + (i + 1) as f64 / 4.0).collect();
        heavy.feed_slot(&a);
    }
    let dg = online_full_cost(50, 300) as f64;
    assert!((heavy.total_cost() - dg).abs() <= 0.05 * dg + 100.0);

    let mut idle = HybridServer::new(50, HybridConfig::default());
    for s in 0..300u64 {
        if s % 40 == 5 {
            idle.feed_slot(&[s as f64 + 0.5]);
        } else {
            idle.feed_slot(&[]);
        }
    }
    // 8 isolated arrivals (gap 40 > β·L = 25): 8 full streams.
    assert_eq!(idle.total_cost(), 8.0 * 50.0);
}

#[test]
fn multi_object_peaks_add_up() {
    use stream_merging::online::capacity::aggregate_peak;
    let objects = vec![
        MediaObject {
            name: "film".into(),
            duration_minutes: 90.0,
        },
        MediaObject {
            name: "short".into(),
            duration_minutes: 30.0,
        },
    ];
    let d = 3.0;
    let sum: u64 = objects
        .iter()
        .map(|o| steady_state_bandwidth(o.media_len(d)).peak as u64)
        .sum();
    assert_eq!(aggregate_peak(&objects, d), sum);
}
