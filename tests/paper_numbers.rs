//! E12: every concrete number stated in the paper's text, checked end to
//! end through the public API (the facade crate).

use stream_merging::core::{consecutive_slots, full_cost, merge_cost};
use stream_merging::offline::closed_form::ClosedForm;
use stream_merging::offline::forest::{full_cost_given_s, optimal_forest, optimal_full_cost};
use stream_merging::offline::receive_all;
use stream_merging::offline::tree_builder::optimal_merge_tree;

#[test]
fn section2_l15_n8_example() {
    // "for L = 15 and n = 8 ... the full cost is Fcost(F) = 1·L + Mcost(T)
    //  = 15 + 21 = 36. This turns out to be the optimal solution."
    let plan = optimal_forest(15, 8);
    assert_eq!(plan.s, 1);
    assert_eq!(plan.cost, 36);
    let times = consecutive_slots(8);
    assert_eq!(full_cost(&plan.forest, &times, 15), 36);
}

#[test]
fn section2_l15_n14_example() {
    // "if we keep L = 15 but choose n = 14, then the optimal number of full
    //  streams is s = 2, and the full cost is 30 + 17 + 17 = 64."
    let plan = optimal_forest(15, 14);
    assert_eq!(plan.s, 2);
    assert_eq!(plan.cost, 64);
    assert_eq!(plan.forest.sizes(), vec![7, 7]);
}

#[test]
fn section31_mn_sequence() {
    let cf = ClosedForm::new();
    let expect = [0u64, 1, 3, 6, 9, 13, 17, 21, 26, 31, 36, 41, 46, 52, 58, 64];
    for (i, &m) in expect.iter().enumerate() {
        assert_eq!(cf.merge_cost(i as u64 + 1), m, "M({})", i + 1);
    }
}

#[test]
fn section31_fig7_unique_trees() {
    // "Four optimal trees for n = 3, 5, 8, 13. The merge costs of these
    //  trees are M(n) = 3, 9, 21, 46, respectively."
    for (n, want) in [(3usize, 3i64), (5, 9), (8, 21), (13, 46)] {
        let t = optimal_merge_tree(n);
        assert_eq!(merge_cost(&t, &consecutive_slots(n)), want, "n = {n}");
    }
}

#[test]
fn section32_theorem12_worked_example() {
    // "assume L = 4 which implies that h = 4 and F_h = 3. When n = 16 then
    //  s0 = 4 and s1 = 5. It follows that F(L,n,s0) = 40, F(L,n,s1) = 38,
    //  and F(L,n,s1+1) = 38."
    let cf = ClosedForm::new();
    assert_eq!(cf.fib().theorem12_h(4), 4);
    assert_eq!(cf.fib().get(4), 3);
    assert_eq!(full_cost_given_s(&cf, 4, 16, 4), 40);
    assert_eq!(full_cost_given_s(&cf, 4, 16, 5), 38);
    assert_eq!(full_cost_given_s(&cf, 4, 16, 6), 38);
    assert_eq!(optimal_full_cost(4, 16), 38);
}

#[test]
fn section34_momega_sequence() {
    let expect = [0u64, 1, 3, 5, 8, 11, 14, 17, 21, 25, 29, 33, 37, 41, 45, 49];
    for (i, &m) in expect.iter().enumerate() {
        assert_eq!(receive_all::merge_cost(i as u64 + 1), m, "Mω({})", i + 1);
    }
}

#[test]
fn section2_stream_lengths_of_fig3() {
    // "the length of node H is ℓ(H) = H − p(H) = 2 and the length of node F
    //  is ℓ(F) = 2z(F) − F − p(F) = 9."
    let t = optimal_merge_tree(8);
    let lens = stream_merging::core::lengths(&t, &consecutive_slots(8));
    assert_eq!(lens[7], 2); // H
    assert_eq!(lens[5], 9); // F
}

#[test]
fn section2_lemma2_decomposition_numbers() {
    // "the merge cost of the left subtree is Mcost(T') = 9, the cost of the
    //  right subtree is Mcost(T'') = 3, and the length of F is 9. Therefore,
    //  the merge cost for the tree is 21."
    let cf = ClosedForm::new();
    assert_eq!(cf.merge_cost(5), 9);
    assert_eq!(cf.merge_cost(3), 3);
    assert_eq!(cf.merge_cost(8), 9 + 3 + 9);
}

#[test]
fn intro_l8_units_example() {
    // "a guaranteed delay of 15 minutes to watch a 2 hour movie implies that
    //  the movie is L = 8 units long."
    let two_hours_minutes = 120.0f64;
    let delay_minutes = 15.0f64;
    assert_eq!((two_hours_minutes / delay_minutes) as u64, 8);
    // And the optimal schedule for one delay-period of arrivals exists:
    let plan = optimal_forest(8, 8);
    assert!(plan.cost > 0);
}

#[test]
fn theorem19_limit_constant() {
    // log_φ 2 ≈ 1.44 (the "at most 1.44 times" of §1.1).
    let limit = stream_merging::fib::golden::receive_two_over_receive_all_limit();
    assert!((limit - 1.44).abs() < 0.001);
}
