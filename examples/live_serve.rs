//! Example: a live multi-title serving session, arrival at a time.
//!
//! The batch simulator answers "what did this workload cost?" after the
//! fact; `sm-serve` runs the server the way it would run in production.
//! Each title's Poisson arrivals are generated on a producer thread,
//! merged into one traffic stream, and pushed through that title's
//! incremental engine one at a time: the on-line merge policy decides
//! where each client merges *at traffic time*, client reports stream out
//! as their last part-deadline fires, and every push's wall-clock cost
//! is recorded.
//!
//! The second run squeezes the same catalog through a two-channel shared
//! budget (the §5 fixed-bandwidth regime): when every license chain is
//! busy, arrivals are *re-planned later* — the overload is visible as
//! start-up delay, and nobody is ever declined.
//!
//! Run with: `cargo run --release --example live_serve`

use stream_merging::serve::{
    serve_multi, serve_multi_with, MultiServeConfig, MultiServeReport, PolicyKind, TitleConfig,
};

fn print_report(label: &str, report: &MultiServeReport) {
    println!("{label}:");
    println!(
        "  arrivals      {} generated, {} served, {} rejected",
        report.generated, report.served, report.rejected
    );
    let d = &report.delay;
    println!(
        "  start-up wait p50 {} / p99 {} / max {} slots (mean {:.2})",
        d.p50_slots, d.p99_slots, d.max_slots, d.mean_slots
    );
    for (i, t) in report.titles.iter().enumerate() {
        println!(
            "  title-{i:02}      L = {:>3}, {:>4} arrivals in {:>3} groups, \
             planned peak {:>2}, delay p99 {} max {}",
            t.media_len,
            t.generated,
            t.groups,
            t.planned_peak,
            t.delay.p99_slots,
            t.delay.max_slots
        );
    }
    let l = report.latency;
    println!(
        "  push latency  p50 {} ns, p99 {} ns, max {} ns",
        l.p50_ns, l.p99_ns, l.max_ns
    );
}

fn main() {
    // A three-title catalog under ~2 hours of traffic: a popular short
    // title, a mid-tail title, and a long movie on the slot-dense
    // delay-guaranteed policy.
    let catalog = vec![
        TitleConfig::new(32, 1.5),
        TitleConfig::new(64, 4.0),
        TitleConfig {
            policy: PolicyKind::DelayGuaranteed,
            ..TitleConfig::new(96, 8.0)
        },
    ];
    let config = MultiServeConfig::new(catalog, 5_000.0);
    let mut shown = 0;
    let report = serve_multi_with(
        &config,
        &stream_merging::server::PlannerMemo::new(),
        |title, r| {
            if shown < 5 {
                println!(
                    "served title-{title:02} client {:>3}: max buffer {} slots, min slack {}",
                    r.client, r.max_buffer, r.min_slack
                );
                shown += 1;
            }
        },
    )
    .expect("an unbounded budget over a valid catalog cannot fail");
    println!("  ...");
    print_report("unbounded budget", &report);

    // Same catalog, same traffic, but only two full-length streams may be
    // live at once: the planner absorbs the overload as start-up delay.
    println!();
    let squeezed = MultiServeConfig {
        budget: Some(2),
        ..config
    };
    let report = serve_multi(&squeezed).expect("a squeezed run is still always feasible");
    print_report("2-channel shared budget", &report);
    assert_eq!(report.rejected, 0, "delay planning never declines");
}
