//! Example: a live serving session, arrival at a time.
//!
//! The batch simulator answers "what did this workload cost?" after the
//! fact; `sm-serve` runs the server the way it would run in production.
//! Poisson arrivals are generated on a producer thread, flow through the
//! bounded workload→ingest pipeline, and hit the push-based incremental
//! engine one at a time: the dyadic merge policy (golden α, β = ½)
//! decides where each client merges *at traffic time*, client reports
//! stream out as their last part-deadline fires, and every push's
//! wall-clock cost is recorded.
//!
//! The second run caps the server at a fixed number of channel licenses
//! (the §5 fixed-bandwidth regime): arrivals that cannot join the
//! current slot's group while every license is busy are declined.
//!
//! Run with: `cargo run --release --example live_serve`

use stream_merging::serve::{serve_with, ServeConfig, ServeReport};

fn print_report(label: &str, report: &ServeReport) {
    let s = &report.summary.summary;
    println!("{label}:");
    println!(
        "  arrivals     {} generated, {} admitted, {} declined",
        report.generated, report.admitted, report.rejected
    );
    if !s.bandwidth.is_empty() {
        println!(
            "  bandwidth    peak {} streams, average {:.2}, {} slot-units total",
            s.bandwidth.peak(),
            s.bandwidth.average(),
            s.total_units
        );
    }
    println!(
        "  retention    at most {} merge trees live at once",
        report.summary.max_open_trees
    );
    let l = report.latency;
    println!(
        "  push latency p50 {} ns, p99 {} ns, max {} ns",
        l.p50_ns, l.p99_ns, l.max_ns
    );
}

fn main() {
    // A 64-slot title under ~2 hours of traffic with a mean gap of 1.5
    // slots between requests. Watch the first few clients stream out live.
    let config = ServeConfig::new(64, 5_000.0, 1.5);
    let mut shown = 0;
    let report = serve_with(&config, |r| {
        if shown < 5 {
            println!(
                "served client {:>3}: max buffer {} slots, min slack {}",
                r.client, r.max_buffer, r.min_slack
            );
            shown += 1;
        }
    })
    .expect("open admission over a valid config cannot fail");
    println!("  ...");
    print_report("open admission", &report);

    // Same traffic, but a single licensed full stream at a time.
    println!();
    let capped = ServeConfig {
        max_active: Some(1),
        ..config
    };
    let report = serve_with(&capped, |_| {}).expect("capped run is still feasible");
    print_report("1 channel license", &report);
}
