//! Example: a channel-constrained VoD operator serving a Zipf catalog (§5).
//!
//! Twelve titles, Zipf popularity, and a hard license of 40 concurrent
//! streams. The per-title planner gives the blockbusters short delays and
//! parks the long tail at longer ones; the aggregate profile confirms the
//! license is never exceeded, and a day of simulated requests confirms
//! nobody is declined.
//!
//! Run with: `cargo run --release --example multi_title_server`

use stream_merging::server::{aggregate_profile, plan_weighted, simulate_requests, Catalog};

fn main() {
    let catalog = Catalog::zipf(12, 1.0, &[120.0, 90.0, 100.0]);
    let budget = 40u64;
    let candidates = [1.0, 2.0, 5.0, 10.0, 20.0];

    let plan = plan_weighted(&catalog, budget, &candidates)
        .expect("40 streams is enough for 20-minute delays");

    println!("per-title plan (budget {budget} streams):");
    let probs = catalog.probabilities();
    for (i, title) in catalog.titles().iter().enumerate() {
        println!(
            "  {}  {:>5.1}% of requests  ->  delay {:>4.0} min  (peak {} streams)",
            title.name,
            probs[i] * 100.0,
            plan.delays_minutes[i],
            plan.peaks[i]
        );
    }
    println!(
        "planned worst-case peak: {} / {budget}; popularity-weighted delay {:.2} min",
        plan.total_peak, plan.expected_delay
    );

    let agg = aggregate_profile(&catalog, &plan, 24 * 60);
    println!(
        "measured aggregate over 24h: peak {} streams, average {:.1}",
        agg.peak, agg.average
    );
    assert!(agg.peak <= budget, "license violated");

    let report = simulate_requests(&catalog, &plan, 24.0 * 60.0, 3.0, 2024);
    println!(
        "simulated {} requests: declined {}, mean wait {:.2} min, max wait {:.2} min",
        report.served, report.declined, report.mean_wait, report.max_wait
    );
    assert_eq!(report.declined, 0, "§5: nobody is ever declined");
}
