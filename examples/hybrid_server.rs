//! The §5 hybrid server in action on bursty traffic: prime-time bursts and
//! overnight lulls, with the server switching regimes automatically.
//!
//! Run with: `cargo run --example hybrid_server`

use stream_merging::online::batching::batched_dyadic_cost;
use stream_merging::online::delay_guaranteed::online_full_cost;
use stream_merging::online::dyadic::DyadicConfig;
use stream_merging::online::hybrid::{HybridConfig, HybridServer, Mode};
use stream_merging::workload::{ArrivalProcess, BurstyProcess};

fn main() {
    let media_len = 100u64;
    let horizon = 6_000u64;
    // Bursts: 5 arrivals/slot for ~300 slots; lulls: 1 per 20 slots, ~300.
    let mut process = BurstyProcess::new(0.2, 20.0, 300.0, 300.0, 2024);
    let arrivals = process.generate(horizon as f64);
    println!(
        "bursty trace: {} arrivals over {horizon} slots (media = {media_len} slots)\n",
        arrivals.len()
    );

    let mut server = HybridServer::new(media_len, HybridConfig::default());
    let mut idx = 0usize;
    let mut switches = 0u32;
    let mut last_mode = None::<Mode>;
    for slot in 0..horizon {
        let hi = (slot + 1) as f64;
        let mut in_slot = Vec::new();
        while idx < arrivals.len() && arrivals[idx] <= hi {
            in_slot.push(arrivals[idx]);
            idx += 1;
        }
        let mode = server.feed_slot(&in_slot);
        if last_mode.is_some_and(|m| m != mode) {
            switches += 1;
        }
        last_mode = Some(mode);
    }

    let dg_frac = server
        .history()
        .iter()
        .filter(|m| **m == Mode::DelayGuaranteed)
        .count() as f64
        / horizon as f64;

    let hybrid = server.total_cost();
    let pure_dg = online_full_cost(media_len, horizon) as f64;
    let pure_dyadic = batched_dyadic_cost(
        DyadicConfig::golden_poisson(),
        &arrivals,
        1.0,
        media_len as f64,
    );

    println!("regime switches:      {switches}");
    println!("slots in DG mode:     {:.0}%", 100.0 * dg_frac);
    println!("hybrid cost:          {hybrid:>9.0} slot-units");
    println!("pure delay-guaranteed {pure_dg:>9.0} slot-units");
    println!("pure batched dyadic   {pure_dyadic:>9.0} slot-units");
    let best = pure_dg.min(pure_dyadic);
    println!(
        "\nhybrid vs best pure policy: {:+.1}%",
        100.0 * (hybrid / best - 1.0)
    );
    println!("(on mixed traffic the hybrid tracks DG during bursts and dyadic in lulls,");
    println!(" which is exactly the switching server §5 of the paper proposes)");
}
