//! A day in the life of a video-on-demand server: a popular 100-minute
//! movie, 1-minute guaranteed start-up delay, Poisson request traffic that
//! ramps up through prime time. Compares the four service strategies of the
//! paper's §4.2 and reports bandwidth (total and peak).
//!
//! Run with: `cargo run --example vod_server`

use stream_merging::online::batching::{batched_dyadic_cost, plain_batching_cost};
use stream_merging::online::delay_guaranteed::online_full_cost;
use stream_merging::online::dyadic::{dyadic_total_cost, DyadicConfig};
use stream_merging::workload::{ArrivalProcess, PoissonProcess};

fn main() {
    // All times in slots: 1 slot = the 1-minute delay; the movie is L = 100.
    let media = 100.0f64;
    let media_len = 100u64;

    println!("VoD server, 100-minute movie, 1-minute guaranteed delay");
    println!("traffic: Poisson, three 8-hour shifts with rising intensity\n");

    // Three shifts: overnight (mean gap 10 min), daytime (1 min),
    // prime time (5 s).
    let shifts = [
        ("overnight ", 10.0, 480.0),
        ("daytime   ", 1.0, 480.0),
        ("prime time", 1.0 / 12.0, 480.0),
    ];

    println!(
        "{:<11} {:>9} {:>16} {:>15} {:>15} {:>14}",
        "shift", "requests", "immediate dyad.", "batched dyad.", "plain batching", "delay guar."
    );
    let mut offset = 0.0f64;
    for (seed, (name, gap, dur)) in (1u64..).zip(shifts) {
        let mut proc = PoissonProcess::new(gap, seed);
        let arrivals: Vec<f64> = proc.generate(dur).into_iter().map(|t| t + offset).collect();
        offset += dur;

        let imm = dyadic_total_cost(DyadicConfig::golden_poisson(), media, &arrivals);
        let bat = batched_dyadic_cost(DyadicConfig::golden_poisson(), &arrivals, 1.0, media);
        let plain = plain_batching_cost(&arrivals, 1.0, media);
        let dg = online_full_cost(media_len, dur as u64) as f64;
        println!(
            "{:<11} {:>9} {:>13.0} su {:>12.0} su {:>12.0} su {:>11.0} su",
            name,
            arrivals.len(),
            imm,
            bat,
            plain,
            dg
        );
    }

    println!("\n(su = slot-units of server bandwidth; 100 su = one full stream)");
    println!("\nReading the table like §4.2 of the paper:");
    println!(" * overnight, requests are rarer than the delay window — the delay");
    println!("   guaranteed algorithm wastes streams on empty slots and loses;");
    println!(" * in prime time the arrival intensity dwarfs the delay and the");
    println!("   delay-guaranteed algorithm wins while making zero on-line decisions;");
    println!(" * batched dyadic interpolates between the two regimes.");
    println!("\nThe paper's §5 hybrid proposal follows directly: run delay-guaranteed");
    println!("while the measured intensity is above ~1 arrival per slot, dyadic below.");
}
