//! Quickstart: schedule a 2-hour movie with a 15-minute guaranteed start-up
//! delay (the paper's running example: L = 8 units), then reproduce the
//! larger Fig. 3 diagram (L = 15, n = 8) and execute it in the simulator.
//!
//! Run with: `cargo run --example quickstart`

use stream_merging::core::{consecutive_slots, diagram, full_cost, ReceivingProgram};
use stream_merging::offline::forest::optimal_forest;
use stream_merging::sim::simulate;

fn main() {
    // -- The movie-night setup ------------------------------------------
    // 2h movie, 15min guaranteed delay -> L = 120/15 = 8 slots.
    let media_len = 8u64;
    // Serve 3 hours of continuous demand: one (batched) client per slot.
    let n = 12usize;
    let plan = optimal_forest(media_len, n);
    println!("== Optimal delay-guaranteed plan: L = {media_len} slots, {n} slots of arrivals ==");
    println!("full streams (s):        {}", plan.s);
    println!("tree sizes:              {:?}", plan.forest.sizes());
    println!(
        "total server bandwidth:  {} slot-units  ({:.2} full-stream equivalents)",
        plan.cost,
        plan.cost as f64 / media_len as f64
    );
    println!(
        "batching would pay:      {} slot-units\n",
        n as u64 * media_len
    );

    // -- The paper's Fig. 3 (L = 15, n = 8) ------------------------------
    let plan = optimal_forest(15, 8);
    let times = consecutive_slots(8);
    println!(
        "== Fig. 3 reproduction: L = 15, n = 8, Fcost = {} ==",
        plan.cost
    );
    println!("{}", diagram::render_forest(&plan.forest, &times, 15));

    // Client H's receiving program, as walked through in §2 of the paper.
    let tree = &plan.forest.trees()[0];
    let prog = ReceivingProgram::build(tree, &times, 15, 7);
    println!(
        "receiving program of client H (arrival 7): path {:?}",
        prog.path
    );
    for seg in &prog.segments {
        println!(
            "  from stream {}: parts {:>2}..={:<2}",
            seg.stream, seg.first_part, seg.last_part
        );
    }

    // -- Execute it -------------------------------------------------------
    let report = simulate(&plan.forest, &times, 15).expect("schedule must execute");
    println!("\n== Simulation ==");
    println!("transmitted units: {}", report.total_units);
    println!("analytic Fcost:    {}", full_cost(&plan.forest, &times, 15));
    println!(
        "peak bandwidth:    {} concurrent streams",
        report.bandwidth.peak()
    );
    let max_buf = report.clients.iter().map(|c| c.max_buffer).max().unwrap();
    println!("max client buffer: {max_buf} parts");
    println!(
        "all clients play back with zero stalls: min slack = {}",
        report.clients.iter().map(|c| c.min_slack).min().unwrap()
    );
}
