//! Example: provisioning a popular title — static broadcasting vs stream
//! merging.
//!
//! A 100-minute movie must start within 1 minute of any request. The §1
//! framing of the paper: static pyramid-family schemes buy this guarantee
//! with a *fixed* channel allocation; stream merging buys it dynamically.
//! This example prints the verified channel demand of every static scheme
//! next to the Delay Guaranteed steady state, then shows how both sides
//! react when the operator relaxes the delay to 5 minutes.
//!
//! Run with: `cargo run --release --example broadcast_comparison`

use stream_merging::broadcast::{static_tradeoff, HarmonicPlan};
use stream_merging::online::capacity::steady_state_bandwidth;

fn print_for(media_len: u64, delay: u64) {
    println!("media {media_len} min, guaranteed delay {delay} min:");
    let rows = static_tradeoff(media_len, delay).expect("delay divides media");
    for r in &rows {
        println!(
            "  {:<18} {:>7.2} channels  (recv-cap {}, client buffer {} min)",
            r.scheme, r.channels, r.max_concurrent, r.max_buffer
        );
    }
    let dg = steady_state_bandwidth(media_len / delay);
    println!(
        "  {:<18} {:>7} peak / {:.2} avg streams (receive-two, dynamic)",
        "stream merging", dg.peak, dg.average
    );
}

fn main() {
    print_for(100, 1);
    println!();
    print_for(100, 5);

    // The punchline of §1/§5: the static schemes must be re-provisioned to
    // change the delay; the merging server just changes its slot length.
    let h1 = HarmonicPlan::new(100, 100).expect("valid plan");
    let h5 = HarmonicPlan::new(100, 20).expect("valid plan");
    println!(
        "\nharmonic must re-segment ({} -> {} channels) to move from 1 to 5 min;",
        h1.num_segments, h5.num_segments
    );
    println!("the merging server only re-times its slots — no channel re-allocation.");
}
