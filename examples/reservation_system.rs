//! Off-line reservation system (§1: "Media-on-Demand systems are also
//! considered in an off-line environment … The main applications are
//! reservation systems"): all requests are known ahead of time, at
//! irregular times. The server computes the optimal merge forest with the
//! general-arrivals DP of [6], prints every client's receiving program and
//! buffer requirement, and re-plans for set-top boxes with a small buffer.
//!
//! Run with: `cargo run --example reservation_system`

use stream_merging::core::{full_cost, required_buffer, ReceivingProgram};
use stream_merging::offline::forest::optimal_forest_bounded_buffer;
use stream_merging::offline::general;
use stream_merging::sim::simulate;

fn main() {
    // A 20-slot documentary; reservations booked at these slots.
    let media_len = 20u64;
    let times: Vec<i64> = vec![0, 1, 2, 5, 6, 11, 12, 13, 14, 30, 32, 44];
    println!("Reservations at slots {times:?}, media length {media_len} slots\n");

    let (forest, cost) = general::optimal_forest(&times, media_len);
    println!(
        "optimal plan: {} full streams, {} slot-units total",
        forest.num_trees(),
        cost
    );
    println!(
        "(dedicated streams would cost {}, batching to shared slots {})\n",
        times.len() as u64 * media_len,
        forest.num_trees() as u64 * media_len
    );

    for (ti, (range, tree)) in forest.iter_with_ranges().enumerate() {
        let local_times = &times[range.clone()];
        println!("tree {ti}: arrivals {:?}", local_times);
        for c in 0..tree.len() {
            let prog = ReceivingProgram::build(tree, local_times, media_len, c);
            let buf = required_buffer(tree, local_times, media_len, c);
            let segs: Vec<String> = prog
                .segments
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| {
                    format!(
                        "parts {}..={} from t={}",
                        s.first_part, s.last_part, local_times[s.stream]
                    )
                })
                .collect();
            println!(
                "  client @t={:<3} buffer {:>2} parts | {}",
                local_times[c],
                buf,
                segs.join(", ")
            );
        }
    }

    let report = simulate(&forest, &times, media_len).expect("plan must execute");
    assert_eq!(report.total_units, full_cost(&forest, &times, media_len));
    println!(
        "\nsimulated: {} units, peak {} concurrent streams, all on time\n",
        report.total_units,
        report.bandwidth.peak()
    );

    // Set-top boxes can only buffer 3 parts: re-plan (consecutive slots
    // variant, §3.3) for a delay-guaranteed horizon of 24 slots.
    let n = 24usize;
    let buffer = 3u64;
    let plan = optimal_forest_bounded_buffer(media_len, n, buffer);
    println!(
        "bounded-buffer re-plan (B = {buffer} parts, {n} consecutive slots): {} streams, {} units",
        plan.s, plan.cost
    );
    let unbounded = stream_merging::offline::forest::optimal_forest(media_len, n);
    println!(
        "unbounded plan would need {} streams, {} units — the buffer cap costs {:.1}% extra",
        unbounded.s,
        unbounded.cost,
        100.0 * (plan.cost as f64 / unbounded.cost as f64 - 1.0)
    );
}
