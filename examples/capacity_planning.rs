//! Capacity planning with the delay/bandwidth trade-off (the paper's Fig. 1
//! and the §5 discussion: "By increasing the guaranteed delay, we can ensure
//! that we never go over the fixed maximum bandwidth and still never have to
//! decline a client request").
//!
//! Given a server licensed for a fixed number of concurrent upstream
//! channels, find the smallest guaranteed start-up delay whose *peak*
//! bandwidth fits, using the simulator to measure peaks exactly.
//!
//! Run with: `cargo run --example capacity_planning`

use stream_merging::core::consecutive_slots;
use stream_merging::offline::forest::optimal_forest;
use stream_merging::sim::simulate;

fn main() {
    // A 2-hour movie served around the clock; we sweep candidate delays.
    // For delay d (minutes) the movie is L = 120/d slots; we plan one
    // busy-hour horizon (n = 3 media lengths of continuous demand).
    let channel_budgets = [6u32, 10, 16, 28];
    println!("2-hour movie, continuous demand; smallest delay fitting a channel budget\n");
    println!(
        "{:>8} {:>6} {:>8} {:>12} {:>14} {:>12}",
        "delay", "L", "n", "total units", "avg streams", "peak streams"
    );

    let candidates = [40u64, 30, 24, 20, 15, 12, 10, 8, 6, 5, 4, 3, 2, 1];
    let mut measured = Vec::new();
    for &delay_min in &candidates {
        let media_len = 120 / delay_min;
        let n = (3 * media_len) as usize;
        let plan = optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        let report = simulate(&plan.forest, &times, media_len).expect("plan executes");
        println!(
            "{:>5}min {:>6} {:>8} {:>12} {:>14.2} {:>12}",
            delay_min,
            media_len,
            n,
            report.total_units,
            report.bandwidth.average(),
            report.bandwidth.peak()
        );
        measured.push((delay_min, report.bandwidth.peak()));
    }

    println!();
    for budget in channel_budgets {
        // Smallest delay whose peak fits the budget.
        let best = measured
            .iter()
            .filter(|(_, peak)| *peak <= budget)
            .map(|(d, _)| *d)
            .min();
        match best {
            Some(d) => {
                println!("budget of {budget:>2} channels -> offer a {d}-minute guaranteed delay")
            }
            None => println!(
                "budget of {budget:>2} channels -> not satisfiable even at 40-minute delay"
            ),
        }
    }
    println!("\nLonger delays need fewer channels (Theorem 13: F = n·log_phi(L) + Θ(n));");
    println!("the operator picks the shortest delay whose peak fits the license.");
}
