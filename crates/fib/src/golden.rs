//! Golden-ratio asymptotics.
//!
//! The paper's Theorems 8 and 13 state `M(n) = n·log_φ n + Θ(n)` and
//! `F(L,n) = n·log_φ L + Θ(n)`; Theorems 19/20 state the receive-two vs
//! receive-all gap `log_φ 2 ≈ 1.44`. These helpers provide the continuous
//! side of those statements for tests and experiment annotations.

/// The golden ratio `φ = (1 + √5)/2`, the positive root of `x² = x + 1`.
pub const PHI: f64 = 1.618033988749894848204586834365638118_f64;

/// The conjugate root `φ̂ = (1 − √5)/2 ≈ −0.618`.
pub const PHI_HAT: f64 = -0.618_033_988_749_894_9_f64;

/// `√5`.
pub const SQRT5: f64 = 2.236067977499789696409173668731276235_f64;

/// `log_φ x = ln x / ln φ`.
///
/// # Panics
/// Panics if `x <= 0`.
pub fn log_phi(x: f64) -> f64 {
    assert!(x > 0.0, "log_phi requires a positive argument, got {x}");
    x.ln() / PHI.ln()
}

/// Binet's closed form `F_k = (φ^k − φ̂^k)/√5`, rounded to the nearest
/// integer (exact for every `k` in the `u64` range).
pub fn binet_approx(k: usize) -> u64 {
    let k = k as f64;
    ((PHI.powf(k) - PHI_HAT.powf(k)) / SQRT5).round() as u64
}

/// The limit ratio of Theorems 19/20: `log_φ 2 ≈ 1.4404`.
pub fn receive_two_over_receive_all_limit() -> f64 {
    log_phi(2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::fib;

    #[test]
    fn phi_solves_its_equation() {
        assert!((PHI * PHI - PHI - 1.0).abs() < 1e-15);
        assert!((PHI_HAT * PHI_HAT - PHI_HAT - 1.0).abs() < 1e-15);
    }

    #[test]
    fn binet_is_exact_for_moderate_indices() {
        for k in 0..=70 {
            assert_eq!(binet_approx(k), fib(k), "k = {k}");
        }
    }

    #[test]
    fn log_phi_of_phi_is_one() {
        assert!((log_phi(PHI) - 1.0).abs() < 1e-12);
        assert!((log_phi(1.0)).abs() < 1e-12);
    }

    #[test]
    fn limit_ratio_value() {
        let r = receive_two_over_receive_all_limit();
        assert!((r - 1.4404).abs() < 1e-3, "got {r}");
    }

    #[test]
    #[should_panic]
    fn log_phi_rejects_nonpositive() {
        let _ = log_phi(0.0);
    }

    #[test]
    fn index_sandwich_of_theorem8() {
        // log_φ(F_k) + 1 <= k <= log_φ(F_k) + 2 for k >= 2 (paper, proof of Thm 8).
        for k in 3..=80 {
            let lf = log_phi(fib(k) as f64);
            assert!(lf + 1.0 <= k as f64 + 1e-9, "k = {k}");
            assert!(k as f64 <= lf + 2.0 + 1e-9, "k = {k}");
        }
    }
}
