//! Golden-ratio asymptotics.
//!
//! The paper's Theorems 8 and 13 state `M(n) = n·log_φ n + Θ(n)` and
//! `F(L,n) = n·log_φ L + Θ(n)`; Theorems 19/20 state the receive-two vs
//! receive-all gap `log_φ 2 ≈ 1.44`. These helpers provide the continuous
//! side of those statements for tests and experiment annotations.

/// The golden ratio `φ = (1 + √5)/2`, the positive root of `x² = x + 1`.
pub const PHI: f64 = 1.618033988749894848204586834365638118_f64;

/// The conjugate root `φ̂ = (1 − √5)/2 ≈ −0.618`.
pub const PHI_HAT: f64 = -0.618_033_988_749_894_9_f64;

/// `√5`.
pub const SQRT5: f64 = 2.236067977499789696409173668731276235_f64;

/// `log_φ x = ln x / ln φ`.
///
/// # Panics
/// Panics if `x <= 0`.
pub fn log_phi(x: f64) -> f64 {
    assert!(x > 0.0, "log_phi requires a positive argument, got {x}");
    x.ln() / PHI.ln()
}

/// Binet's closed form `F_k = round(φ^k / √5)`, exact for every `k` with
/// `F_k` in the `u64` range (`k ≤ 93`).
///
/// Plain `f64` evaluation of `φ^k` is *not* a sound way to compute this:
/// from `k ≈ 71` the accumulated rounding error of `powf`/`powi` (tens of
/// ulps at magnitude `≈ 10^15`) exceeds the distance from `φ^k/√5` to the
/// nearest integer (`|φ̂|^k/√5`, which shrinks geometrically), so the rounded
/// result flips off by one. This implementation therefore evaluates the
/// power in double-double ("compensated") arithmetic, which carries ≈ 32
/// significant digits — far more than the 19 digits of `F_93` — so the final
/// rounding is exact across the whole supported range.
///
/// # Panics
/// Panics if `k > MAX_FIB_INDEX_U64` (the result would overflow `u64`).
pub fn binet_approx(k: usize) -> u64 {
    assert!(
        k <= crate::seq::MAX_FIB_INDEX_U64,
        "F_{k} does not fit in u64"
    );
    // |φ̂|^k/√5 < 1/2 for all k ≥ 0, so rounding φ^k/√5 alone yields F_k.
    let sqrt5 = Dd::sqrt5();
    let phi = Dd::phi(sqrt5);
    // sm-lint: allow(narrowing-cast) — k ≤ MAX_FIB_INDEX_U64 = 93, asserted at entry
    phi.powi(k as u32).div(sqrt5).round_to_u64()
}

/// A double-double value `hi + lo` with `|lo| ≤ ulp(hi)/2`: an unevaluated
/// sum of two `f64`s carrying ≈ 106 bits of significand.
#[derive(Debug, Clone, Copy)]
struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    fn from_f64(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// Error-free sum of two `f64`s (Knuth two-sum).
    fn two_sum(a: f64, b: f64) -> Self {
        let s = a + b;
        let bb = s - a;
        let err = (a - (s - bb)) + (b - bb);
        Dd { hi: s, lo: err }
    }

    /// Error-free product of two `f64`s via fused multiply-add.
    fn two_prod(a: f64, b: f64) -> Self {
        let p = a * b;
        let err = a.mul_add(b, -p);
        Dd { hi: p, lo: err }
    }

    fn mul(self, rhs: Self) -> Self {
        let p = Self::two_prod(self.hi, rhs.hi);
        let lo = p.lo + (self.hi * rhs.lo + self.lo * rhs.hi);
        let s = Self::two_sum(p.hi, lo);
        Dd { hi: s.hi, lo: s.lo }
    }

    fn div(self, rhs: Self) -> Self {
        let q1 = self.hi / rhs.hi;
        // Remainder r = self − q1·rhs, evaluated in double-double.
        let p = rhs.mul(Self::from_f64(q1));
        let r_hi = Self::two_sum(self.hi, -p.hi);
        let r = r_hi.lo + (self.lo - p.lo);
        let q2 = (r_hi.hi + r) / rhs.hi;
        Self::two_sum(q1, q2)
    }

    /// `self^k` by binary exponentiation (≈ 2·log₂ k double-double
    /// multiplications, each with relative error ≈ 2⁻¹⁰⁴).
    fn powi(self, mut k: u32) -> Self {
        let mut base = self;
        let mut acc = Dd::from_f64(1.0);
        while k > 0 {
            if k & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            k >>= 1;
        }
        acc
    }

    /// `√5` to double-double precision: one Newton correction on the
    /// correctly-rounded `f64` square root.
    fn sqrt5() -> Self {
        let hi = 5.0_f64.sqrt();
        let p = Self::two_prod(hi, hi);
        let residual = (5.0 - p.hi) - p.lo;
        Dd {
            hi,
            lo: residual / (2.0 * hi),
        }
    }

    /// `φ = (1 + √5)/2` to double-double precision (halving is exact).
    fn phi(sqrt5: Self) -> Self {
        let s = Self::two_sum(1.0, sqrt5.hi);
        let sum = Self::two_sum(s.hi, s.lo + sqrt5.lo);
        Dd {
            hi: sum.hi / 2.0,
            lo: sum.lo / 2.0,
        }
    }

    /// Nearest integer as `u64`. The value must be non-negative and the
    /// total double-double error must be below 1/2 for this to be exact.
    fn round_to_u64(self) -> u64 {
        let base = self.hi.round();
        let correction = ((self.hi - base) + self.lo).round();
        // `base` is an integer-valued f64 < 2^64, so the cast is exact;
        // the correction covers the case where hi alone rounds the wrong
        // way across an integer boundary (|correction| ≤ 1 in practice).
        (base as i128 + correction as i128) as u64
    }
}

/// The limit ratio of Theorems 19/20: `log_φ 2 ≈ 1.4404`.
pub fn receive_two_over_receive_all_limit() -> f64 {
    log_phi(2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::fib;

    #[test]
    fn phi_solves_its_equation() {
        assert!((PHI * PHI - PHI - 1.0).abs() < 1e-15);
        assert!((PHI_HAT * PHI_HAT - PHI_HAT - 1.0).abs() < 1e-15);
    }

    #[test]
    fn binet_is_exact_across_the_u64_range() {
        for k in 0..=crate::seq::MAX_FIB_INDEX_U64 {
            assert_eq!(binet_approx(k), fib(k), "k = {k}");
        }
    }

    #[test]
    #[should_panic]
    fn binet_rejects_overflowing_index() {
        let _ = binet_approx(crate::seq::MAX_FIB_INDEX_U64 + 1);
    }

    #[test]
    fn log_phi_of_phi_is_one() {
        assert!((log_phi(PHI) - 1.0).abs() < 1e-12);
        assert!((log_phi(1.0)).abs() < 1e-12);
    }

    #[test]
    fn limit_ratio_value() {
        let r = receive_two_over_receive_all_limit();
        assert!((r - 1.4404).abs() < 1e-3, "got {r}");
    }

    #[test]
    #[should_panic]
    fn log_phi_rejects_nonpositive() {
        let _ = log_phi(0.0);
    }

    #[test]
    fn index_sandwich_of_theorem8() {
        // log_φ(F_k) + 1 <= k <= log_φ(F_k) + 2 for k >= 2 (paper, proof of Thm 8).
        for k in 3..=80 {
            let lf = log_phi(fib(k) as f64);
            assert!(lf + 1.0 <= k as f64 + 1e-9, "k = {k}");
            assert!(k as f64 <= lf + 2.0 + 1e-9, "k = {k}");
        }
    }
}
