#![forbid(unsafe_code)]
//! Exact Fibonacci kernel used throughout the stream-merging reproduction.
//!
//! The optimal delay-guaranteed merge cost of Bar-Noy–Goshi–Ladner is governed
//! by Fibonacci numbers (their Eq. (6): `M(n) = (k−1)·n − F_{k+2} + 2` for
//! `F_k ≤ n ≤ F_{k+1}`), the optimal last-merge intervals `I(n)` are phrased
//! in Fibonacci coordinates (their Theorem 3), and the on-line algorithm
//! chooses tree sizes `F_h` with `F_{h+1} < L+2 ≤ F_{h+2}` (their Theorem 12).
//!
//! This crate provides the exact integer machinery those results need:
//!
//! * [`fib`] / [`fib_u128`] — exact Fibonacci numbers (iteratively, `O(k)`)
//!   and [`fib_fast_doubling`] (`O(log k)`), with the paper's indexing
//!   `F_0 = 0, F_1 = 1, F_2 = 1, …`;
//! * [`FibTable`] — a precomputed table with rank queries
//!   (`largest_index_le`, `smallest_index_ge`) used on the hot paths of the
//!   closed-form algorithms;
//! * [`zeckendorf()`] — the unique representation of `n` as a sum of
//!   non-adjacent Fibonacci numbers (used by property tests and by the
//!   diagnostics in `sm-experiments`);
//! * [`golden`] — golden-ratio asymptotics (`log_φ`, Binet bounds) backing the
//!   paper's Theorems 8, 13, 19 and 20.

pub mod golden;
pub mod seq;
pub mod zeckendorf;

pub use golden::{binet_approx, log_phi, PHI, PHI_HAT, SQRT5};
pub use seq::{fib, fib_fast_doubling, fib_u128, is_fibonacci, FibTable, MAX_FIB_INDEX_U64};
pub use zeckendorf::{zeckendorf, ZeckendorfIter};
