//! Exact Fibonacci sequences and rank queries.
//!
//! Indexing follows the paper: `F_0 = 0, F_1 = 1, F_k = F_{k−1} + F_{k−2}`.

/// Largest `k` such that `F_k` fits in a `u64` (`F_94` overflows).
pub const MAX_FIB_INDEX_U64: usize = 93;

/// Largest `k` such that `F_k` fits in a `u128` (`F_187` overflows).
pub const MAX_FIB_INDEX_U128: usize = 186;

/// `F_k` as `u64`, computed iteratively.
///
/// # Panics
/// Panics if `k > MAX_FIB_INDEX_U64` (the value would overflow `u64`).
pub fn fib(k: usize) -> u64 {
    assert!(
        k <= MAX_FIB_INDEX_U64,
        "F_{k} does not fit in u64 (max index {MAX_FIB_INDEX_U64})"
    );
    if k == 0 {
        return 0;
    }
    // (a, b) = (F_{i-1}, F_i); never computes past F_k, so F_92 is reachable
    // without overflowing the debug-mode checked add.
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 1..k {
        let next = a + b;
        a = b;
        b = next;
    }
    b
}

/// `F_k` as `u128`, computed iteratively.
///
/// # Panics
/// Panics if `k > MAX_FIB_INDEX_U128`.
pub fn fib_u128(k: usize) -> u128 {
    assert!(
        k <= MAX_FIB_INDEX_U128,
        "F_{k} does not fit in u128 (max index {MAX_FIB_INDEX_U128})"
    );
    if k == 0 {
        return 0;
    }
    let (mut a, mut b) = (0u128, 1u128);
    for _ in 1..k {
        let next = a + b;
        a = b;
        b = next;
    }
    b
}

/// `(F_k, F_{k+1})` by fast doubling in `O(log k)` multiplications.
///
/// Uses the identities `F_{2m} = F_m (2 F_{m+1} − F_m)` and
/// `F_{2m+1} = F_m² + F_{m+1}²`.
///
/// # Panics
/// Panics if `k + 1 > MAX_FIB_INDEX_U64`.
pub fn fib_fast_doubling(k: usize) -> (u64, u64) {
    assert!(
        k < MAX_FIB_INDEX_U64,
        "fast doubling computes F_{{k+1}}; need k < {MAX_FIB_INDEX_U64}"
    );
    fn go(k: usize) -> (u128, u128) {
        if k == 0 {
            return (0, 1);
        }
        let (a, b) = go(k >> 1);
        let c = a * (2 * b - a);
        let d = a * a + b * b;
        if k & 1 == 0 {
            (c, d)
        } else {
            (d, c + d)
        }
    }
    let (a, b) = go(k);
    (a as u64, b as u64)
}

/// `true` iff `n` is a Fibonacci number (0, 1, 2, 3, 5, 8, …).
pub fn is_fibonacci(n: u64) -> bool {
    let (mut a, mut b) = (0u64, 1u64);
    while a < n {
        let Some(next) = a.checked_add(b) else {
            // n lies strictly between F_92 and F_93 > u64::MAX.
            return false;
        };
        a = b;
        b = next;
    }
    a == n
}

/// Precomputed table of Fibonacci numbers with rank queries.
///
/// The closed-form algorithms of the paper repeatedly need "the `k` with
/// `F_k ≤ n ≤ F_{k+1}`" — [`FibTable::largest_index_le`] answers that in
/// `O(log log n)`-sized binary searches over the (at most 93-entry) table.
#[derive(Debug, Clone)]
pub struct FibTable {
    values: Vec<u64>,
}

impl Default for FibTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FibTable {
    /// Builds the full `u64` table `F_0 … F_92`.
    pub fn new() -> Self {
        let mut values = vec![0u64; MAX_FIB_INDEX_U64 + 1];
        values[1] = 1;
        for k in 2..=MAX_FIB_INDEX_U64 {
            values[k] = values[k - 1] + values[k - 2];
        }
        Self { values }
    }

    /// `F_k`.
    ///
    /// # Panics
    /// Panics if `k > MAX_FIB_INDEX_U64`.
    #[inline]
    pub fn get(&self, k: usize) -> u64 {
        self.values[k]
    }

    /// All stored values `F_0 ..= F_92`.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The largest `k` with `F_k ≤ n`, for `n ≥ 1`.
    ///
    /// Because `F_1 = F_2 = 1`, the returned index is the *larger* of the two
    /// candidates at `n = 1` (i.e. 2), matching the paper's canonical choice
    /// of `k` with `F_k ≤ n ≤ F_{k+1}`; the paper's formulas are redundant at
    /// Fibonacci boundaries so either choice evaluates identically.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn largest_index_le(&self, n: u64) -> usize {
        assert!(n >= 1, "largest_index_le requires n >= 1");
        // partition_point returns the first k with F_k > n; values are
        // strictly increasing from index 2 onward and F_2 = 1 <= n.
        self.values.partition_point(|&f| f <= n) - 1
    }

    /// The smallest `k ≥ 2` with `F_k ≥ n`.
    ///
    /// # Panics
    /// Panics if `n` exceeds `F_92`.
    #[inline]
    pub fn smallest_index_ge(&self, n: u64) -> usize {
        assert!(
            n <= *self.values.last().unwrap(),
            "n = {n} exceeds the largest u64 Fibonacci number"
        );
        self.values.partition_point(|&f| f < n).max(2)
    }

    /// The paper's canonical decomposition `n = F_k + m` with
    /// `F_k ≤ n ≤ F_{k+1}` (largest such `k`) and `0 ≤ m < F_{k−1}`.
    ///
    /// Returns `(k, m)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn decompose(&self, n: u64) -> (usize, u64) {
        let k = self.largest_index_le(n);
        (k, n - self.values[k])
    }

    /// The `h` of the paper's Theorem 12: `F_{h+1} < L + 2 ≤ F_{h+2}`.
    ///
    /// # Panics
    /// Panics if `L == 0` or `L + 2` exceeds `F_92`.
    #[inline]
    pub fn theorem12_h(&self, media_len: u64) -> usize {
        assert!(media_len >= 1, "stream length must be at least 1 slot");
        // smallest index j with F_j >= L + 2; then h + 2 = j if F_j > L + 1,
        // handled uniformly: F_{h+2} >= L+2 and F_{h+1} < L+2.
        let j = self.values.partition_point(|&f| f < media_len + 2);
        j - 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_values_match_definition() {
        let expect = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144];
        for (k, &e) in expect.iter().enumerate() {
            assert_eq!(fib(k), e, "F_{k}");
        }
    }

    #[test]
    fn u64_bound_is_tight() {
        // F_93 fits in u64; F_94 does not.
        let f93 = fib(MAX_FIB_INDEX_U64);
        assert_eq!(f93, 12_200_160_415_121_876_738);
        assert_eq!(fib_u128(93), f93 as u128);
        assert!(fib_u128(94) > u64::MAX as u128);
    }

    #[test]
    #[should_panic]
    fn fib_overflow_panics() {
        let _ = fib(MAX_FIB_INDEX_U64 + 1);
    }

    #[test]
    fn fast_doubling_matches_iterative() {
        for k in 0..MAX_FIB_INDEX_U64 {
            let (fk, fk1) = fib_fast_doubling(k);
            assert_eq!(fk, fib(k), "F_{k}");
            assert_eq!(fk1, fib(k + 1), "F_{}", k + 1);
        }
    }

    #[test]
    fn is_fibonacci_small() {
        let fibs = [0u64, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for n in 0..=60u64 {
            assert_eq!(is_fibonacci(n), fibs.contains(&n), "n = {n}");
        }
    }

    #[test]
    fn table_matches_fib() {
        let t = FibTable::new();
        for k in 0..=MAX_FIB_INDEX_U64 {
            assert_eq!(t.get(k), fib(k));
        }
    }

    #[test]
    fn largest_index_le_canonical() {
        let t = FibTable::new();
        assert_eq!(t.largest_index_le(1), 2); // F_2 = 1 (canonical larger k)
        assert_eq!(t.largest_index_le(2), 3);
        assert_eq!(t.largest_index_le(3), 4);
        assert_eq!(t.largest_index_le(4), 4);
        assert_eq!(t.largest_index_le(5), 5);
        assert_eq!(t.largest_index_le(12), 6);
        assert_eq!(t.largest_index_le(13), 7);
    }

    #[test]
    fn largest_index_le_brackets_everywhere() {
        let t = FibTable::new();
        for n in 1..=10_000u64 {
            let k = t.largest_index_le(n);
            assert!(t.get(k) <= n && n <= t.get(k + 1), "n = {n}, k = {k}");
        }
    }

    #[test]
    fn decompose_invariants() {
        let t = FibTable::new();
        for n in 1..=10_000u64 {
            let (k, m) = t.decompose(n);
            assert_eq!(t.get(k) + m, n);
            // With the largest k, the remainder is strictly below F_{k-1}.
            assert!(m < t.get(k - 1).max(1), "n = {n}: m = {m}, k = {k}");
        }
    }

    #[test]
    fn theorem12_h_examples_from_paper() {
        let t = FibTable::new();
        // L = 1: F_3 = 2 < 3 <= F_4 = 3, so h = 2 and F_h = 1 (paper: s = n).
        assert_eq!(t.theorem12_h(1), 2);
        // L = 2: F_4 = 3 < 4 <= F_5 = 5, so h = 3, F_h = 2.
        assert_eq!(t.theorem12_h(2), 3);
        // L = 4: paper says h = 4 and F_h = 3.
        assert_eq!(t.theorem12_h(4), 4);
        // L = 15: F_7 = 13 < 17 <= F_8 = 21, so h = 6, F_h = 8.
        assert_eq!(t.theorem12_h(15), 6);
        // L = 100: F_11 = 89 < 102 <= F_12 = 144, so h = 10, F_h = 55.
        assert_eq!(t.theorem12_h(100), 10);
    }

    #[test]
    fn theorem12_h_bracket_property() {
        let t = FibTable::new();
        for media_len in 1..=100_000u64 {
            let h = t.theorem12_h(media_len);
            assert!(t.get(h + 1) < media_len + 2, "L = {media_len}");
            assert!(media_len + 2 <= t.get(h + 2), "L = {media_len}");
        }
    }

    #[test]
    fn smallest_index_ge_is_inverse() {
        let t = FibTable::new();
        for n in 1..=5_000u64 {
            let k = t.smallest_index_ge(n);
            assert!(t.get(k) >= n);
            assert!(k == 2 || t.get(k - 1) < n);
        }
    }
}
