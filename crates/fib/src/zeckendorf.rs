//! Zeckendorf representation: every positive integer is uniquely a sum of
//! non-consecutive Fibonacci numbers (`n = Σ F_{k_i}`, `k_{i+1} ≥ k_i + 2`,
//! `k_i ≥ 2`).
//!
//! The stream-merging closed forms repeatedly peel the leading Fibonacci term
//! off `n` (the paper's `n = F_k + m` decomposition); the Zeckendorf expansion
//! is the full unrolling of that process, and the property tests in
//! `sm-offline` use it to cross-check the decomposition logic.

use crate::seq::FibTable;

/// Greedy Zeckendorf decomposition of `n ≥ 1`.
///
/// Returns the Fibonacci *indices*, strictly decreasing, each ≥ 2, with no
/// two consecutive.
///
/// # Panics
/// Panics if `n == 0`.
pub fn zeckendorf(n: u64) -> Vec<usize> {
    assert!(n >= 1, "Zeckendorf representation is defined for n >= 1");
    let table = FibTable::new();
    ZeckendorfIter {
        table,
        remaining: n,
    }
    .collect()
}

/// Iterator form of [`zeckendorf`], yielding indices lazily.
#[derive(Debug, Clone)]
pub struct ZeckendorfIter {
    table: FibTable,
    remaining: u64,
}

impl ZeckendorfIter {
    /// Starts a decomposition of `n` (which may be 0, yielding nothing).
    pub fn new(n: u64) -> Self {
        Self {
            table: FibTable::new(),
            remaining: n,
        }
    }
}

impl Iterator for ZeckendorfIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let k = self.table.largest_index_le(self.remaining);
        self.remaining -= self.table.get(k);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::fib;

    fn reconstruct(indices: &[usize]) -> u64 {
        indices.iter().map(|&k| fib(k)).sum()
    }

    #[test]
    fn small_cases() {
        assert_eq!(zeckendorf(1), vec![2]);
        assert_eq!(zeckendorf(2), vec![3]);
        assert_eq!(zeckendorf(3), vec![4]);
        assert_eq!(zeckendorf(4), vec![4, 2]);
        assert_eq!(zeckendorf(100), vec![11, 6, 4]); // 89 + 8 + 3
    }

    #[test]
    fn reconstructs_and_is_nonadjacent() {
        for n in 1..=20_000u64 {
            let z = zeckendorf(n);
            assert_eq!(reconstruct(&z), n, "n = {n}");
            for w in z.windows(2) {
                assert!(w[0] >= w[1] + 2, "adjacent indices for n = {n}: {z:?}");
                assert!(w[1] >= 2);
            }
        }
    }

    #[test]
    fn iterator_matches_vec_form() {
        for n in 1..=500u64 {
            let via_iter: Vec<usize> = ZeckendorfIter::new(n).collect();
            assert_eq!(via_iter, zeckendorf(n));
        }
    }

    #[test]
    fn zero_yields_empty_iterator() {
        assert_eq!(ZeckendorfIter::new(0).count(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_panics_in_eager_form() {
        let _ = zeckendorf(0);
    }
}
