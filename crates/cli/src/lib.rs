#![forbid(unsafe_code)]
//! `smctl` — a command-line front end over the whole workspace.
//!
//! The binary is a thin wrapper around [`run`], which takes the argument
//! vector and returns the rendered output (or a [`CliError`]), so every
//! subcommand is unit-testable without spawning processes.
//!
//! ```text
//! smctl mcost <n>             merge costs M(n), Mω(n) and the interval I(n)
//! smctl tree <n>              optimal merge tree for n arrivals
//! smctl plan <L> <n>          optimal merge forest for media length L
//! smctl diagram <L> <n>       ASCII stream diagram (the paper's Fig. 3)
//! smctl program <L> <n> <t>   receiving program of the client arriving at t
//! smctl online <L> <horizon>  on-line DG cost vs the off-line optimum
//! smctl broadcast <L> <D>     static broadcasting schemes for delay D
//! smctl server <k> <budget>   per-title delays for a Zipf catalog
//! smctl serve <horizon> <budget> <L>:<mean>[:<policy>] [...]
//!                             live multi-title serving run: arrivals are
//!                             re-planned at traffic time, never declined
//! ```

use std::fmt;
use std::fmt::Write as _;

pub mod render;

/// Errors surfaced to the user (printed to stderr, exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Unknown or missing subcommand; the payload is the usage text.
    Usage(String),
    /// A subcommand received a malformed or out-of-range argument.
    BadArgument { arg: String, reason: String },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(usage) => write!(f, "{usage}"),
            Self::BadArgument { arg, reason } => {
                write!(f, "bad argument `{arg}`: {reason}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text (also returned by `smctl help`).
pub fn usage() -> String {
    "\
smctl — guaranteed start-up delay Media-on-Demand with stream merging
       (Bar-Noy, Goshi, Ladner; SPAA'03 / JDA'06)

USAGE: smctl <command> [args]

COMMANDS
  mcost <n>              M(n), Mω(n), and the last-merge interval I(n)
  tree <n>               optimal merge tree for arrivals 0..n
  plan <L> <n>           optimal merge forest for media length L (slots)
  diagram <L> <n>        ASCII stream diagram (paper Fig. 3 style)
  program <L> <n> <t>    receiving program of the client arriving at slot t
  online <L> <horizon>   on-line Delay Guaranteed cost vs off-line optimum
  broadcast <L> <D>      static broadcasting schemes at delay D (D | L)
  server <k> <budget>    per-title delay plan for a k-title Zipf catalog
  serve <horizon> <budget|unlimited> <L>:<mean>[:dg|dyadic] [...]
                         live multi-title serving run: one Poisson title
                         per <L>:<mean> spec, every arrival re-planned at
                         traffic time under the shared channel budget —
                         overload becomes start-up delay, never a decline
  policies <L> <lambda>  on-line policy costs at inter-arrival gap lambda
                         (as % of the media length, constant-rate arrivals)
  client <scheme> <L> <D> <t>
                         a broadcast client's reception schedule; scheme is
                         staggered|pyramid|skyscraper|fast
  help                   this text"
        .to_string()
}

fn parse<T: std::str::FromStr>(arg: &str, what: &str) -> Result<T, CliError> {
    arg.parse().map_err(|_| CliError::BadArgument {
        arg: arg.to_string(),
        reason: format!("expected {what}"),
    })
}

fn positive(n: u64, arg: &str) -> Result<u64, CliError> {
    if n == 0 {
        return Err(CliError::BadArgument {
            arg: arg.to_string(),
            reason: "must be positive".to_string(),
        });
    }
    Ok(n)
}

/// Dispatches a full argument vector (without the program name).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(usage()),
        Some("mcost") => {
            let n = positive(parse(required(&mut it, "n")?, "a positive integer")?, "n")?;
            Ok(render::mcost(n))
        }
        Some("tree") => {
            let n = positive(parse(required(&mut it, "n")?, "a positive integer")?, "n")?;
            Ok(render::tree(n))
        }
        Some("plan") => {
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let n = positive(parse(required(&mut it, "n")?, "a positive integer")?, "n")?;
            Ok(render::plan(l, n))
        }
        Some("diagram") => {
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let n = positive(parse(required(&mut it, "n")?, "a positive integer")?, "n")?;
            Ok(render::diagram(l, n))
        }
        Some("program") => {
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let n = positive(parse(required(&mut it, "n")?, "a positive integer")?, "n")?;
            let t: u64 = parse(required(&mut it, "t")?, "a slot in 0..n")?;
            if t >= n {
                return Err(CliError::BadArgument {
                    arg: t.to_string(),
                    reason: format!("client slot must lie in 0..{n}"),
                });
            }
            Ok(render::program(l, n, t))
        }
        Some("online") => {
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let n = positive(
                parse(required(&mut it, "horizon")?, "a positive integer")?,
                "horizon",
            )?;
            Ok(render::online(l, n))
        }
        Some("broadcast") => {
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let d = positive(parse(required(&mut it, "D")?, "a positive integer")?, "D")?;
            render::broadcast(l, d)
        }
        Some("server") => {
            let k = positive(parse(required(&mut it, "k")?, "a positive integer")?, "k")?;
            let b = positive(
                parse(required(&mut it, "budget")?, "a positive integer")?,
                "budget",
            )?;
            Ok(render::server(k as usize, b))
        }
        Some("serve") => {
            let horizon: f64 = parse(required(&mut it, "horizon")?, "a positive number")?;
            let budget = parse_budget(required(&mut it, "budget")?)?;
            let titles: Vec<sm_serve::TitleConfig> =
                it.map(parse_title_spec).collect::<Result<_, CliError>>()?;
            if titles.is_empty() {
                return Err(CliError::BadArgument {
                    arg: "<L>:<mean>".to_string(),
                    reason: "the catalog needs at least one title spec".to_string(),
                });
            }
            render::serve(horizon, budget, titles)
        }
        Some("policies") => {
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let lambda: f64 = parse(required(&mut it, "lambda")?, "a positive number")?;
            if lambda.is_nan() || lambda <= 0.0 || !lambda.is_finite() {
                return Err(CliError::BadArgument {
                    arg: lambda.to_string(),
                    reason: "lambda must be a positive percentage".to_string(),
                });
            }
            Ok(render::policies(l, lambda))
        }
        Some("client") => {
            let scheme = required(&mut it, "scheme")?;
            let l = positive(parse(required(&mut it, "L")?, "a positive integer")?, "L")?;
            let d = positive(parse(required(&mut it, "D")?, "a positive integer")?, "D")?;
            let t: u64 = parse(required(&mut it, "t")?, "a non-negative integer")?;
            render::broadcast_client(scheme, l, d, t)
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// `serve`'s shared channel budget: `unlimited` lifts the cap, any other
/// value must be a positive channel count.
fn parse_budget(arg: &str) -> Result<Option<usize>, CliError> {
    if arg == "unlimited" {
        return Ok(None);
    }
    let n: usize = parse(arg, "a positive integer or `unlimited`")?;
    positive(n as u64, arg)?;
    Ok(Some(n))
}

/// One `serve` title spec, `<L>:<mean>[:<policy>]` — media length in
/// slots, mean Poisson inter-arrival gap, and an optional policy name
/// (`dg` or `dyadic`; dyadic is the default).
fn parse_title_spec(spec: &str) -> Result<sm_serve::TitleConfig, CliError> {
    let bad = |reason: String| CliError::BadArgument {
        arg: spec.to_string(),
        reason,
    };
    let mut parts = spec.split(':');
    let l: u64 = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| bad("expected <L>:<mean>[:<policy>]".to_string()))?
        .parse()
        .map_err(|_| bad("media length must be a positive integer".to_string()))?;
    if l == 0 {
        return Err(bad("media length must be positive".to_string()));
    }
    let mean: f64 = parts
        .next()
        .ok_or_else(|| bad("missing mean inter-arrival gap".to_string()))?
        .parse()
        .map_err(|_| bad("mean gap must be a positive number".to_string()))?;
    if !(mean > 0.0 && mean.is_finite()) {
        return Err(bad("mean gap must be finite and positive".to_string()));
    }
    let policy = match parts.next() {
        None | Some("dyadic") => sm_serve::PolicyKind::Dyadic,
        Some("dg") => sm_serve::PolicyKind::DelayGuaranteed,
        Some(other) => return Err(bad(format!("unknown policy `{other}` (use dg|dyadic)"))),
    };
    if parts.next().is_some() {
        return Err(bad("too many `:` fields".to_string()));
    }
    Ok(sm_serve::TitleConfig {
        policy,
        ..sm_serve::TitleConfig::new(l, mean)
    })
}

fn required<'a>(it: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, CliError> {
    it.next().ok_or_else(|| CliError::BadArgument {
        arg: format!("<{what}>"),
        reason: "missing".to_string(),
    })
}

/// Helper shared by render functions: a simple aligned table.
pub(crate) fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    for row in rows {
        out.push('\n');
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run_args(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert_eq!(run_args(&["help"]).unwrap(), out);
    }

    #[test]
    fn unknown_command_is_usage_error() {
        match run_args(&["frobnicate"]) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("frobnicate")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn missing_and_malformed_arguments() {
        assert!(matches!(
            run_args(&["mcost"]),
            Err(CliError::BadArgument { .. })
        ));
        assert!(matches!(
            run_args(&["mcost", "banana"]),
            Err(CliError::BadArgument { .. })
        ));
        assert!(matches!(
            run_args(&["mcost", "0"]),
            Err(CliError::BadArgument { .. })
        ));
    }

    #[test]
    fn mcost_prints_paper_values() {
        let out = run_args(&["mcost", "8"]).unwrap();
        assert!(out.contains("M(8) = 21"), "{out}");
        assert!(out.contains("Mω(8) = 17"), "{out}");
    }

    #[test]
    fn tree_prints_fig4() {
        let out = run_args(&["tree", "8"]).unwrap();
        assert!(out.contains("(0 (1) (2) (3 (4)) (5 (6) (7)))"), "{out}");
        assert!(out.contains("21"), "{out}");
    }

    #[test]
    fn plan_prints_worked_example() {
        // F(15, 8) = 36 with s = 1 (paper §2).
        let out = run_args(&["plan", "15", "8"]).unwrap();
        assert!(out.contains("full streams: 1"), "{out}");
        assert!(out.contains("36"), "{out}");
    }

    #[test]
    fn program_prints_client_h() {
        // Client 7 in the Fig. 3/4 example: path 0 → 5 → 7.
        let out = run_args(&["program", "15", "8", "7"]).unwrap();
        assert!(out.contains("path: 0 -> 5 -> 7"), "{out}");
    }

    #[test]
    fn program_rejects_out_of_range_client() {
        assert!(matches!(
            run_args(&["program", "15", "8", "8"]),
            Err(CliError::BadArgument { .. })
        ));
    }

    #[test]
    fn online_reports_ratio() {
        let out = run_args(&["online", "50", "2000"]).unwrap();
        assert!(out.contains("ratio"), "{out}");
    }

    #[test]
    fn broadcast_requires_divisible_delay() {
        assert!(run_args(&["broadcast", "100", "3"]).is_err());
        let out = run_args(&["broadcast", "100", "2"]).unwrap();
        assert!(out.contains("harmonic"), "{out}");
        assert!(out.contains("skyscraper"), "{out}");
    }

    #[test]
    fn server_prints_plan() {
        let out = run_args(&["server", "3", "100"]).unwrap();
        assert!(out.contains("title-01"), "{out}");
        assert!(out.contains("peak"), "{out}");
    }

    #[test]
    fn policies_lists_the_roster() {
        let out = run_args(&["policies", "50", "1.0"]).unwrap();
        for name in [
            "delay guaranteed",
            "dyadic",
            "ermt",
            "patching",
            "plain batching",
        ] {
            assert!(out.contains(name), "{out}");
        }
        assert!(matches!(
            run_args(&["policies", "50", "-1"]),
            Err(CliError::BadArgument { .. })
        ));
    }

    #[test]
    fn serve_reports_delays_and_latency() {
        let out = run_args(&["serve", "300", "unlimited", "32:2"]).unwrap();
        assert!(out.contains("0 rejected"), "{out}");
        assert!(out.contains("start-up delay"), "{out}");
        assert!(out.contains("push latency"), "{out}");

        let contended = run_args(&["serve", "120", "1", "40:0.5", "40:0.5:dg"]).unwrap();
        assert!(contended.contains("shared budget: 1"), "{contended}");
        assert!(contended.contains("0 rejected"), "{contended}");
        assert!(contended.contains("delay-guaranteed"), "{contended}");
        assert!(contended.contains("dyadic"), "{contended}");

        // A zero budget, a missing catalog, and malformed title specs are
        // all argument errors, not panics.
        for bad in [
            vec!["serve", "300", "0", "32:2"],
            vec!["serve", "300", "unlimited"],
            vec!["serve", "300", "unlimited", "32"],
            vec!["serve", "300", "unlimited", "0:2"],
            vec!["serve", "300", "unlimited", "32:-1"],
            vec!["serve", "300", "unlimited", "32:2:bogus"],
            vec!["serve", "300", "unlimited", "32:2:dg:extra"],
        ] {
            assert!(
                matches!(run_args(&bad), Err(CliError::BadArgument { .. })),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn client_prints_reception_schedule() {
        let out = run_args(&["client", "skyscraper", "89", "1", "5"]).unwrap();
        assert!(out.contains("playback starts"), "{out}");
        assert!(out.contains("max concurrent channels: 2"), "{out}");
        let out = run_args(&["client", "fast", "15", "1", "0"]).unwrap();
        assert!(out.contains("segment  0"), "{out}");
        assert!(matches!(
            run_args(&["client", "bogus", "15", "1", "0"]),
            Err(CliError::BadArgument { .. })
        ));
    }

    #[test]
    fn diagram_contains_all_streams() {
        let out = run_args(&["diagram", "15", "8"]).unwrap();
        // All 8 streams appear with their lengths; full cost stated.
        assert!(out.contains("36"), "{out}");
    }

    #[test]
    fn table_alignment() {
        let t = table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
    }
}
