//! `smctl` binary entry point: parse argv, run, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sm_cli::run(&args) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
