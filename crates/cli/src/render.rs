//! Rendering of each `smctl` subcommand.

use std::fmt::Write as _;

use crate::{table, CliError};
use sm_core::{consecutive_slots, diagram, full_cost, ReceivingProgram};
use sm_offline::closed_form::ClosedForm;
use sm_offline::forest::optimal_forest;
use sm_offline::tree_builder::optimal_merge_tree;
use sm_offline::{dp, receive_all};
use sm_online::delay_guaranteed::online_full_cost;

/// `smctl mcost <n>`.
pub fn mcost(n: u64) -> String {
    let cf = ClosedForm::new();
    let (lo, hi) = cf.last_merge_interval(n.max(2));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "M({n}) = {}   (receive-two optimal merge cost)",
        cf.merge_cost(n)
    );
    let _ = writeln!(
        out,
        "Mω({n}) = {}   (receive-all optimal merge cost)",
        receive_all::merge_cost(n)
    );
    if n >= 2 {
        let _ = writeln!(
            out,
            "I({n}) = [{lo}, {hi}]   (arrivals that can merge last to the root)"
        );
    }
    out
}

/// `smctl tree <n>`.
pub fn tree(n: u64) -> String {
    let t = optimal_merge_tree(n as usize);
    let times = consecutive_slots(n as usize);
    let cost = sm_core::merge_cost(&t, &times);
    let mut out = String::new();
    let _ = writeln!(out, "optimal merge tree for n = {n}:");
    let _ = writeln!(out, "  {}", t.to_sexpr());
    let _ = writeln!(out, "merge cost: {cost}");
    let _ = writeln!(out, "height: {} (longest receiving program)", t.height());
    out
}

/// `smctl plan <L> <n>`.
pub fn plan(media_len: u64, n: u64) -> String {
    let plan = optimal_forest(media_len, n as usize);
    let sizes = plan.forest.sizes();
    let mut out = String::new();
    let _ = writeln!(out, "optimal merge forest for L = {media_len}, n = {n}:");
    let _ = writeln!(out, "  full streams: {}", plan.s);
    let _ = writeln!(out, "  tree sizes: {sizes:?}");
    let _ = writeln!(out, "  full cost F(L,n) = {} slot-units", plan.cost);
    let _ = writeln!(
        out,
        "  average bandwidth: {:.3} streams",
        plan.cost as f64 / n as f64
    );
    let _ = writeln!(
        out,
        "  plain batching would cost {} (x{:.2})",
        n * media_len,
        (n * media_len) as f64 / plan.cost as f64
    );
    out
}

/// `smctl diagram <L> <n>`.
pub fn diagram(media_len: u64, n: u64) -> String {
    let plan = optimal_forest(media_len, n as usize);
    let times = consecutive_slots(n as usize);
    let rendered = diagram::render_forest(&plan.forest, &times, media_len);
    let cost = full_cost(&plan.forest, &times, media_len);
    format!(
        "{rendered}\nfull cost: {cost} slot-units (s = {} full streams)\n",
        plan.s
    )
}

/// `smctl program <L> <n> <t>`.
pub fn program(media_len: u64, n: u64, client: u64) -> String {
    let plan = optimal_forest(media_len, n as usize);
    let times = consecutive_slots(n as usize);
    let (tree_idx, local) = plan.forest.locate(client as usize);
    let start = plan.forest.tree_start(tree_idx);
    let tree = &plan.forest.trees()[tree_idx];
    let end = start + tree.len();
    let local_times = &times[start..end];
    let rp = ReceivingProgram::build(tree, local_times, media_len, local);
    let mut out = String::new();
    let path_global: Vec<String> = rp.path.iter().map(|&x| (x + start).to_string()).collect();
    let _ = writeln!(
        out,
        "client {client} (tree {tree_idx}, local {local}) path: {}",
        path_global.join(" -> ")
    );
    for (stage, seg) in rp.segments.iter().enumerate() {
        if seg.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  stage {stage}: parts {:>3} ..= {:<3} from stream {}",
            seg.first_part,
            seg.last_part,
            seg.stream + start
        );
    }
    let _ = writeln!(
        out,
        "buffer needed: {} slots (Lemma 15)",
        sm_core::required_buffer(tree, local_times, media_len, local)
    );
    out
}

/// `smctl online <L> <horizon>`.
pub fn online(media_len: u64, horizon: u64) -> String {
    let cf = ClosedForm::new();
    let h = cf.fib().theorem12_h(media_len);
    let fh = cf.fib().get(h);
    let online = online_full_cost(media_len, horizon);
    let offline = sm_offline::forest::optimal_full_cost(media_len, horizon);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "on-line Delay Guaranteed, L = {media_len}, horizon = {horizon}:"
    );
    let _ = writeln!(out, "  tree size F_h = {fh} (h = {h})");
    let _ = writeln!(out, "  on-line cost  A(L,n) = {online}");
    let _ = writeln!(out, "  off-line cost F(L,n) = {offline}");
    let _ = writeln!(
        out,
        "  ratio = {:.5}  (Theorem 22 bound: 1 + 2L/n = {:.5})",
        online as f64 / offline as f64,
        1.0 + 2.0 * media_len as f64 / horizon as f64
    );
    out
}

/// `smctl broadcast <L> <D>`.
pub fn broadcast(media_len: u64, delay: u64) -> Result<String, CliError> {
    let rows =
        sm_broadcast::static_tradeoff(media_len, delay).map_err(|e| CliError::BadArgument {
            arg: format!("{media_len} {delay}"),
            reason: e.to_string(),
        })?;
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                format!("{:.3}", r.channels),
                r.worst_delay.to_string(),
                r.max_concurrent.to_string(),
                r.max_buffer.to_string(),
            ]
        })
        .collect();
    let mut out =
        format!("static broadcasting schemes for L = {media_len} units, delay = {delay}:\n");
    out.push_str(&table(
        &["scheme", "channels", "worst-delay", "recv-cap", "buffer"],
        &table_rows,
    ));
    out.push('\n');
    let merging = sm_online::capacity::steady_state_bandwidth(media_len / delay);
    let _ = writeln!(
        out,
        "\nstream merging (Delay Guaranteed, same delay): peak {} / avg {:.2} streams",
        merging.peak, merging.average
    );
    Ok(out)
}

/// `smctl server <k> <budget>`.
pub fn server(titles: usize, budget: u64) -> String {
    let catalog = sm_server::Catalog::zipf(titles, 1.0, &[120.0, 90.0, 100.0]);
    let candidates = [1.0, 2.0, 5.0, 10.0, 20.0];
    match sm_server::plan_weighted(&catalog, budget, &candidates) {
        None => format!(
            "no feasible plan: even {}-minute delays exceed {budget} streams",
            candidates.last().unwrap()
        ),
        Some(plan) => {
            let probs = catalog.probabilities();
            let rows: Vec<Vec<String>> = catalog
                .titles()
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    vec![
                        t.name.clone(),
                        format!("{:.0}", t.duration_minutes),
                        format!("{:.3}", probs[i]),
                        format!("{:.0}", plan.delays_minutes[i]),
                        plan.peaks[i].to_string(),
                    ]
                })
                .collect();
            let mut out = format!(
                "per-title delay plan for {titles} Zipf titles, budget {budget} streams:\n"
            );
            out.push_str(&table(
                &["title", "minutes", "popularity", "delay-min", "peak"],
                &rows,
            ));
            let _ = write!(
                out,
                "\n\ntotal peak: {} / {budget}   expected delay: {:.2} min",
                plan.total_peak, plan.expected_delay
            );
            out
        }
    }
}

/// `smctl serve <horizon> <budget|unlimited> <L>:<mean>[:<policy>] [...]`
/// — a live multi-title serving run under one shared channel budget.
pub fn serve(
    horizon: f64,
    budget: Option<usize>,
    titles: Vec<sm_serve::TitleConfig>,
) -> Result<String, CliError> {
    let config = sm_serve::MultiServeConfig {
        budget,
        ..sm_serve::MultiServeConfig::new(titles, horizon)
    };
    let report = sm_serve::serve_multi(&config).map_err(|e| CliError::BadArgument {
        arg: format!("serve {horizon}"),
        reason: e.to_string(),
    })?;
    let mut out = format!(
        "live serve: {} title(s), horizon = {horizon} slots, {}\n",
        report.titles.len(),
        match budget {
            Some(b) => format!("shared budget: {b} channel(s)"),
            None => "unbounded budget".to_string(),
        }
    );
    let _ = writeln!(
        out,
        "  arrivals: {} generated, {} served, {} rejected",
        report.generated, report.served, report.rejected
    );
    let d = &report.delay;
    let _ = writeln!(
        out,
        "  start-up delay: p50 {} / p99 {} / max {} slots, mean {:.2}",
        d.p50_slots, d.p99_slots, d.max_slots, d.mean_slots
    );
    let rows: Vec<Vec<String>> = config
        .titles
        .iter()
        .zip(&report.titles)
        .enumerate()
        .map(|(i, (tc, tr))| {
            vec![
                format!("title-{i:02}"),
                tr.media_len.to_string(),
                match tc.policy {
                    sm_serve::PolicyKind::DelayGuaranteed => "delay-guaranteed".to_string(),
                    sm_serve::PolicyKind::Dyadic => "dyadic".to_string(),
                },
                tr.generated.to_string(),
                tr.groups.to_string(),
                tr.planned_peak.to_string(),
                tr.delay.p99_slots.to_string(),
                tr.delay.max_slots.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::table(
        &[
            "title", "L", "policy", "arrivals", "groups", "peak", "p99", "max",
        ],
        &rows,
    ));
    out.push('\n');
    let _ = writeln!(
        out,
        "  planner memo: {} per-length analyses served from cache",
        report.memo_hits
    );
    let l = report.latency;
    let _ = write!(
        out,
        "  push latency: p50 {} ns, p90 {} ns, p99 {} ns, max {} ns, mean {} ns",
        l.p50_ns, l.p90_ns, l.p99_ns, l.max_ns, l.mean_ns
    );
    Ok(out)
}

/// `smctl client <scheme> <L> <D> <arrival>` — the reception schedule of
/// one broadcast client.
pub fn broadcast_client(
    scheme: &str,
    media_len: u64,
    delay: u64,
    arrival: u64,
) -> Result<String, CliError> {
    use sm_broadcast::verify::client_schedule;
    let bad = |reason: String| CliError::BadArgument {
        arg: scheme.to_string(),
        reason,
    };
    let plan = match scheme {
        "staggered" => sm_broadcast::staggered_broadcasting(media_len, delay),
        "pyramid" => sm_broadcast::pyramid_broadcasting(media_len, delay, 1.5),
        "skyscraper" => sm_broadcast::skyscraper_broadcasting(media_len, delay, 52),
        "fast" => {
            let k = sm_broadcast::fast::channels_for(media_len, delay);
            sm_broadcast::fast_broadcasting(k, delay)
        }
        other => {
            return Err(bad(format!(
                "unknown scheme `{other}` (use staggered|pyramid|skyscraper|fast)"
            )))
        }
    }
    .map_err(|e| bad(e.to_string()))?;
    let outcome = client_schedule(&plan, arrival).map_err(|e| bad(e.to_string()))?;
    let mut out = format!(
        "{scheme} client, media {} units, arrival {arrival}:\n\
         playback starts at {} (delay {})\n",
        plan.media_len(),
        outcome.playback_start,
        outcome.delay
    );
    let prefix = plan.prefix_lengths();
    for (i, &(s, e)) in outcome.receive_windows.iter().enumerate() {
        let _ = writeln!(
            out,
            "  segment {i:>2}: receive [{s:>4}, {e:>4})  playback at {:>4}",
            outcome.playback_start + prefix[i]
        );
    }
    let _ = writeln!(
        out,
        "max concurrent channels: {}; max buffer: {} units",
        outcome.max_concurrent, outcome.max_buffer
    );
    Ok(out)
}

/// `smctl policies <L> <lambda_pct>` — one row per on-line policy at a
/// constant-rate workload (gap = `lambda_pct`% of the media, horizon 50
/// media lengths).
pub fn policies(media_len: u64, lambda_pct: f64) -> String {
    use sm_online::batching::plain_batching_cost;
    use sm_online::dyadic::{dyadic_total_cost, DyadicConfig};
    use sm_online::hierarchical::ermt_tuned_cost;
    use sm_online::patching::{optimal_threshold, patching_total_cost};
    use sm_workload::{ArrivalProcess, ConstantRate};

    let media = media_len as f64;
    let horizon = 50.0 * media;
    let interval = lambda_pct / 100.0 * media;
    let arrivals = ConstantRate::new(interval).generate(horizon);
    let dg = online_full_cost(media_len, horizon as u64) as f64 / media;
    let rows = [
        ("delay guaranteed", dg),
        (
            "dyadic (alpha=phi)",
            dyadic_total_cost(
                DyadicConfig::golden_constant_rate(media_len),
                media,
                &arrivals,
            ) / media,
        ),
        (
            "ermt (tuned)",
            ermt_tuned_cost(media, 1.0 / interval, &arrivals) / media,
        ),
        (
            "patching (tau*)",
            patching_total_cost(media, optimal_threshold(media, 1.0 / interval), &arrivals) / media,
        ),
        (
            "plain batching",
            plain_batching_cost(&arrivals, 1.0, media) / media,
        ),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, cost)| vec![name.to_string(), format!("{cost:.1}")])
        .collect();
    let mut out = format!(
        "on-line policies, L = {media_len} slots, constant-rate gap = {lambda_pct}% \
         of the media, horizon = 50 media lengths\n(total bandwidth in complete-stream \
         equivalents; delay = 1 slot)\n\n"
    );
    out.push_str(&table(&["policy", "streams"], &table_rows));
    out
}

/// Re-exported for the doc examples; `smctl mcost` over a small range used
/// by the DP cross-check test.
pub fn mcost_table(upto: usize) -> Vec<u64> {
    dp::merge_cost_table(upto)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcost_matches_dp_table() {
        let tbl = mcost_table(16);
        for (i, &v) in tbl.iter().enumerate().skip(1) {
            assert!(mcost(i as u64).contains(&format!("M({i}) = {v}")));
        }
    }

    #[test]
    fn online_ratio_is_above_one() {
        let out = online(50, 5000);
        assert!(out.contains("ratio"));
    }

    #[test]
    fn server_infeasible_budget_reports_cleanly() {
        let out = server(5, 1);
        assert!(out.contains("no feasible plan"));
    }
}
