//! Oracle equivalence: the event-driven engine must reproduce the dense
//! slot-stepped engine *bit for bit* — same totals, same bandwidth
//! change-points, same per-client `max_buffer`/`max_concurrent`/`min_slack`,
//! and the same first error on infeasible inputs — across randomized
//! forests, arrival sequences, media lengths, and buffer bounds. The
//! streaming API (`simulate_streaming`, fed through its `IntoIterator`
//! entry point) is pinned against the collected `simulate_with` path on
//! every case, and on every *sorted* case the push-based incremental
//! engine (`simulate_incremental`) is pinned bit-identical as well:
//! summary, reports, emission order, and first error.

use proptest::prelude::*;
use sm_core::{consecutive_slots, MergeForest, MergeTree};
use sm_sim::{
    simulate_incremental, simulate_streaming, simulate_with, Arrival, ClientReport, IngestError,
    SimConfig, SimError, SimReport,
};

fn run_both(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    buffer_bound: Option<u64>,
) -> (
    Result<SimReport, sm_sim::SimError>,
    Result<SimReport, sm_sim::SimError>,
) {
    let dense = simulate_with(
        forest,
        times,
        media_len,
        SimConfig {
            buffer_bound,
            ..SimConfig::dense()
        },
    );
    let events = simulate_with(
        forest,
        times,
        media_len,
        SimConfig {
            buffer_bound,
            ..SimConfig::events()
        },
    );
    (dense, events)
}

/// Runs the streaming API, collecting emitted reports in emission order.
fn run_streaming(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    buffer_bound: Option<u64>,
) -> (
    Result<sm_sim::StreamingSummary, SimError>,
    Vec<ClientReport>,
) {
    let mut emitted = Vec::new();
    // Through the iterator entry point, so every equivalence case also
    // exercises the `impl IntoIterator<Item = Arrival>` API surface.
    let summary = simulate_streaming(
        forest,
        times.iter().copied().map(Arrival::from),
        media_len,
        SimConfig {
            buffer_bound,
            ..SimConfig::events()
        },
        |r| emitted.push(r),
    );
    (summary, emitted)
}

/// The lazy streaming path must agree with the collected event-engine
/// report: same bandwidth change-points, same totals, same per-client
/// measurements, and the same first error — with emissions arriving in
/// part-deadline order.
fn assert_streaming_matches(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    buffer_bound: Option<u64>,
    events: &Result<SimReport, SimError>,
) {
    let (summary, mut emitted) = run_streaming(forest, times, media_len, buffer_bound);
    match (events, summary) {
        (Ok(report), Ok(summary)) => {
            assert_eq!(summary.bandwidth, report.bandwidth);
            assert_eq!(summary.total_units, report.total_units);
            assert_eq!(summary.clients, report.clients.len());
            // Emission order is part-deadline order (`t_c + L`, ties by
            // arrival index); for sorted times that is arrival order.
            let deadlines_sorted = times.windows(2).all(|w| w[0] <= w[1]);
            if deadlines_sorted {
                assert_eq!(emitted, report.clients, "emission order = arrival order");
            } else {
                emitted.sort_unstable_by_key(|r| r.client);
                assert_eq!(emitted, report.clients);
            }
        }
        (Err(report_err), Err(stream_err)) => {
            // `simulate_with` normalizes the first error to arrival-index
            // order; the raw stream fails at the first part-*deadline*
            // violation. For sorted times the two coincide.
            if times.windows(2).all(|w| w[0] <= w[1]) {
                assert_eq!(*report_err, stream_err);
            }
        }
        (report, summary) => {
            panic!("streaming/collected feasibility disagreement: {report:?} vs {summary:?}")
        }
    }
}

/// The push-based incremental engine replayed over the same arrivals must
/// be bit-identical to the collected event-engine report on every *sorted*
/// input (the push interface's clock contract): same summary, same
/// reports in the same emission order, same first error.
fn assert_incremental_matches(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    buffer_bound: Option<u64>,
    events: &Result<SimReport, SimError>,
) {
    if !times.windows(2).all(|w| w[0] <= w[1]) {
        return;
    }
    let mut emitted = Vec::new();
    let got = simulate_incremental(
        forest,
        times,
        media_len,
        SimConfig {
            buffer_bound,
            ..SimConfig::events()
        },
        |r| emitted.push(r),
    );
    match (events, got) {
        (Ok(report), Ok(inc)) => {
            assert_eq!(inc.summary.bandwidth, report.bandwidth);
            assert_eq!(inc.summary.total_units, report.total_units);
            assert_eq!(inc.summary.clients, report.clients.len());
            assert_eq!(emitted, report.clients, "incremental emission order");
            assert!(
                inc.max_open_trees <= forest.num_trees().max(1),
                "retention may never exceed the tree count"
            );
        }
        (Err(batch_err), Err(IngestError::Sim(ingest_err))) => {
            assert_eq!(ingest_err, *batch_err, "first error must pin");
        }
        (batch, ingest) => {
            panic!("incremental/batch feasibility disagreement: {batch:?} vs {ingest:?}")
        }
    }
}

/// Full bit-for-bit comparison, plus internal-consistency checks on success.
fn assert_engines_agree(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    buffer_bound: Option<u64>,
) {
    let (dense, events) = run_both(forest, times, media_len, buffer_bound);
    assert_eq!(dense, events, "L = {media_len}, n = {}", times.len());
    assert_streaming_matches(forest, times, media_len, buffer_bound, &events);
    assert_incremental_matches(forest, times, media_len, buffer_bound, &events);
    if let Ok(report) = events {
        assert_eq!(report.bandwidth.total_units(), report.total_units);
        // Per-slot bandwidth agreement at every change-point (and just
        // before it, exercising the piecewise-constant lookup).
        let dense_bw = dense.as_ref().unwrap().bandwidth.clone();
        for &(slot, count) in report.bandwidth.change_points() {
            assert_eq!(dense_bw.at(slot), count);
            assert_eq!(report.bandwidth.at(slot), count);
            assert_eq!(dense_bw.at(slot - 1), report.bandwidth.at(slot - 1));
        }
        assert_eq!(report.clients.len(), times.len());
        for (i, cr) in report.clients.iter().enumerate() {
            assert_eq!(cr.client, i, "reports must be in arrival order");
        }
    }
}

/// Strictly increasing, irregular arrival times from positive gaps.
fn cumulate(gaps: &[i64]) -> Vec<i64> {
    let mut t = 0i64;
    gaps.iter()
        .map(|&g| {
            let at = t;
            t += g;
            at
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimal_forests_agree(media_len in 2u64..64, n in 1usize..60) {
        let plan = sm_offline::forest::optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        assert_engines_agree(&plan.forest, &times, media_len, None);
    }

    #[test]
    fn optimal_forests_agree_under_buffer_bounds(
        media_len in 4u64..40,
        n in 1usize..40,
        bound in 0u64..6,
    ) {
        // Bounds small enough to trip BufferOverflow on many cases: the
        // engines must agree on the Ok reports *and* on the exact error.
        let plan = sm_offline::forest::optimal_forest(media_len, n);
        let times = consecutive_slots(n);
        assert_engines_agree(&plan.forest, &times, media_len, Some(bound));
    }

    #[test]
    fn delay_guaranteed_forests_agree(media_len in 2u64..48, n in 1usize..130) {
        let alg = sm_online::DelayGuaranteedOnline::new(media_len);
        let forest = alg.forest_after(n);
        let times = consecutive_slots(n);
        assert_engines_agree(&forest, &times, media_len, None);
    }

    #[test]
    fn general_dp_forests_agree_on_irregular_arrivals(
        gaps in proptest::collection::vec(1i64..5, 1..24),
        media_len in 4u64..24,
    ) {
        let times = cumulate(&gaps);
        let (forest, cost) = sm_offline::general::optimal_forest(&times, media_len);
        assert_engines_agree(&forest, &times, media_len, None);
        let (_, events) = run_both(&forest, &times, media_len, None);
        prop_assert_eq!(events.unwrap().total_units, cost);
    }

    #[test]
    fn deep_chain_forests_agree(
        media_len in 8u64..64,
        n in 1usize..120,
    ) {
        // The pathological many-segment case the endpoint sweep exists for:
        // maximal feasible chains (length L/2 + 1) tiled over the arrivals.
        let chain = (media_len / 2 + 1) as usize;
        let mut trees = Vec::new();
        let mut left = n;
        while left > 0 {
            let k = left.min(chain);
            trees.push(MergeTree::chain(k));
            left -= k;
        }
        let forest = MergeForest::from_trees(trees).unwrap();
        let times = consecutive_slots(n);
        assert_engines_agree(&forest, &times, media_len, None);
    }

    #[test]
    fn arbitrary_trees_agree_including_errors(
        seeds in proptest::collection::vec(0u64..1_000_000, 1..12),
        media_len in 1u64..18,
    ) {
        // Random (frequently infeasible) parent structures: the engines
        // must return identical errors, not just identical successes.
        let parents: Vec<Option<usize>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| if i == 0 { None } else { Some((s as usize) % i) })
            .collect();
        let tree = MergeTree::from_parents(&parents).unwrap();
        let n = parents.len();
        let forest = MergeForest::single(tree);
        let times = consecutive_slots(n);
        assert_engines_agree(&forest, &times, media_len, None);
    }

    #[test]
    fn simultaneous_arrivals_pin_all_three_engines(
        seeds in proptest::collection::vec(0u64..1_000_000_000, 2..40),
        media_len in 2u64..20,
    ) {
        // A flash-crowd generator: each seed decides a gap (0 with high
        // probability, so duplicate timestamps pile up both *within* a
        // title's tree and *across* tree boundaries), whether the arrival
        // opens a new title's tree, and where it merges. Tie-breaking —
        // deadline ties resolve in arrival-index order, co-arrival streams
        // start at the same slot — must pin identically across the dense,
        // event, and incremental engines.
        let mut times = Vec::with_capacity(seeds.len());
        let mut parents_by_tree: Vec<Vec<Option<usize>>> = Vec::new();
        let mut t = 0i64;
        for (i, &s) in seeds.iter().enumerate() {
            t += match s % 5 { 0..=2 => 0, 3 => 1, _ => 2 };
            times.push(t);
            if i == 0 || (s / 5) % 4 == 0 {
                parents_by_tree.push(vec![None]);
            } else {
                let open = parents_by_tree.last_mut().unwrap();
                let parent = (s / 20) as usize % open.len();
                open.push(Some(parent));
            }
        }
        let trees: Vec<MergeTree> = parents_by_tree
            .iter()
            .map(|p| MergeTree::from_parents(p).unwrap())
            .collect();
        let forest = MergeForest::from_trees(trees).unwrap();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "generator premise");
        assert_engines_agree(&forest, &times, media_len, None);
    }

    #[test]
    fn adversarial_mixed_forests_pin_all_three_engines(
        seeds in proptest::collection::vec(0u64..1_000_000_000, 1..36),
        media_len in 0u64..12,
    ) {
        // One forest deliberately mixing the degenerate shapes: media_len
        // can be 0 (every part-deadline fires at the arrival slot itself,
        // and the only feasible merge chain is the trivial one),
        // single-arrival trees, maximum-depth chains (L/2 + 1, the longest
        // feasible chain), overlong chains that *exceed* that depth, and
        // zero-gap arrival ties within and across tree boundaries. Many
        // cases are infeasible by construction — the dense, event, and
        // incremental engines must agree bit for bit on the Ok runs and
        // pin the exact same first error everywhere else.
        let max_chain = (media_len / 2 + 1) as usize;
        let mut trees = Vec::new();
        let mut times = Vec::with_capacity(seeds.len());
        let mut t = 0i64;
        let mut i = 0usize;
        while i < seeds.len() {
            let s = seeds[i];
            let remaining = seeds.len() - i;
            let k = match s % 3 {
                0 => 1,                        // single-arrival tree
                1 => max_chain.min(remaining), // deepest feasible chain
                // Short chains that may exceed the feasible depth when
                // media_len is tiny: the infeasibility generator.
                _ => (1 + (s / 3) as usize % 4).min(remaining),
            };
            trees.push(MergeTree::chain(k));
            for j in 0..k {
                if i + j > 0 {
                    t += match (s / 12 + j as u64) % 4 {
                        0 | 1 => 0, // pile up ties
                        2 => 1,
                        _ => 2,
                    };
                }
                times.push(t);
            }
            i += k;
        }
        let forest = MergeForest::from_trees(trees).unwrap();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "generator premise");
        assert_engines_agree(&forest, &times, media_len, None);
    }
}

#[test]
fn unsorted_times_take_the_eager_fallback_and_still_agree() {
    // Sibling order need not follow time order; globally unsorted times
    // route `simulate_streaming` through the eager sort-based path, which
    // must still reproduce the collected report bit for bit.
    let tree = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
    let forest = MergeForest::single(tree);
    let times = [0i64, 5, 2];
    assert!(times.windows(2).any(|w| w[0] > w[1]), "premise: unsorted");
    let events = simulate_with(&forest, &times, 40, SimConfig::events());
    assert!(events.is_ok());
    assert_streaming_matches(&forest, &times, 40, None, &events);
}
