//! Concrete broadcast schedules: the Fig.-3 view of a merge forest.

use crate::error::SimError;
use sm_core::{MergeForest, TreeArena};

/// One scheduled stream: starts at slot `start`, broadcasts parts
/// `1..=length` in consecutive slots (part `q` during `[start+q−1, start+q)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Global arrival index that initiated the stream.
    pub node: usize,
    /// Start slot.
    pub start: i64,
    /// Number of parts broadcast (truncated length; `L` for roots).
    pub length: i64,
}

impl StreamSpec {
    /// Slot in which `part` is broadcast, if the stream carries it.
    pub fn broadcast_slot(&self, part: i64) -> Option<i64> {
        (1..=self.length)
            .contains(&part)
            .then(|| self.start + part - 1)
    }

    /// End time of the stream (exclusive).
    pub fn end(&self) -> i64 {
        self.start + self.length
    }
}

/// The concrete schedule of one tree of a forest: `specs[x]` is the stream
/// of local node `x`, so slicing `times`/reports by `base..base + len` stays
/// aligned with the tree the specs came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSchedule {
    /// Index of the tree within the forest.
    pub tree: usize,
    /// Global arrival index of the tree's first node.
    pub base: usize,
    /// The tree's streams, in local node order.
    pub specs: Vec<StreamSpec>,
}

impl TreeSchedule {
    /// Number of arrivals (and streams) in the tree.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// A tree always has at least one arrival.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total slot-units this tree transmits (its share of `Fcost`).
    pub fn total_units(&self) -> i64 {
        self.specs.iter().map(|s| s.length).sum()
    }
}

/// Lazy, per-tree view of a forest's broadcast schedule.
///
/// Yields one [`TreeSchedule`] per tree, in forest order, deriving each
/// tree's Lemma-1 stream lengths only when the tree is pulled — the whole
/// forest is never materialized at once, so a consumer that drops trees as
/// it finishes with them (the event engine's streaming path) holds
/// `O(active trees)` schedule memory instead of `O(arrivals)`.
///
/// Construction fails with [`SimError::MediaLenOverflow`] when `media_len`
/// does not fit the signed slot arithmetic; iteration itself is infallible.
#[derive(Debug)]
pub struct ScheduleStream<'a> {
    forest: &'a MergeForest,
    times: &'a [i64],
    media: i64,
    next_tree: usize,
    base: usize,
}

impl<'a> ScheduleStream<'a> {
    /// Opens the schedule of `forest` over `times` for a media of
    /// `media_len` parts.
    ///
    /// # Panics
    /// Iteration panics if `times` is shorter than the forest's arrivals
    /// (callers validate lengths up front, as [`stream_schedule`] always
    /// has).
    pub fn new(
        forest: &'a MergeForest,
        times: &'a [i64],
        media_len: u64,
    ) -> Result<Self, SimError> {
        let media = checked_media_len(media_len)?;
        Ok(Self {
            forest,
            times,
            media,
            next_tree: 0,
            base: 0,
        })
    }

    /// Number of trees not yet yielded.
    pub fn remaining_trees(&self) -> usize {
        self.forest.num_trees() - self.next_tree
    }

    /// Number of arrivals (equivalently, stream specs) the remaining walk
    /// will yield — exact, since every arrival carries exactly one stream.
    /// The sibling of [`remaining_trees`](Self::remaining_trees) at arrival
    /// granularity: consumers that flatten many schedules back to back (the
    /// dynamic server's materializer draining a depth-K backlog of planned
    /// epochs) use it to pre-size their spec sinks from the stream's own
    /// contract instead of re-deriving the count from the forest they built.
    pub fn remaining_arrivals(&self) -> usize {
        self.forest.total_arrivals() - self.base
    }

    /// Allocation-reusing form of `next`: writes the next tree's specs into
    /// `specs` (cleared first, capacity kept) and returns the tree's base
    /// arrival index, or `None` when the stream is exhausted. Consumers that
    /// walk many schedules back to back — the dynamic server materializes
    /// one schedule per `(title, epoch)` — reuse one scratch buffer across
    /// all trees instead of allocating a `Vec` per tree.
    pub fn next_into(&mut self, specs: &mut Vec<StreamSpec>) -> Option<usize> {
        let tree = self.forest.trees().get(self.next_tree)?;
        let base = self.base;
        let local_times = &self.times[base..base + tree.len()];
        specs.clear();
        specs.reserve(tree.len());
        specs.push(StreamSpec {
            node: base,
            start: local_times[0],
            length: self.media,
        });
        for x in 1..tree.len() {
            // ℓ(x) = (z − x) + (z − p), inlined from `cost::lengths` so no
            // per-tree length vector is allocated on the hot path.
            let p = tree.parent(x).unwrap_or(0);
            let z = tree.last_descendant(x);
            specs.push(StreamSpec {
                node: base + x,
                start: local_times[x],
                length: (local_times[z] - local_times[x]) + (local_times[z] - local_times[p]),
            });
        }
        self.next_tree += 1;
        self.base += tree.len();
        Some(base)
    }

    /// Arena form of [`next_into`](Self::next_into): additionally lowers the
    /// pulled tree into `arena` (storage reused). The event engine pulls
    /// through this so a retained tree is five flat columns plus one spec
    /// buffer, all recycled from tree to tree.
    pub fn next_into_arena(
        &mut self,
        arena: &mut TreeArena,
        specs: &mut Vec<StreamSpec>,
    ) -> Result<Option<usize>, SimError> {
        let tree_index = self.next_tree;
        let Some(base) = self.next_into(specs) else {
            return Ok(None);
        };
        arena
            .lower_into(&self.forest.trees()[tree_index])
            .map_err(SimError::Model)?;
        Ok(Some(base))
    }
}

impl Iterator for ScheduleStream<'_> {
    type Item = TreeSchedule;

    fn next(&mut self) -> Option<TreeSchedule> {
        let tree = self.next_tree;
        let mut specs = Vec::new();
        let base = self.next_into(&mut specs)?;
        Some(TreeSchedule { tree, base, specs })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining_trees();
        (n, Some(n))
    }
}

/// Derives the full broadcast schedule of a forest: the root of each tree
/// runs `media_len` parts, every other stream exactly its Lemma-1 length.
/// Eager form of [`ScheduleStream`] — one flat `Vec` over all trees.
///
/// Fails with [`SimError::MediaLenOverflow`] when `media_len` does not fit
/// the signed slot arithmetic (a plain `as i64` here would silently wrap to
/// a negative root length).
pub fn stream_schedule(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
) -> Result<Vec<StreamSpec>, SimError> {
    let mut specs = Vec::with_capacity(times.len());
    for tree in ScheduleStream::new(forest, times, media_len)? {
        specs.extend(tree.specs);
    }
    Ok(specs)
}

/// The one sanctioned `u64 → i64` conversion for media lengths: all slot
/// arithmetic is signed, so a media length beyond `i64::MAX` is a hard
/// model error, not a wrap.
pub(crate) fn checked_media_len(media_len: u64) -> Result<i64, SimError> {
    i64::try_from(media_len).map_err(|_| SimError::MediaLenOverflow { media_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, MergeTree};

    fn fig4_forest() -> MergeForest {
        MergeForest::single(
            MergeTree::from_parents(&[
                None,
                Some(0),
                Some(0),
                Some(0),
                Some(3),
                Some(0),
                Some(5),
                Some(5),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn fig3_schedule() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let specs = stream_schedule(&forest, &times, 15).unwrap();
        let lens: Vec<i64> = specs.iter().map(|s| s.length).collect();
        // Fig. 3: A runs 15 slots, B 1, C 2, D 5, E 1, F 9, G 1, H 2.
        assert_eq!(lens, vec![15, 1, 2, 5, 1, 9, 1, 2]);
        // Stream F starts at 5 and runs to 14.
        assert_eq!(specs[5].start, 5);
        assert_eq!(specs[5].end(), 14);
    }

    #[test]
    fn broadcast_slots() {
        let s = StreamSpec {
            node: 5,
            start: 5,
            length: 9,
        };
        assert_eq!(s.broadcast_slot(1), Some(5));
        assert_eq!(s.broadcast_slot(9), Some(13));
        assert_eq!(s.broadcast_slot(10), None);
        assert_eq!(s.broadcast_slot(0), None);
    }

    #[test]
    fn total_schedule_length_is_full_cost() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let specs = stream_schedule(&forest, &times, 15).unwrap();
        let total: i64 = specs.iter().map(|s| s.length).sum();
        assert_eq!(total, sm_core::full_cost(&forest, &times, 15));
    }

    #[test]
    fn schedule_stream_yields_one_tree_at_a_time() {
        let t = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let forest = MergeForest::from_trees(vec![t.clone(), t]).unwrap();
        let times = consecutive_slots(6);
        let mut stream = ScheduleStream::new(&forest, &times, 10).unwrap();
        assert_eq!(stream.remaining_trees(), 2);
        assert_eq!(stream.remaining_arrivals(), 6);
        let first = stream.next().unwrap();
        assert_eq!((first.tree, first.base, first.len()), (0, 0, 3));
        assert_eq!(stream.remaining_trees(), 1);
        assert_eq!(
            stream.remaining_arrivals(),
            3,
            "one pulled tree's arrivals leave the remaining count"
        );
        let second = stream.next().unwrap();
        assert_eq!((second.tree, second.base, second.len()), (1, 3, 3));
        assert!(stream.next().is_none());
        // Per-tree units sum to the flat schedule's total.
        assert_eq!(
            first.total_units() + second.total_units(),
            stream_schedule(&forest, &times, 10)
                .unwrap()
                .iter()
                .map(|s| s.length)
                .sum::<i64>()
        );
    }

    #[test]
    fn schedule_stream_concatenation_matches_eager_schedule() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let lazy: Vec<StreamSpec> = ScheduleStream::new(&forest, &times, 15)
            .unwrap()
            .flat_map(|t| t.specs)
            .collect();
        assert_eq!(lazy, stream_schedule(&forest, &times, 15).unwrap());
    }

    #[test]
    fn next_into_reuses_buffer_and_matches_iterator() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let eager: Vec<TreeSchedule> = ScheduleStream::new(&forest, &times, 15).unwrap().collect();
        let mut stream = ScheduleStream::new(&forest, &times, 15).unwrap();
        let mut scratch = Vec::new();
        let mut seen = 0usize;
        while let Some(base) = stream.next_into(&mut scratch) {
            assert_eq!(base, eager[seen].base);
            assert_eq!(scratch, eager[seen].specs);
            seen += 1;
        }
        assert_eq!(seen, eager.len());
        // Exhausted stream leaves the scratch untouched thereafter.
        let before = scratch.clone();
        assert!(stream.next_into(&mut scratch).is_none());
        assert_eq!(scratch, before);
    }

    #[test]
    fn empty_forest_stream_is_exhausted_from_the_start() {
        let forest = MergeForest::empty();
        let mut stream = ScheduleStream::new(&forest, &[], 10).unwrap();
        assert_eq!(stream.remaining_trees(), 0);
        assert_eq!(stream.remaining_arrivals(), 0);
        let mut scratch = vec![StreamSpec {
            node: 9,
            start: 9,
            length: 9,
        }];
        assert!(stream.next_into(&mut scratch).is_none());
        assert_eq!(scratch.len(), 1, "an exhausted stream must not clear");
        assert!(stream.next().is_none());
        assert_eq!(stream.remaining_arrivals(), 0);
    }

    #[test]
    fn single_client_trees_count_down_one_arrival_at_a_time() {
        // A forest of singletons: every tree is one full stream; the two
        // remaining-counters stay in lockstep at every pull.
        let n = 5usize;
        let forest = MergeForest::from_trees(vec![MergeTree::singleton(); n]).unwrap();
        let times: Vec<i64> = (0..n as i64).map(|i| i * 7).collect();
        let mut stream = ScheduleStream::new(&forest, &times, 4).unwrap();
        let mut specs = Vec::new();
        for (k, &time) in times.iter().enumerate() {
            assert_eq!(stream.remaining_trees(), n - k);
            assert_eq!(stream.remaining_arrivals(), n - k);
            assert_eq!(stream.next_into(&mut specs), Some(k));
            assert_eq!(
                specs,
                vec![StreamSpec {
                    node: k,
                    start: time,
                    length: 4,
                }],
                "a singleton tree is exactly its root's full stream"
            );
        }
        assert_eq!(stream.remaining_arrivals(), 0);
        assert!(stream.next_into(&mut specs).is_none());
    }

    #[test]
    fn unit_media_len_keeps_roots_at_one_part_and_merges_at_lemma_lengths() {
        // media_len == 1: the root broadcasts a single part; a same-slot
        // co-arrival merges with a zero-length stream, a later arrival
        // would simply be infeasible (caught downstream, not here — the
        // schedule itself is still well-defined).
        let tree = MergeTree::from_parents(&[None, Some(0)]).unwrap();
        let forest = MergeForest::single(tree);
        let mut stream = ScheduleStream::new(&forest, &[3, 3], 1).unwrap();
        assert_eq!(stream.remaining_arrivals(), 2);
        let t = stream.next().unwrap();
        assert_eq!(t.specs[0].length, 1);
        assert_eq!(t.specs[1].length, 0);
        assert_eq!(t.total_units(), 1);
        assert_eq!(stream.remaining_arrivals(), 0);
        assert_eq!(stream.remaining_trees(), 0);
    }

    #[test]
    fn schedule_stream_rejects_oversized_media_len() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        assert!(matches!(
            ScheduleStream::new(&forest, &times, u64::MAX).unwrap_err(),
            SimError::MediaLenOverflow { .. }
        ));
    }

    #[test]
    fn oversized_media_len_is_an_error_not_a_wrap() {
        // `u64::MAX as i64` is −1; the schedule must refuse instead.
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let err = stream_schedule(&forest, &times, u64::MAX).unwrap_err();
        assert_eq!(
            err,
            SimError::MediaLenOverflow {
                media_len: u64::MAX
            }
        );
        let boundary = stream_schedule(&forest, &times, i64::MAX as u64 + 1).unwrap_err();
        assert!(matches!(boundary, SimError::MediaLenOverflow { .. }));
    }
}
