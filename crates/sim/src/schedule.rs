//! Concrete broadcast schedules: the Fig.-3 view of a merge forest.

use crate::error::SimError;
use sm_core::{cost, MergeForest};

/// One scheduled stream: starts at slot `start`, broadcasts parts
/// `1..=length` in consecutive slots (part `q` during `[start+q−1, start+q)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Global arrival index that initiated the stream.
    pub node: usize,
    /// Start slot.
    pub start: i64,
    /// Number of parts broadcast (truncated length; `L` for roots).
    pub length: i64,
}

impl StreamSpec {
    /// Slot in which `part` is broadcast, if the stream carries it.
    pub fn broadcast_slot(&self, part: i64) -> Option<i64> {
        (1..=self.length)
            .contains(&part)
            .then(|| self.start + part - 1)
    }

    /// End time of the stream (exclusive).
    pub fn end(&self) -> i64 {
        self.start + self.length
    }
}

/// Derives the full broadcast schedule of a forest: the root of each tree
/// runs `media_len` parts, every other stream exactly its Lemma-1 length.
///
/// Fails with [`SimError::MediaLenOverflow`] when `media_len` does not fit
/// the signed slot arithmetic (a plain `as i64` here would silently wrap to
/// a negative root length).
pub fn stream_schedule(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
) -> Result<Vec<StreamSpec>, SimError> {
    let media = checked_media_len(media_len)?;
    let mut specs = Vec::with_capacity(times.len());
    for (range, tree) in forest.iter_with_ranges() {
        let base = range.start;
        let local_times = &times[range];
        let lens = cost::lengths(tree, local_times);
        for x in 0..tree.len() {
            let length = if x == 0 { media } else { lens[x] };
            specs.push(StreamSpec {
                node: base + x,
                start: local_times[x],
                length,
            });
        }
    }
    Ok(specs)
}

/// The one sanctioned `u64 → i64` conversion for media lengths: all slot
/// arithmetic is signed, so a media length beyond `i64::MAX` is a hard
/// model error, not a wrap.
pub(crate) fn checked_media_len(media_len: u64) -> Result<i64, SimError> {
    i64::try_from(media_len).map_err(|_| SimError::MediaLenOverflow { media_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, MergeTree};

    fn fig4_forest() -> MergeForest {
        MergeForest::single(
            MergeTree::from_parents(&[
                None,
                Some(0),
                Some(0),
                Some(0),
                Some(3),
                Some(0),
                Some(5),
                Some(5),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn fig3_schedule() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let specs = stream_schedule(&forest, &times, 15).unwrap();
        let lens: Vec<i64> = specs.iter().map(|s| s.length).collect();
        // Fig. 3: A runs 15 slots, B 1, C 2, D 5, E 1, F 9, G 1, H 2.
        assert_eq!(lens, vec![15, 1, 2, 5, 1, 9, 1, 2]);
        // Stream F starts at 5 and runs to 14.
        assert_eq!(specs[5].start, 5);
        assert_eq!(specs[5].end(), 14);
    }

    #[test]
    fn broadcast_slots() {
        let s = StreamSpec {
            node: 5,
            start: 5,
            length: 9,
        };
        assert_eq!(s.broadcast_slot(1), Some(5));
        assert_eq!(s.broadcast_slot(9), Some(13));
        assert_eq!(s.broadcast_slot(10), None);
        assert_eq!(s.broadcast_slot(0), None);
    }

    #[test]
    fn total_schedule_length_is_full_cost() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let specs = stream_schedule(&forest, &times, 15).unwrap();
        let total: i64 = specs.iter().map(|s| s.length).sum();
        assert_eq!(total, sm_core::full_cost(&forest, &times, 15));
    }

    #[test]
    fn oversized_media_len_is_an_error_not_a_wrap() {
        // `u64::MAX as i64` is −1; the schedule must refuse instead.
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let err = stream_schedule(&forest, &times, u64::MAX).unwrap_err();
        assert_eq!(
            err,
            SimError::MediaLenOverflow {
                media_len: u64::MAX
            }
        );
        let boundary = stream_schedule(&forest, &times, i64::MAX as u64 + 1).unwrap_err();
        assert!(matches!(boundary, SimError::MediaLenOverflow { .. }));
    }
}
