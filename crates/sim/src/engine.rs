//! The slot-stepped execution engine.
//!
//! [`simulate`] replays every client's receiving program against the
//! concrete broadcast schedule and fails with the *first* violation —
//! stall, receive-two breach, buffer overflow, or a program/schedule
//! mismatch. On success it returns independently measured metrics that the
//! integration tests compare against the paper's closed forms.

use crate::error::SimError;
use crate::metrics::BandwidthProfile;
use crate::schedule::{stream_schedule, StreamSpec};
use sm_core::{MergeForest, ReceivingProgram};

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Fail if a client would need more than this many buffered parts.
    pub buffer_bound: Option<u64>,
}

/// Per-client measurements.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Global arrival index.
    pub client: usize,
    /// Peak number of parts held in the buffer.
    pub max_buffer: i64,
    /// Peak number of simultaneously received streams.
    pub max_concurrent: usize,
    /// Slack (in slots) between each part's arrival and its playback,
    /// minimised over parts: 0 means some part arrives just in time.
    pub min_slack: i64,
}

/// Whole-run measurements.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-slot server bandwidth.
    pub bandwidth: BandwidthProfile,
    /// Total transmitted slot-units (must equal the analytic `Fcost`).
    pub total_units: i64,
    /// Per-client reports, by global arrival index.
    pub clients: Vec<ClientReport>,
}

/// Simulates with default configuration.
pub fn simulate(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
) -> Result<SimReport, SimError> {
    simulate_with(forest, times, media_len, SimConfig::default())
}

/// Simulates a merge forest over slotted arrivals.
///
/// Every client of every tree is executed: its receiving program is built
/// from the tree structure, then *checked against the broadcast schedule*
/// (the schedule knows only stream lengths; the program knows only the
/// tree path — agreement is the Lemma 1 ↔ §2 consistency the paper relies
/// on).
pub fn simulate_with(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    if times.len() != forest.total_arrivals() {
        return Err(SimError::Model(sm_core::ModelError::TimesLengthMismatch {
            nodes: forest.total_arrivals(),
            times: times.len(),
        }));
    }
    let specs = stream_schedule(forest, times, media_len);
    let bandwidth = BandwidthProfile::from_streams(&specs);
    let total_units: i64 = specs.iter().map(|s| s.length).sum();

    let mut clients = Vec::with_capacity(times.len());
    for (range, tree) in forest.iter_with_ranges() {
        let base = range.start;
        let local_times = &times[range.clone()];
        let local_specs = &specs[range.clone()];
        for c in 0..tree.len() {
            let report = run_client(tree, local_times, local_specs, media_len, base, c, config)?;
            clients.push(report);
        }
    }
    Ok(SimReport {
        bandwidth,
        total_units,
        clients,
    })
}

fn run_client(
    tree: &sm_core::MergeTree,
    local_times: &[i64],
    local_specs: &[StreamSpec],
    media_len: u64,
    base: usize,
    c: usize,
    config: SimConfig,
) -> Result<ClientReport, SimError> {
    let media = media_len as i64;
    let t_c = local_times[c];
    let global = base + c;
    let prog = ReceivingProgram::build(tree, local_times, media_len, c);
    prog.verify(local_times, media_len)
        .map_err(SimError::Model)?;

    // receive_end[q]: instant part q is fully received (from the schedule).
    let mut receive_end = vec![i64::MAX; (media + 1) as usize];
    // Reception concurrency per slot offset (program spans [t_c, t_c+media)).
    let mut concurrency = vec![0usize; media as usize + 1];
    for seg in &prog.segments {
        if seg.is_empty() {
            continue;
        }
        let spec = &local_specs[seg.stream];
        for part in seg.first_part..=seg.last_part {
            // The stream must actually broadcast the part.
            let Some(slot) = spec.broadcast_slot(part) else {
                return Err(SimError::StreamTooShort {
                    client: global,
                    stream: base + seg.stream,
                    part,
                    length: spec.length,
                });
            };
            // Playback deadline: part q plays during [t_c+q−1, t_c+q); it
            // must be broadcast no later than that same slot.
            let deadline = t_c + part - 1;
            if slot > deadline {
                return Err(SimError::Stall {
                    client: global,
                    part,
                    received: slot,
                    deadline,
                });
            }
            receive_end[part as usize] = slot + 1;
            let off = (slot - t_c).clamp(0, media) as usize;
            concurrency[off] += 1;
        }
    }

    // Receive-two: in any slot, parts arrive from at most two distinct
    // streams; because each stream contributes at most one part per slot,
    // per-slot part count == per-slot stream count.
    let mut max_concurrent = 0usize;
    for (off, &cnt) in concurrency.iter().enumerate() {
        if cnt > 2 {
            return Err(SimError::ReceiveTwoViolation {
                client: global,
                slot: t_c + off as i64,
                count: cnt,
            });
        }
        max_concurrent = max_concurrent.max(cnt);
    }

    // Buffer occupancy sweep and minimum slack.
    let mut max_buffer = 0i64;
    let mut min_slack = i64::MAX;
    for q in 1..=media {
        let deadline_end = t_c + q; // playback slot ends here
        let slack = deadline_end - receive_end[q as usize];
        min_slack = min_slack.min(slack);
    }
    for tau in t_c..=(t_c + media) {
        let received = (1..=media)
            .filter(|&q| receive_end[q as usize] <= tau)
            .count() as i64;
        let played = (tau - t_c).clamp(0, media);
        max_buffer = max_buffer.max(received - played);
    }
    if let Some(bound) = config.buffer_bound {
        if max_buffer > bound as i64 {
            return Err(SimError::BufferOverflow {
                client: global,
                needed: max_buffer,
                bound,
            });
        }
    }
    Ok(ClientReport {
        client: global,
        max_buffer,
        max_concurrent,
        min_slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, full_cost, required_buffer, MergeTree};

    fn fig4_forest() -> MergeForest {
        MergeForest::single(
            MergeTree::from_parents(&[
                None,
                Some(0),
                Some(0),
                Some(0),
                Some(3),
                Some(0),
                Some(5),
                Some(5),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn fig3_executes_cleanly() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let report = simulate(&forest, &times, 15).unwrap();
        assert_eq!(report.total_units, 36);
        assert_eq!(report.total_units, full_cost(&forest, &times, 15));
        assert_eq!(report.clients.len(), 8);
    }

    #[test]
    fn measured_buffers_match_lemma15() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let report = simulate(&forest, &times, 15).unwrap();
        let tree = &forest.trees()[0];
        for cr in &report.clients {
            assert_eq!(
                cr.max_buffer,
                required_buffer(tree, &times, 15, cr.client),
                "client {}",
                cr.client
            );
        }
    }

    #[test]
    fn no_client_exceeds_two_streams() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let report = simulate(&forest, &times, 15).unwrap();
        for cr in &report.clients {
            assert!(cr.max_concurrent <= 2);
        }
    }

    #[test]
    fn stall_detected_when_media_too_short() {
        // The Fig. 4 shape with L = 8: client 7's program needs parts past
        // what the root can deliver in time.
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let err = simulate(&forest, &times, 8).unwrap_err();
        // Either a coverage failure or a stall, depending on which client
        // trips first — both are model-consistency failures.
        match err {
            SimError::Model(_) | SimError::Stall { .. } | SimError::StreamTooShort { .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn buffer_bound_enforced() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let err = simulate_with(
            &forest,
            &times,
            15,
            SimConfig {
                buffer_bound: Some(3),
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BufferOverflow { .. }));
    }

    #[test]
    fn slack_is_zero_for_just_in_time_parts() {
        // Clients receive their first parts exactly as they play them.
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let report = simulate(&forest, &times, 15).unwrap();
        for cr in &report.clients {
            assert_eq!(cr.min_slack, 0, "client {}", cr.client);
        }
    }

    #[test]
    fn bandwidth_profile_peaks_match_fig3() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let report = simulate(&forest, &times, 15).unwrap();
        // At slot 7 streams A, D(3..8), F(5..14), H(7..9) are live -> 4
        // concurrent; G lives only in slot 6..7.
        assert!(report.bandwidth.peak() >= 4);
        assert_eq!(report.bandwidth.total_units(), 36);
    }

    #[test]
    fn multi_tree_forest_simulates() {
        let t = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let forest = MergeForest::from_trees(vec![t.clone(), t]).unwrap();
        let times = consecutive_slots(6);
        let report = simulate(&forest, &times, 10).unwrap();
        assert_eq!(report.total_units, 2 * 10 + 3 + 3);
    }
}
