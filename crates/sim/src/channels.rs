//! Multicast channel assignment.
//!
//! The paper's system model (§1) has three components: clients, a server —
//! and *channels* "on which the transmissions are broadcast". A schedule's
//! streams are time intervals; mapping them onto physical multicast
//! channels is interval-graph coloring, which the classic greedy sweep
//! solves optimally: the number of channels needed equals the peak number
//! of concurrently live streams (the clique number).
//!
//! This gives the reproduction a concrete server front-end: after planning
//! a forest, [`assign_channels`] emits the per-channel broadcast timetable
//! a real multicast head-end would follow, and proves the plan fits a
//! channel budget iff the budget covers the measured peak.

use crate::schedule::StreamSpec;

/// A stream's placement on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSlot {
    /// Index into the input stream list.
    pub stream_index: usize,
    /// Assigned channel (0-based).
    pub channel: u32,
}

/// The complete channel plan.
#[derive(Debug, Clone)]
pub struct ChannelPlan {
    /// One entry per input stream, in input order.
    pub assignments: Vec<ChannelSlot>,
    /// Number of channels used (optimal: equals peak concurrency).
    pub channels_used: u32,
}

impl ChannelPlan {
    /// The timetable of one channel: `(start, end, stream_index)` triples,
    /// sorted by start time.
    pub fn channel_timetable(&self, specs: &[StreamSpec], channel: u32) -> Vec<(i64, i64, usize)> {
        let mut rows: Vec<(i64, i64, usize)> = self
            .assignments
            .iter()
            .filter(|a| a.channel == channel)
            .map(|a| {
                let s = &specs[a.stream_index];
                (s.start, s.end(), a.stream_index)
            })
            .collect();
        rows.sort_unstable();
        rows
    }
}

/// Assigns streams to channels with the greedy sweep (optimal for interval
/// graphs): process streams by start time, reuse the channel freed
/// earliest, open a new one only when every channel is busy.
///
/// Zero-length streams consume no channel time and are assigned channel 0.
pub fn assign_channels(specs: &[StreamSpec]) -> ChannelPlan {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| (specs[i].start, specs[i].end()));

    // Min-heap of (end_time, channel) for busy channels; free list of
    // channels available for reuse.
    let mut busy: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
    let mut free: Vec<u32> = Vec::new();
    let mut next_channel = 0u32;
    let mut assignments = vec![
        ChannelSlot {
            stream_index: 0,
            channel: 0
        };
        specs.len()
    ];

    for &i in &order {
        let s = &specs[i];
        if s.length <= 0 {
            assignments[i] = ChannelSlot {
                stream_index: i,
                channel: 0,
            };
            continue;
        }
        // Release channels whose stream ended by this start.
        while let Some(&Reverse((end, ch))) = busy.peek() {
            if end <= s.start {
                busy.pop();
                free.push(ch);
            } else {
                break;
            }
        }
        let ch = free.pop().unwrap_or_else(|| {
            let c = next_channel;
            next_channel += 1;
            c
        });
        busy.push(Reverse((s.end(), ch)));
        assignments[i] = ChannelSlot {
            stream_index: i,
            channel: ch,
        };
    }
    ChannelPlan {
        assignments,
        channels_used: next_channel,
    }
}

/// Checks a plan: no two streams on one channel may overlap in time.
pub fn verify_plan(specs: &[StreamSpec], plan: &ChannelPlan) -> Result<(), (usize, usize)> {
    let mut by_channel: std::collections::HashMap<u32, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, a) in plan.assignments.iter().enumerate() {
        if specs[i].length > 0 {
            by_channel.entry(a.channel).or_default().push(i);
        }
    }
    for streams in by_channel.values() {
        let mut sorted: Vec<usize> = streams.clone();
        sorted.sort_by_key(|&i| specs[i].start);
        for w in sorted.windows(2) {
            if specs[w[0]].end() > specs[w[1]].start {
                return Err((w[0], w[1]));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BandwidthProfile;
    use crate::schedule::stream_schedule;
    use sm_core::consecutive_slots;

    fn spec(node: usize, start: i64, length: i64) -> StreamSpec {
        StreamSpec {
            node,
            start,
            length,
        }
    }

    #[test]
    fn disjoint_streams_share_one_channel() {
        let specs = [spec(0, 0, 3), spec(1, 3, 3), spec(2, 6, 1)];
        let plan = assign_channels(&specs);
        assert_eq!(plan.channels_used, 1);
        verify_plan(&specs, &plan).unwrap();
    }

    #[test]
    fn overlapping_streams_need_distinct_channels() {
        let specs = [spec(0, 0, 10), spec(1, 1, 5), spec(2, 2, 2)];
        let plan = assign_channels(&specs);
        assert_eq!(plan.channels_used, 3);
        verify_plan(&specs, &plan).unwrap();
    }

    #[test]
    fn channel_count_equals_peak_bandwidth() {
        // Greedy interval coloring is optimal: channels == peak concurrency.
        for (media_len, n) in [(15u64, 8usize), (100, 300), (30, 77)] {
            let plan = sm_offline_forest(media_len, n);
            let times = consecutive_slots(n);
            let specs = stream_schedule(&plan, &times, media_len).unwrap();
            let channels = assign_channels(&specs);
            verify_plan(&specs, &channels).unwrap();
            let peak = BandwidthProfile::from_streams(&specs).peak();
            assert_eq!(channels.channels_used, peak, "L = {media_len}, n = {n}");
        }
    }

    // Local helper: build an optimal forest without depending on sm-offline
    // in the main [dependencies] (it is a dev-dependency).
    fn sm_offline_forest(media_len: u64, n: usize) -> sm_core::MergeForest {
        sm_offline::forest::optimal_forest(media_len, n).forest
    }

    #[test]
    fn timetable_is_sorted_and_gap_free_of_overlaps() {
        let specs = [spec(0, 0, 4), spec(1, 1, 2), spec(2, 4, 3), spec(3, 5, 1)];
        let plan = assign_channels(&specs);
        verify_plan(&specs, &plan).unwrap();
        for ch in 0..plan.channels_used {
            let tt = plan.channel_timetable(&specs, ch);
            for w in tt.windows(2) {
                assert!(w[0].1 <= w[1].0);
            }
        }
    }

    #[test]
    fn zero_length_streams_are_harmless() {
        let specs = [spec(0, 0, 3), spec(1, 1, 0), spec(2, 1, 1)];
        let plan = assign_channels(&specs);
        verify_plan(&specs, &plan).unwrap();
        assert_eq!(plan.channels_used, 2);
    }
}
