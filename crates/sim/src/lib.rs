#![forbid(unsafe_code)]
//! Discrete-event Media-on-Demand simulator — the correctness oracle of the
//! reproduction.
//!
//! The paper evaluates schedules analytically; this crate *executes* them.
//! Given a merge forest over slotted arrivals, it derives the concrete
//! broadcast schedule (which stream transmits which part in which slot, as
//! in the paper's Fig. 3), replays every client's receiving program against
//! that schedule, and independently re-measures every quantity the theory
//! predicts:
//!
//! * **uninterrupted playback** — every part arrives no later than its
//!   playback slot;
//! * **receive-two compliance** — no client ever listens to more than two
//!   streams in a slot;
//! * **buffer occupancy** — peak buffer per client (equals Lemma 15's
//!   `min(x−r, L−(x−r))`);
//! * **server bandwidth** — per-slot stream count; the total must equal the
//!   analytic `Fcost` of the forest.
//!
//! A schedule passing [`simulate`] is, by construction, a feasible
//! delay-guaranteed Media-on-Demand service plan.

pub mod channels;
pub mod continuous;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod schedule;

pub use channels::{assign_channels, ChannelPlan};
pub use continuous::{verify_continuous, ContinuousError};
pub use engine::{
    simulate, simulate_incremental, simulate_streaming, simulate_streaming_slice, simulate_with,
    Arrival, Attach, ClientReport, Engine, IncrementalEngine, IncrementalSummary, IngestError,
    SimConfig, SimReport, StreamingSummary,
};
pub use error::SimError;
pub use metrics::BandwidthProfile;
pub use schedule::{stream_schedule, ScheduleStream, StreamSpec, TreeSchedule};
