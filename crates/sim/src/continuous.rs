//! Continuous-time verification for forests over real arrival times (the
//! dyadic algorithm's native domain).
//!
//! The slotted engine replays integer parts; in continuous time a "part"
//! becomes a media *position* and every §2 quantity carries over with real
//! arithmetic. For a client at `x_k` on root path `x_0 < … < x_k`, the
//! receive-two rules say it takes positions
//!
//! ```text
//! (2t_k − t_{j+1} − t_j ,  2t_k − t_j − t_{j−1} ]   from stream x_j
//! ```
//!
//! (conventions as in `sm-core::receiving`). This module checks, for every
//! client of a continuous forest:
//!
//! * coverage: the position intervals tile `(0, L]`;
//! * timeliness: position `q` from stream `y` is broadcast at `t_y + q`,
//!   no later than its playback instant `t_c + q`;
//! * supply: no stream is asked for positions beyond its Lemma-1 length;
//! * receive-two: at any instant at most two streams are being received.

use sm_core::{cost, MergeForest};

/// One client's continuous receiving interval from one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionInterval {
    /// Local index of the source stream.
    pub stream: usize,
    /// Exclusive lower media position.
    pub from: f64,
    /// Inclusive upper media position.
    pub to: f64,
}

/// Violations detectable in the continuous model.
#[derive(Debug, Clone, PartialEq)]
pub enum ContinuousError {
    /// Intervals do not tile `(0, L]` for `client` (gap at `position`).
    CoverageGap { client: usize, position: f64 },
    /// Stream `stream` would need length `needed`, beyond its Lemma-1
    /// truncation `available`.
    SupplyExceeded {
        client: usize,
        stream: usize,
        needed: f64,
        available: f64,
    },
    /// A position would arrive after its playback instant.
    Late {
        client: usize,
        position: f64,
        slack: f64,
    },
    /// More than two simultaneous source streams.
    ReceiveTwoViolation { client: usize, instant: f64 },
}

/// Builds the position intervals of one client (tree-local index).
pub fn position_intervals(
    tree: &sm_core::MergeTree,
    times: &[f64],
    media_len: f64,
    client: usize,
) -> Vec<PositionInterval> {
    let path = tree.path_from_root(client);
    let k = path.len() - 1;
    let tk = times[path[k]];
    let mut out = Vec::with_capacity(path.len());
    for j in (0..=k).rev() {
        let tj = times[path[j]];
        let t_above = if j == k { tk } else { times[path[j + 1]] };
        let from = 2.0 * tk - t_above - tj;
        let to = if j == 0 {
            media_len
        } else {
            2.0 * tk - tj - times[path[j - 1]]
        };
        out.push(PositionInterval {
            stream: path[j],
            from,
            to,
        });
    }
    out
}

/// Verifies every client of a continuous forest. `eps` absorbs f64 noise.
pub fn verify_continuous(
    forest: &MergeForest,
    times: &[f64],
    media_len: f64,
    eps: f64,
) -> Result<(), ContinuousError> {
    for (range, tree) in forest.iter_with_ranges() {
        let base = range.start;
        let local = &times[range];
        let lengths = cost::lengths(tree, local);
        for c in 0..tree.len() {
            let t_c = local[c];
            let ivs = position_intervals(tree, local, media_len, c);
            // Coverage: contiguous from 0 to L.
            let mut expected = 0.0f64;
            for iv in &ivs {
                if iv.to < iv.from - eps {
                    continue; // empty interval
                }
                if (iv.from - expected).abs() > eps {
                    return Err(ContinuousError::CoverageGap {
                        client: base + c,
                        position: expected,
                    });
                }
                // Supply: the stream must actually run this long.
                let available = if iv.stream == 0 {
                    media_len
                } else {
                    lengths[iv.stream]
                };
                if iv.to > available + eps {
                    return Err(ContinuousError::SupplyExceeded {
                        client: base + c,
                        stream: base + iv.stream,
                        needed: iv.to,
                        available,
                    });
                }
                // Timeliness: position q arrives at t_stream + q, plays at
                // t_c + q; sources are earlier, so slack = t_c − t_stream.
                let slack = t_c - local[iv.stream];
                if slack < -eps {
                    return Err(ContinuousError::Late {
                        client: base + c,
                        position: iv.from,
                        slack,
                    });
                }
                expected = iv.to;
            }
            if (expected - media_len).abs() > eps {
                return Err(ContinuousError::CoverageGap {
                    client: base + c,
                    position: expected,
                });
            }
            // Receive-two: the client listens to stream x_j during the
            // real-time window (2t_k − t_{j+1}, 2t_k − t_{j−1}]. The
            // windows of x_{j+1} and x_{j−1} meet only at the single
            // instant 2t_k − t_j, so with *strictly increasing* path times
            // at most two windows overlap — structural, provided the path
            // really is increasing; verify that explicitly.
            let path = tree.path_from_root(c);
            for w in path.windows(2) {
                if local[w[1]] <= local[w[0]] + 0.0 {
                    return Err(ContinuousError::ReceiveTwoViolation {
                        client: base + c,
                        instant: local[w[1]],
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::MergeTree;
    use sm_online::dyadic::{DyadicConfig, DyadicMerger};

    #[test]
    fn integer_case_matches_slotted_model() {
        // Fig. 4 tree on real times must verify for L = 15.
        let tree = MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap();
        let times: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let forest = MergeForest::single(tree);
        verify_continuous(&forest, &times, 15.0, 1e-9).unwrap();
    }

    #[test]
    fn dyadic_output_verifies() {
        for cfg in [DyadicConfig::classic(), DyadicConfig::golden_poisson()] {
            let mut m = DyadicMerger::new(cfg, 25.0);
            let mut t = 0.0;
            for i in 0..120 {
                t += 0.13 + (i % 7) as f64 * 0.05;
                m.on_arrival(t);
            }
            let (forest, times) = m.forest();
            verify_continuous(&forest, &times, 25.0, 1e-9)
                .unwrap_or_else(|e| panic!("{cfg:?}: {e:?}"));
        }
    }

    #[test]
    fn position_intervals_match_integer_programs() {
        // Against the slotted receiving program for client H of Fig. 4:
        // parts {1,2} ↔ positions (0,2], {3..9} ↔ (2,9], {10..15} ↔ (9,15].
        let tree = MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap();
        let times: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ivs = position_intervals(&tree, &times, 15.0, 7);
        assert_eq!(ivs.len(), 3);
        assert_eq!((ivs[0].from, ivs[0].to), (0.0, 2.0));
        assert_eq!((ivs[1].from, ivs[1].to), (2.0, 9.0));
        assert_eq!((ivs[2].from, ivs[2].to), (9.0, 15.0));
    }

    #[test]
    fn too_short_media_detected() {
        let tree = MergeTree::chain(4);
        let times: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0];
        let forest = MergeForest::single(tree);
        // L = 4: chain needs ℓ(1) = 2·3 − 1 = 5 > 4.
        let err = verify_continuous(&forest, &times, 4.0, 1e-9).unwrap_err();
        assert!(matches!(
            err,
            ContinuousError::SupplyExceeded { .. } | ContinuousError::CoverageGap { .. }
        ));
    }
}
