//! The push-based serving engine: arrivals are *ingested* one at a time.
//!
//! The batch engines ([`dense`](super::dense), [`events`](super::events))
//! need the whole `(forest, times)` pair up front. A serving loop has
//! neither: clients show up one by one, the merge policy commits each one
//! at traffic time, and reports must flow out while the horizon is still
//! growing. [`IncrementalEngine`] is the event engine refactored around
//! that ingest direction:
//!
//! * **one open tree** — arrivals attach to the most recently opened tree
//!   (the model's invariant: merging across closed trees is impossible
//!   because their streams have already begun). The open tree is a
//!   [`TreeArena`] (flat `u32` columns, recycled through a storage pool so
//!   steady-state pushes are allocation-free) grown in place by
//!   `push_arrival` plus a vector of
//!   *tentative* Lemma-1 stream specs: attaching `y` under `p` makes `y`
//!   the last descendant of its entire root path, so exactly the nodes on
//!   that path update, to `ℓ(x) = (t_y − t_x) + (t_y − t_{p(x)})` —
//!   `O(depth)` per arrival, no re-derivation from the prefix;
//! * **deadlines fire during ingest** — a client's report depends only on
//!   its root-path arrival times and on spec fields that later arrivals
//!   can only *grow* past its demands (`t_z ≥ t_c` for every later
//!   descendant), so each report is final the moment the client's last
//!   part-deadline `t_c + L` falls strictly before the ingest clock.
//!   Reports stream out through `emit` in deadline order (ties by arrival
//!   index) — exactly the order and values of
//!   [`simulate_streaming`](super::events::simulate_streaming), including
//!   which error fires first;
//! * **bandwidth change-points finalize at tree closure** — a stream's end
//!   moves later while descendants can still attach (a tied co-arrival
//!   even gains its start retroactively), so a tree contributes its
//!   `(start, ±1)` events to a global min-heap only when a new root
//!   closes it. All future events then lie at or past the closing root's
//!   arrival, so the heap drains strictly below it into the same sparse
//!   `ProfileBuilder` sweep the event engine uses. Heap and retention
//!   are `O(open trees + active streams)`, never `O(arrivals)`;
//! * **time travel is rejected, interleaving is not** — `push` accepts any
//!   nondecreasing time sequence (ties included) and fails fast with
//!   [`IngestError::OutOfOrder`] otherwise, leaving the engine untouched.
//!
//! The `engine_equivalence` proptest suite pins this engine bit-identical
//! (reports, emission order, summary, first error) to the event engine on
//! every sorted input.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use super::events::{eval_client, EngineScratch, StreamingSummary};
use super::{ClientReport, SimConfig};
use crate::error::SimError;
use crate::metrics::ProfileBuilder;
use crate::schedule::{checked_media_len, StreamSpec};
use sm_core::{MergeForest, ModelError, TreeArena};

/// Where one ingested arrival goes, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attach {
    /// Open a new tree with this arrival as its root (a full stream);
    /// closes the previously open tree.
    Root,
    /// Merge under the arrival with this *global* index, which must lie in
    /// the currently open tree.
    Under(usize),
}

/// An ingest call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// A simulation-model violation (same errors, same precedence, as the
    /// batch engines).
    Sim(SimError),
    /// The arrival time moved backwards; the serving clock only advances.
    OutOfOrder {
        /// The offending push time.
        time: i64,
        /// The latest time already ingested.
        last: i64,
    },
    /// An [`Attach::Under`] named a parent outside the currently open tree
    /// (or no tree was open at all).
    ParentNotOpen {
        /// Global index the rejected arrival would have received.
        node: usize,
        /// The out-of-range parent it named.
        parent: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "{e}"),
            Self::OutOfOrder { time, last } => {
                write!(f, "arrival at {time} pushed after the clock reached {last}")
            }
            Self::ParentNotOpen { node, parent } => write!(
                f,
                "arrival {node} merges under {parent}, which is not in the open tree"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<SimError> for IngestError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Whole-run aggregates of an ingest run: the batch
/// [`StreamingSummary`] plus the ingest loop's own memory gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalSummary {
    /// Bit-identical to what [`super::events::simulate_streaming`] returns
    /// for the same arrivals.
    pub summary: StreamingSummary,
    /// High-water mark of simultaneously retained trees (the open tree
    /// plus closed trees with clients still inside their playback
    /// windows) — the `O(open trees)` claim, measured.
    pub max_open_trees: usize,
}

/// Recyclable per-tree storage: the arena columns plus the times and spec
/// buffers. Fully-served trees return their storage here so later opens
/// reuse the capacity instead of allocating.
#[derive(Debug, Default)]
struct TreeStorage {
    arena: TreeArena,
    times: Vec<i64>,
    specs: Vec<StreamSpec>,
}

/// The tree currently accepting arrivals.
#[derive(Debug)]
struct OpenTree {
    /// Global index of the root.
    base: usize,
    arena: TreeArena,
    times: Vec<i64>,
    /// Tentative Lemma-1 specs: exact for the tree as grown so far; only
    /// root-path entries of future arrivals can still grow.
    specs: Vec<StreamSpec>,
}

impl OpenTree {
    fn new(base: usize, time: i64, media: i64, storage: TreeStorage) -> Self {
        let TreeStorage {
            mut arena,
            mut times,
            mut specs,
        } = storage;
        arena.reset_singleton();
        times.clear();
        times.push(time);
        specs.clear();
        specs.push(StreamSpec {
            node: base,
            start: time,
            length: media,
        });
        Self {
            base,
            arena,
            times,
            specs,
        }
    }

    /// Attaches an arrival at `time` under local node `parent`, updating
    /// the tentative lengths of exactly the new node's root path.
    fn attach(&mut self, time: i64, parent: usize) -> Result<(), ModelError> {
        let x = self.arena.push_arrival(parent)?;
        self.times.push(time);
        // The new node is its own last descendant: ℓ = t_y − t_p.
        self.specs.push(StreamSpec {
            node: self.base + x,
            start: time,
            length: time - self.times[parent],
        });
        // …and the new last descendant of every proper ancestor: each
        // non-root ancestor a becomes ℓ(a) = (t_y − t_a) + (t_y − t_{p(a)}).
        // The root keeps the full media length.
        let mut cur = parent;
        while let Some(p) = self.arena.parent(cur) {
            self.specs[cur].length = (time - self.times[cur]) + (time - self.times[p]);
            cur = p;
        }
        Ok(())
    }
}

/// A closed tree retained only while clients inside it still await their
/// last part-deadline.
#[derive(Debug)]
struct ClosedTree {
    base: usize,
    arena: TreeArena,
    times: Vec<i64>,
    specs: Vec<StreamSpec>,
    remaining: usize,
}

/// Arrival-at-a-time serving engine; see the module docs for the design.
///
/// Drive it with [`push`](Self::push) per arrival and
/// [`finish`](Self::finish) once the horizon ends;
/// [`simulate_incremental`] is the batch adapter over a ready-made
/// `(forest, times)` pair.
#[derive(Debug)]
pub struct IncrementalEngine {
    media_len: u64,
    media: i64,
    config: SimConfig,
    /// Latest ingested arrival time; pushes may not move before it.
    last_time: Option<i64>,
    /// Arrivals ingested so far (also the next global index).
    n: usize,
    /// Deadline cursor: next client to evaluate and emit.
    ci: usize,
    open: Option<OpenTree>,
    closed: VecDeque<ClosedTree>,
    /// Reclaimed storage of fully-served trees; opening a new tree pops
    /// from here, so steady-state ingest allocates nothing.
    pool: Vec<TreeStorage>,
    /// Bandwidth change events `(slot, ±1)` of *closed* trees, drained
    /// strictly below the latest closing root's arrival time.
    events: BinaryHeap<Reverse<(i64, i32)>>,
    active: u32,
    profile: ProfileBuilder,
    total_units: i64,
    max_open_trees: usize,
    scratch: EngineScratch,
}

impl IncrementalEngine {
    /// A fresh engine for a media of `media_len` parts.
    /// `config.buffer_bound` is honored; `config.engine` is ignored (this
    /// *is* the incremental engine).
    pub fn new(media_len: u64, config: SimConfig) -> Result<Self, SimError> {
        let media = checked_media_len(media_len)?;
        Ok(Self {
            media_len,
            media,
            config,
            last_time: None,
            n: 0,
            ci: 0,
            open: None,
            closed: VecDeque::new(),
            pool: Vec::new(),
            events: BinaryHeap::new(),
            active: 0,
            profile: ProfileBuilder::new(),
            total_units: 0,
            max_open_trees: 0,
            scratch: EngineScratch::default(),
        })
    }

    /// Arrivals ingested so far.
    pub fn arrivals(&self) -> usize {
        self.n
    }

    /// Trees currently retained: the open one plus closed trees whose
    /// clients are still inside their playback windows.
    pub fn open_trees(&self) -> usize {
        self.closed.len() + usize::from(self.open.is_some())
    }

    /// High-water mark of [`open_trees`](Self::open_trees) so far.
    pub fn max_open_trees(&self) -> usize {
        self.max_open_trees
    }

    /// Ingests one arrival at `time`, first streaming out every report
    /// whose last part-deadline falls strictly before `time`.
    ///
    /// Times must be nondecreasing (ties welcome — simultaneous arrivals
    /// are the model's bread and butter); a backwards push is rejected
    /// with [`IngestError::OutOfOrder`] and changes nothing. A rejected
    /// attach ([`IngestError::ParentNotOpen`]) likewise leaves the engine
    /// as it was, so a serving loop can drop the request and carry on.
    pub fn push<F: FnMut(ClientReport)>(
        &mut self,
        time: i64,
        attach: Attach,
        mut emit: F,
    ) -> Result<(), IngestError> {
        if let Some(last) = self.last_time {
            if time < last {
                return Err(IngestError::OutOfOrder { time, last });
            }
        }
        self.fire_deadlines(Some(time), &mut emit)?;
        match attach {
            Attach::Root => {
                self.close_open(Some(time));
                let storage = self.pool.pop().unwrap_or_default();
                self.open = Some(OpenTree::new(self.n, time, self.media, storage));
            }
            Attach::Under(parent) => {
                let node = self.n;
                let not_open = IngestError::ParentNotOpen { node, parent };
                let open = self.open.as_mut().ok_or(not_open.clone())?;
                let local = parent
                    .checked_sub(open.base)
                    .filter(|&l| l < open.times.len())
                    .ok_or(not_open)?;
                open.attach(time, local)
                    .map_err(|e| IngestError::Sim(SimError::Model(e)))?;
            }
        }
        self.n += 1;
        self.last_time = Some(time);
        self.max_open_trees = self.max_open_trees.max(self.open_trees());
        Ok(())
    }

    /// Ends the horizon: fires every pending deadline, closes the open
    /// tree, drains the bandwidth events, and returns the aggregates.
    pub fn finish<F: FnMut(ClientReport)>(
        mut self,
        mut emit: F,
    ) -> Result<IncrementalSummary, SimError> {
        self.fire_deadlines(None, &mut emit)?;
        self.close_open(None);
        Ok(IncrementalSummary {
            summary: StreamingSummary {
                bandwidth: self.profile.finish(),
                total_units: self.total_units,
                clients: self.n,
            },
            max_open_trees: self.max_open_trees,
        })
    }

    /// Evaluates and emits clients in arrival-index order (which is
    /// deadline order, since times are nondecreasing) while their deadline
    /// `t_c + L` lies strictly before `before` — or all of them when
    /// `before` is `None`. Served-out closed trees are dropped from the
    /// front as the cursor passes them.
    fn fire_deadlines<F: FnMut(ClientReport)>(
        &mut self,
        before: Option<i64>,
        emit: &mut F,
    ) -> Result<(), SimError> {
        while self.ci < self.n {
            // The next unserved client always lives in the *front* closed
            // tree (earlier trees were dropped exactly when served out),
            // or in the open tree once no closed tree is left.
            if let Some(front) = self.closed.front_mut() {
                debug_assert!((front.base..front.base + front.times.len()).contains(&self.ci));
                let local = self.ci - front.base;
                if before.is_some_and(|h| front.times[local] + self.media >= h) {
                    return Ok(());
                }
                let report = eval_client(
                    &front.arena,
                    &front.times,
                    &front.specs,
                    self.media_len,
                    front.base,
                    local,
                    self.config,
                    &mut self.scratch,
                )?;
                emit(report);
                self.ci += 1;
                front.remaining -= 1;
                if front.remaining == 0 {
                    if let Some(done) = self.closed.pop_front() {
                        self.pool.push(TreeStorage {
                            arena: done.arena,
                            times: done.times,
                            specs: done.specs,
                        });
                    }
                }
            } else if let Some(open) = self.open.as_ref() {
                debug_assert!(self.ci >= open.base);
                let local = self.ci - open.base;
                if before.is_some_and(|h| open.times[local] + self.media >= h) {
                    return Ok(());
                }
                // Tentative specs are safe here: every spec a client reads
                // can only grow past demands that are fixed at its arrival.
                let report = eval_client(
                    &open.arena,
                    &open.times,
                    &open.specs,
                    self.media_len,
                    open.base,
                    local,
                    self.config,
                    &mut self.scratch,
                )?;
                emit(report);
                self.ci += 1;
            } else {
                debug_assert!(false, "client {} has no retained tree", self.ci);
                return Ok(());
            }
        }
        Ok(())
    }

    /// Closes the open tree (if any): its specs are now final, so its
    /// bandwidth events enter the heap and its units the total; it is
    /// retained only if unserved clients remain. Then drains every heap
    /// event strictly below `horizon` (all of them for `None`) — sound
    /// because every event a future push can add lies at or past the
    /// closing root's arrival time.
    fn close_open(&mut self, horizon: Option<i64>) {
        if let Some(open) = self.open.take() {
            for s in &open.specs {
                if s.length > 0 {
                    self.events.push(Reverse((s.start, 1)));
                    self.events.push(Reverse((s.end(), -1)));
                }
                self.total_units += s.length;
            }
            let len = open.times.len();
            let remaining = (open.base + len) - self.ci.max(open.base);
            if remaining > 0 {
                self.closed.push_back(ClosedTree {
                    base: open.base,
                    arena: open.arena,
                    times: open.times,
                    specs: open.specs,
                    remaining,
                });
            } else {
                self.pool.push(TreeStorage {
                    arena: open.arena,
                    times: open.times,
                    specs: open.specs,
                });
            }
        }
        while let Some(&Reverse((t, _))) = self.events.peek() {
            if horizon.is_some_and(|h| t >= h) {
                break;
            }
            // Net the whole instant, then record once: ends and starts at
            // the same slot coalesce exactly as in the event engine.
            while let Some(&Reverse((t2, delta))) = self.events.peek() {
                if t2 != t {
                    break;
                }
                self.events.pop();
                if delta > 0 {
                    self.active += 1;
                } else {
                    self.active -= 1;
                }
            }
            self.profile.record(t, self.active);
        }
    }
}

/// Replays a batch `(forest, times)` pair through the push interface, in
/// global arrival order — the bridge the equivalence suite and the scale
/// benchmark use to hold the ingest path against the batch engines.
///
/// `times` must be nondecreasing (the push interface's clock contract);
/// results are then bit-identical to
/// [`simulate_streaming`](super::events::simulate_streaming).
pub fn simulate_incremental<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    mut emit: F,
) -> Result<IncrementalSummary, IngestError> {
    if times.len() != forest.total_arrivals() {
        return Err(IngestError::Sim(SimError::Model(
            ModelError::TimesLengthMismatch {
                nodes: forest.total_arrivals(),
                times: times.len(),
            },
        )));
    }
    let mut engine = IncrementalEngine::new(media_len, config)?;
    for (range, tree) in forest.iter_with_ranges() {
        let base = range.start;
        for local in 0..tree.len() {
            let attach = match tree.parent(local) {
                None => Attach::Root,
                Some(p) => Attach::Under(base + p),
            };
            engine.push(times[base + local], attach, &mut emit)?;
        }
    }
    engine.finish(&mut emit).map_err(IngestError::Sim)
}

#[cfg(test)]
mod tests {
    use super::super::events::simulate_streaming_slice;
    use super::*;
    use sm_core::{consecutive_slots, MergeTree};

    fn fig4_forest() -> MergeForest {
        MergeForest::single(
            MergeTree::from_parents(&[
                None,
                Some(0),
                Some(0),
                Some(0),
                Some(3),
                Some(0),
                Some(5),
                Some(5),
            ])
            .unwrap(),
        )
    }

    /// Both engines over the same input; pins summary, reports, and
    /// emission order.
    fn assert_matches_events(forest: &MergeForest, times: &[i64], media_len: u64) {
        let cfg = SimConfig::default();
        let mut batch = Vec::new();
        let expected = simulate_streaming_slice(forest, times, media_len, cfg, |r| batch.push(r));
        let mut inc = Vec::new();
        let got = simulate_incremental(forest, times, media_len, cfg, |r| inc.push(r));
        match (expected, got) {
            (Ok(summary), Ok(isummary)) => {
                assert_eq!(isummary.summary, summary);
                assert_eq!(inc, batch, "reports and emission order must pin");
            }
            (Err(e), Err(IngestError::Sim(ie))) => assert_eq!(ie, e),
            (e, g) => panic!("engines disagree on outcome: {e:?} vs {g:?}"),
        }
    }

    #[test]
    fn fig4_pins_against_the_event_engine() {
        let forest = fig4_forest();
        assert_matches_events(&forest, &consecutive_slots(8), 15);
    }

    #[test]
    fn multi_tree_with_gaps_and_ties_pins() {
        let t = MergeTree::from_parents(&[None, Some(0), Some(1), Some(0)]).unwrap();
        let forest = MergeForest::from_trees(vec![t.clone(), t, MergeTree::singleton()]).unwrap();
        // Ties within a tree, a tie across the tree boundary, and a gap.
        let times = vec![0, 0, 2, 2, 2, 3, 3, 5, 40];
        assert_matches_events(&forest, &times, 12);
    }

    #[test]
    fn tied_co_arrival_gains_its_stream_retroactively() {
        // Arrival 1 ties with the root: its tentative stream has length 0.
        // Arrival 2 then merges under it, so stream 1 must retroactively
        // start (length 2·7 − 5 − 5 = 4) — the case that forces bandwidth
        // events to wait for tree closure.
        let tree = MergeTree::from_parents(&[None, Some(0), Some(1)]).unwrap();
        let forest = MergeForest::single(tree);
        assert_matches_events(&forest, &[5, 5, 7], 20);
    }

    #[test]
    fn deep_chain_pins() {
        let media = 40u64;
        let c = (media / 2 + 1) as usize;
        let forest = MergeForest::single(MergeTree::chain(c));
        assert_matches_events(&forest, &consecutive_slots(c), media);
    }

    #[test]
    fn buffer_bound_error_pins() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        let cfg = SimConfig {
            buffer_bound: Some(1),
            ..SimConfig::default()
        };
        let batch = simulate_streaming_slice(&forest, &times, 15, cfg, |_| {}).unwrap_err();
        let got = simulate_incremental(&forest, &times, 15, cfg, |_| {}).unwrap_err();
        assert_eq!(got, IngestError::Sim(batch));
    }

    #[test]
    fn out_of_order_push_is_rejected_and_harmless() {
        let mut eng = IncrementalEngine::new(10, SimConfig::default()).unwrap();
        eng.push(5, Attach::Root, |_| {}).unwrap();
        let err = eng.push(4, Attach::Root, |_| {}).unwrap_err();
        assert_eq!(err, IngestError::OutOfOrder { time: 4, last: 5 });
        // The clock and structure are untouched: a tie still goes through.
        eng.push(5, Attach::Under(0), |_| {}).unwrap();
        assert_eq!(eng.arrivals(), 2);
    }

    #[test]
    fn attach_outside_the_open_tree_is_rejected() {
        let mut eng = IncrementalEngine::new(10, SimConfig::default()).unwrap();
        let err = eng.push(0, Attach::Under(0), |_| {}).unwrap_err();
        assert_eq!(err, IngestError::ParentNotOpen { node: 0, parent: 0 });
        eng.push(0, Attach::Root, |_| {}).unwrap();
        eng.push(1, Attach::Root, |_| {}).unwrap();
        // Arrival 2 may not reach back into the closed tree's root 0.
        let err = eng.push(2, Attach::Under(0), |_| {}).unwrap_err();
        assert_eq!(err, IngestError::ParentNotOpen { node: 2, parent: 0 });
        // Nor name itself or the future.
        let err = eng.push(2, Attach::Under(2), |_| {}).unwrap_err();
        assert_eq!(err, IngestError::ParentNotOpen { node: 2, parent: 2 });
    }

    #[test]
    fn reports_stream_out_while_ingest_continues() {
        // Spaced singletons: by the time tree k opens, every client of
        // tree k−1 is past its deadline, so pushes interleave with emits
        // and retention stays at the open tree alone.
        let media = 5u64;
        let mut eng = IncrementalEngine::new(media, SimConfig::default()).unwrap();
        let mut emitted = Vec::new();
        for k in 0..16i64 {
            eng.push(k * 100, Attach::Root, |r: ClientReport| {
                emitted.push(r.client)
            })
            .unwrap();
            assert_eq!(eng.open_trees(), 1, "previous trees must be dropped");
            assert_eq!(emitted.len(), k as usize);
        }
        let summary = eng.finish(|r| emitted.push(r.client)).unwrap();
        assert_eq!(emitted, (0..16).collect::<Vec<_>>());
        assert_eq!(summary.max_open_trees, 1);
        assert_eq!(summary.summary.total_units, 16 * media as i64);
    }

    #[test]
    fn empty_run_matches_the_empty_batch() {
        let eng = IncrementalEngine::new(9, SimConfig::default()).unwrap();
        let summary = eng.finish(|_| {}).unwrap();
        assert_eq!(summary.summary.clients, 0);
        assert_eq!(summary.summary.total_units, 0);
        assert!(summary.summary.bandwidth.is_empty());
        assert_eq!(summary.max_open_trees, 0);
    }

    #[test]
    fn media_len_overflow_is_rejected_at_construction() {
        assert!(matches!(
            IncrementalEngine::new(u64::MAX, SimConfig::default()).unwrap_err(),
            SimError::MediaLenOverflow { .. }
        ));
    }

    #[test]
    fn max_open_trees_tracks_overlapping_windows() {
        // Roots every slot with a long media: all windows overlap, so
        // every tree is still retained when the last one opens.
        let n = 8usize;
        let forest = MergeForest::from_trees(vec![MergeTree::singleton(); n]).unwrap();
        let times: Vec<i64> = (0..n as i64).collect();
        let summary =
            simulate_incremental(&forest, &times, 1000, SimConfig::default(), |_| {}).unwrap();
        assert_eq!(summary.max_open_trees, n);
    }
}
