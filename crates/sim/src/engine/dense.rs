//! The slot-stepped reference engine.
//!
//! Replays every client over every slot of its playback window with dense
//! per-slot scratch vectors. Cost is `O(span × clients)` time and `O(L)`
//! memory per client, which is fine for the paper-scale figures and makes
//! it the easy-to-audit oracle the event engine is pinned against.

use super::{ClientReport, SimConfig, SimReport};
use crate::error::SimError;
use crate::metrics::BandwidthProfile;
use crate::schedule::{stream_schedule, StreamSpec};
use sm_core::{MergeForest, ReceivingProgram};

/// Runs the dense engine. Inputs are pre-validated by `simulate_with`.
pub(super) fn run(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    let specs = stream_schedule(forest, times, media_len)?;
    let bandwidth = BandwidthProfile::from_streams(&specs);
    let total_units: i64 = specs.iter().map(|s| s.length).sum();

    let mut clients = Vec::with_capacity(times.len());
    for (range, tree) in forest.iter_with_ranges() {
        let base = range.start;
        let local_times = &times[range.clone()];
        let local_specs = &specs[range.clone()];
        for c in 0..tree.len() {
            let report = run_client(tree, local_times, local_specs, media_len, base, c, config)?;
            clients.push(report);
        }
    }
    Ok(SimReport {
        bandwidth,
        total_units,
        clients,
    })
}

fn run_client(
    tree: &sm_core::MergeTree,
    local_times: &[i64],
    local_specs: &[StreamSpec],
    media_len: u64,
    base: usize,
    c: usize,
    config: SimConfig,
) -> Result<ClientReport, SimError> {
    let media = media_len as i64;
    let t_c = local_times[c];
    let global = base + c;
    let prog = ReceivingProgram::build(tree, local_times, media_len, c);
    prog.verify(local_times, media_len)
        .map_err(SimError::Model)?;

    // receive_end[q]: instant part q is fully received (from the schedule).
    let mut receive_end = vec![i64::MAX; (media + 1) as usize];
    // Reception concurrency per slot offset (program spans [t_c, t_c+media)).
    let mut concurrency = vec![0usize; media as usize + 1];
    for seg in &prog.segments {
        if seg.is_empty() {
            continue;
        }
        let spec = &local_specs[seg.stream];
        for part in seg.first_part..=seg.last_part {
            // The stream must actually broadcast the part.
            let Some(slot) = spec.broadcast_slot(part) else {
                return Err(SimError::StreamTooShort {
                    client: global,
                    stream: base + seg.stream,
                    part,
                    length: spec.length,
                });
            };
            // Playback deadline: part q plays during [t_c+q−1, t_c+q); it
            // must be broadcast no later than that same slot.
            let deadline = t_c + part - 1;
            if slot > deadline {
                return Err(SimError::Stall {
                    client: global,
                    part,
                    received: slot,
                    deadline,
                });
            }
            receive_end[part as usize] = slot + 1;
            let off = (slot - t_c).clamp(0, media) as usize;
            concurrency[off] += 1;
        }
    }

    // Receive-two: in any slot, parts arrive from at most two distinct
    // streams; because each stream contributes at most one part per slot,
    // per-slot part count == per-slot stream count.
    let mut max_concurrent = 0usize;
    for (off, &cnt) in concurrency.iter().enumerate() {
        if cnt > 2 {
            return Err(SimError::ReceiveTwoViolation {
                client: global,
                slot: t_c + off as i64,
                count: cnt,
            });
        }
        max_concurrent = max_concurrent.max(cnt);
    }

    // Buffer occupancy sweep and minimum slack.
    let mut max_buffer = 0i64;
    let mut min_slack = i64::MAX;
    for q in 1..=media {
        let deadline_end = t_c + q; // playback slot ends here
        let slack = deadline_end - receive_end[q as usize];
        min_slack = min_slack.min(slack);
    }
    for tau in t_c..=(t_c + media) {
        let received = (1..=media)
            .filter(|&q| receive_end[q as usize] <= tau)
            .count() as i64;
        let played = (tau - t_c).clamp(0, media);
        max_buffer = max_buffer.max(received - played);
    }
    if let Some(bound) = config.buffer_bound {
        if max_buffer > bound as i64 {
            return Err(SimError::BufferOverflow {
                client: global,
                needed: max_buffer,
                bound,
            });
        }
    }
    Ok(ClientReport {
        client: global,
        max_buffer,
        max_concurrent,
        min_slack,
    })
}
