//! The execution engines.
//!
//! Three engines replay every client's receiving program against the
//! concrete broadcast schedule and fail with the *first* violation —
//! stall, receive-two breach, buffer overflow, or a program/schedule
//! mismatch:
//!
//! * [`dense`] — the original slot-stepped oracle: every client is swept
//!   over every slot of its playback window (`O(clients · L²)` time,
//!   `O(L)` scratch per client). Simple, and kept as the reference.
//! * [`events`] — the discrete-event engine: the schedule is pulled lazily
//!   tree-by-tree (a [`crate::ScheduleStream`]) and dropped as trees finish,
//!   stream ends live in a binary min-heap, and per-client metrics are
//!   derived from the program's segments by a single sorted-endpoint sweep —
//!   `O(segments log segments)` per client (never candidates × segments),
//!   memory proportional to the *active* trees and streams — the
//!   production batch path.
//! * [`incremental`] — the event engine turned inside out for *serving*:
//!   arrivals push in one at a time ([`IncrementalEngine::push`]), the
//!   open merge tree and its tentative Lemma-1 specs grow in place, and
//!   reports stream out as deadlines fire during ingest — no forest, no
//!   horizon, no times slice up front.
//!
//! All produce bit-identical reports (pinned by the `engine_equivalence`
//! proptest suite); [`SimConfig::engine`] selects a batch engine, while
//! the incremental engine is driven through its own push interface.

pub mod dense;
pub mod events;
pub mod incremental;

use crate::error::SimError;
use crate::metrics::BandwidthProfile;
use crate::schedule::checked_media_len;
use sm_core::MergeForest;

pub use events::{simulate_streaming, simulate_streaming_slice, Arrival, StreamingSummary};
pub use incremental::{
    simulate_incremental, Attach, IncrementalEngine, IncrementalSummary, IngestError,
};

/// Which execution engine to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Slot-stepped reference engine (`O(span · clients)` time).
    Dense,
    /// Event-driven engine (default): heap-scheduled, sparse accounting.
    #[default]
    Events,
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Fail if a client would need more than this many buffered parts.
    pub buffer_bound: Option<u64>,
    /// Engine selection; defaults to [`Engine::Events`].
    pub engine: Engine,
}

impl SimConfig {
    /// Default configuration on the slot-stepped reference engine.
    pub fn dense() -> Self {
        Self {
            engine: Engine::Dense,
            ..Self::default()
        }
    }

    /// Default configuration on the event-driven engine.
    pub fn events() -> Self {
        Self {
            engine: Engine::Events,
            ..Self::default()
        }
    }
}

/// Per-client measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// Global arrival index.
    pub client: usize,
    /// Peak number of parts held in the buffer.
    pub max_buffer: i64,
    /// Peak number of simultaneously received streams.
    pub max_concurrent: usize,
    /// Slack (in slots) between each part's arrival and its playback,
    /// minimised over parts: 0 means some part arrives just in time.
    pub min_slack: i64,
}

/// Whole-run measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Server bandwidth at its change-points (sparse).
    pub bandwidth: BandwidthProfile,
    /// Total transmitted slot-units (must equal the analytic `Fcost`).
    pub total_units: i64,
    /// Per-client reports, by global arrival index.
    pub clients: Vec<ClientReport>,
}

/// Simulates with default configuration (event-driven engine).
pub fn simulate(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
) -> Result<SimReport, SimError> {
    simulate_with(forest, times, media_len, SimConfig::default())
}

/// Simulates a merge forest over slotted arrivals.
///
/// Every client of every tree is executed: its receiving program is built
/// from the tree structure, then *checked against the broadcast schedule*
/// (the schedule knows only stream lengths; the program knows only the
/// tree path — agreement is the Lemma 1 ↔ §2 consistency the paper relies
/// on).
///
/// An empty forest over zero arrivals yields an empty report.
pub fn simulate_with(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    if times.len() != forest.total_arrivals() {
        return Err(SimError::Model(sm_core::ModelError::TimesLengthMismatch {
            nodes: forest.total_arrivals(),
            times: times.len(),
        }));
    }
    checked_media_len(media_len)?;
    match config.engine {
        Engine::Dense => dense::run(forest, times, media_len, config),
        Engine::Events => events::run(forest, times, media_len, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, full_cost, required_buffer, MergeTree};

    const ENGINES: [Engine; 2] = [Engine::Dense, Engine::Events];

    fn cfg(engine: Engine) -> SimConfig {
        SimConfig {
            engine,
            ..SimConfig::default()
        }
    }

    fn fig4_forest() -> MergeForest {
        MergeForest::single(
            MergeTree::from_parents(&[
                None,
                Some(0),
                Some(0),
                Some(0),
                Some(3),
                Some(0),
                Some(5),
                Some(5),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn fig3_executes_cleanly() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 15, cfg(engine)).unwrap();
            assert_eq!(report.total_units, 36);
            assert_eq!(report.total_units, full_cost(&forest, &times, 15));
            assert_eq!(report.clients.len(), 8);
        }
    }

    #[test]
    fn measured_buffers_match_lemma15() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 15, cfg(engine)).unwrap();
            let tree = &forest.trees()[0];
            for cr in &report.clients {
                assert_eq!(
                    cr.max_buffer,
                    required_buffer(tree, &times, 15, cr.client),
                    "client {} ({engine:?})",
                    cr.client
                );
            }
        }
    }

    #[test]
    fn no_client_exceeds_two_streams() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 15, cfg(engine)).unwrap();
            for cr in &report.clients {
                assert!(cr.max_concurrent <= 2);
            }
        }
    }

    #[test]
    fn stall_detected_when_media_too_short() {
        // The Fig. 4 shape with L = 8: client 7's program needs parts past
        // what the root can deliver in time.
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let err = simulate_with(&forest, &times, 8, cfg(engine)).unwrap_err();
            // Either a coverage failure or a stall, depending on which
            // client trips first — both are model-consistency failures.
            match err {
                SimError::Model(_) | SimError::Stall { .. } | SimError::StreamTooShort { .. } => {}
                other => panic!("unexpected error {other:?} ({engine:?})"),
            }
        }
    }

    #[test]
    fn buffer_bound_enforced() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let err = simulate_with(
                &forest,
                &times,
                15,
                SimConfig {
                    buffer_bound: Some(3),
                    engine,
                },
            )
            .unwrap_err();
            assert!(matches!(err, SimError::BufferOverflow { .. }), "{engine:?}");
        }
    }

    #[test]
    fn slack_is_zero_for_just_in_time_parts() {
        // Clients receive their first parts exactly as they play them.
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 15, cfg(engine)).unwrap();
            for cr in &report.clients {
                assert_eq!(cr.min_slack, 0, "client {} ({engine:?})", cr.client);
            }
        }
    }

    #[test]
    fn bandwidth_profile_peaks_match_fig3() {
        let forest = fig4_forest();
        let times = consecutive_slots(8);
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 15, cfg(engine)).unwrap();
            // At slot 7 streams A, D(3..8), F(5..14), H(7..9) are live -> 4
            // concurrent; G lives only in slot 6..7.
            assert!(report.bandwidth.peak() >= 4);
            assert_eq!(report.bandwidth.total_units(), 36);
        }
    }

    #[test]
    fn multi_tree_forest_simulates() {
        let t = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let forest = MergeForest::from_trees(vec![t.clone(), t]).unwrap();
        let times = consecutive_slots(6);
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 10, cfg(engine)).unwrap();
            assert_eq!(report.total_units, 2 * 10 + 3 + 3);
        }
    }

    #[test]
    fn empty_forest_yields_empty_report() {
        // Regression: zero arrivals used to be unconstructible/panicky; it
        // must now produce an empty report on both engines.
        let forest = MergeForest::empty();
        for engine in ENGINES {
            let report = simulate_with(&forest, &[], 15, cfg(engine)).unwrap();
            assert_eq!(report.total_units, 0);
            assert!(report.clients.is_empty());
            assert!(report.bandwidth.is_empty());
            assert_eq!(report.bandwidth.peak(), 0);
        }
    }

    #[test]
    fn single_arrival_forest_simulates() {
        let forest = MergeForest::single(MergeTree::singleton());
        let times = [5i64];
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 12, cfg(engine)).unwrap();
            assert_eq!(report.total_units, 12);
            assert_eq!(report.clients.len(), 1);
            let cr = &report.clients[0];
            assert_eq!(cr.max_buffer, 0);
            assert_eq!(cr.max_concurrent, 1);
            assert_eq!(cr.min_slack, 0);
            assert_eq!(report.bandwidth.peak(), 1);
        }
    }

    #[test]
    fn zero_media_len_simulates_to_nothing() {
        // Regression: L = 0 exercised the per-slot vectors' edge cases. A
        // forest of singleton trees is the only feasible shape (no parts to
        // deliver, so every receiving program is empty).
        let trees = vec![MergeTree::singleton(); 3];
        let forest = MergeForest::from_trees(trees).unwrap();
        let times = [0i64, 4, 9];
        for engine in ENGINES {
            let report = simulate_with(&forest, &times, 0, cfg(engine)).unwrap();
            assert_eq!(report.total_units, 0);
            assert_eq!(report.clients.len(), 3);
            for cr in &report.clients {
                assert_eq!(cr.max_buffer, 0);
                assert_eq!(cr.max_concurrent, 0);
                assert_eq!(cr.min_slack, i64::MAX, "no parts -> vacuous slack");
            }
        }
    }

    #[test]
    fn unsorted_sibling_times_agree_with_dense_on_reports_and_first_error() {
        // Sibling order need not follow time order (`from_parents` only
        // constrains indices): with times [0, 5, 2] client 2's part-deadline
        // fires before client 1's, so the event engine naturally *detects*
        // client 2's violation first — but it must still report client 1's,
        // like the dense index-order scan does.
        let tree = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let forest = MergeForest::single(tree);
        let times = [0i64, 5, 2];
        let ok_dense = simulate_with(&forest, &times, 40, cfg(Engine::Dense));
        let ok_events = simulate_with(&forest, &times, 40, cfg(Engine::Events));
        assert!(ok_dense.is_ok());
        assert_eq!(ok_dense, ok_events);
        let err_cfg = |engine| SimConfig {
            buffer_bound: Some(0),
            engine,
        };
        let err_dense = simulate_with(&forest, &times, 40, err_cfg(Engine::Dense)).unwrap_err();
        let err_events = simulate_with(&forest, &times, 40, err_cfg(Engine::Events)).unwrap_err();
        assert_eq!(err_dense, err_events);
        assert!(matches!(
            err_dense,
            SimError::BufferOverflow { client: 1, .. }
        ));
    }

    #[test]
    fn media_len_overflow_is_rejected_up_front() {
        let forest = MergeForest::single(MergeTree::singleton());
        for engine in ENGINES {
            let err = simulate_with(&forest, &[0], u64::MAX, cfg(engine)).unwrap_err();
            assert!(matches!(err, SimError::MediaLenOverflow { .. }));
        }
    }
}
