//! The discrete-event engine.
//!
//! Where the [`dense`](super::dense) engine sweeps every slot of every
//! client's playback window, this engine advances time only at *events*:
//!
//! * **stream starts** — pulled lazily, tree by tree, from a
//!   [`ScheduleStream`]: arrival times are nondecreasing in every real
//!   workload, so the next start is a cursor into the most recently pulled
//!   tree, not a heap entry;
//! * **stream ends** — pushed into a binary min-heap when their stream
//!   starts, so the heap never holds more than the currently *active*
//!   streams;
//! * **per-client part-deadlines** — each client's program ends with part
//!   `L` playing during `[t_c+L−1, t_c+L)`; the final deadline `t_c + L` is
//!   the event at which the client's whole program is checked and its
//!   report emitted. Deadlines are a cursor over the arrival sequence — no
//!   per-client allocation — and are batched per tree: with sorted times
//!   the client at the deadline cursor always lives in the *front* retained
//!   tree, so serving it is O(1) with no per-client forest search.
//!
//! A pulled tree is retained only until its last client's deadline fires,
//! so schedule memory is proportional to the trees whose playback windows
//! are *open*, not to the whole arrival sequence. (Exotic inputs with
//! globally unsorted arrival times fall back to an eager path that
//! materializes and sorts the schedule; results are identical either way.)
//!
//! The hot path is arena-backed and allocation-free in steady state:
//!
//! * each retained tree is a [`TreeArena`] (five flat `u32` columns) plus
//!   one contiguous spec buffer, both recycled through a storage pool when
//!   the tree is fully served — after warm-up, pulling a tree allocates
//!   nothing;
//! * all per-client evaluation state — the receiving program in
//!   struct-of-arrays form and the sweep buffers — lives in a single
//!   `EngineScratch` reused across every client of the run.
//!
//! The pointer-based `MergeTree`/`ReceivingProgram` stay the validated
//! constructors; the [`dense`](super::dense) oracle keeps using them
//! directly so the arena lowering itself is cross-checked by equivalence.
//!
//! Bandwidth is metered sparsely: the active-stream count is recorded only
//! when it changes, yielding the change-point [`BandwidthProfile`] directly
//! — no per-slot allocation over the span ever happens.
//!
//! Per-client metrics are computed in closed form from the receiving
//! program's segments instead of slot-by-slot replay. For a client at `t_c`
//! receiving parts `[first, last]` from the stream of node `x_j` (started at
//! `t_j`):
//!
//! * part `q` is broadcast in slot `t_j + q − 1` and plays in slot
//!   `t_c + q − 1`, so the *slack* `t_c − t_j` and the *stall* condition
//!   `t_j > t_c` are constant across the segment;
//! * reception occupies the slot interval `[t_j+first−1, t_j+last−1]`, so
//!   receive-two compliance is interval-overlap ≤ 2;
//! * buffer occupancy `received(τ) − played(τ)` is piecewise linear in `τ`
//!   with kinks only at segment interval endpoints (and `t_c`, `t_c + L`);
//!   one merged sweep over the sorted endpoints evaluates every kink
//!   candidate with a running `(open streams, Σ open starts, finished
//!   parts)` prefix — `O(segments log segments)` total, never
//!   candidates × segments.
//!
//! All of this reproduces the dense engine's measurements *bit for bit*
//! (including which error fires first); the `engine_equivalence` proptest
//! suite pins that, for the collected and the streaming API both.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use super::{ClientReport, SimConfig, SimReport};
use crate::error::SimError;
use crate::metrics::{BandwidthProfile, ProfileBuilder};
use crate::schedule::{stream_schedule, ScheduleStream, StreamSpec};
use sm_core::{MergeForest, ModelError, TreeArena};

/// Whole-run aggregates of a streaming simulation (everything a
/// [`SimReport`] holds except the per-client vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingSummary {
    /// Server bandwidth at its change-points.
    pub bandwidth: BandwidthProfile,
    /// Total transmitted slot-units (`= Fcost`).
    pub total_units: i64,
    /// Number of clients served (and emitted).
    pub clients: usize,
}

/// Runs the event engine and collects a full [`SimReport`].
pub(super) fn run(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    let mut clients = Vec::with_capacity(times.len());
    match simulate_streaming_slice(forest, times, media_len, config, |r| clients.push(r)) {
        Ok(summary) => {
            // Deadline order equals arrival-index order for sorted times;
            // sort to guarantee index order for the report regardless.
            clients.sort_unstable_by_key(|r| r.client);
            Ok(SimReport {
                bandwidth: summary.bandwidth,
                total_units: summary.total_units,
                clients,
            })
        }
        Err(streaming_err) => {
            // The stream fails at the earliest part-deadline violation; the
            // dense engine reports the lowest-*index* violation. Those only
            // differ when arrival times are not globally nondecreasing —
            // replay client checks in index order so the reported error is
            // identical either way. Error path only: no cost on success.
            let specs = stream_schedule(forest, times, media_len)?;
            let mut scratch = EngineScratch::default();
            let mut arena = TreeArena::new();
            for (range, tree) in forest.iter_with_ranges() {
                arena.lower_into(tree).map_err(SimError::Model)?;
                let base = range.start;
                let local_times = &times[range.clone()];
                let local_specs = &specs[range];
                for local in 0..arena.len() {
                    eval_client(
                        &arena,
                        local_times,
                        local_specs,
                        media_len,
                        base,
                        local,
                        config,
                        &mut scratch,
                    )?;
                }
            }
            Err(streaming_err)
        }
    }
}

/// One client arrival — the unit the streaming API ingests.
///
/// Thin today (a slot time), but a named type so arrival sources (slices,
/// generators, sockets) and the engine agree on a vocabulary that can grow
/// fields without breaking every `IntoIterator` in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arrival {
    /// Arrival slot.
    pub time: i64,
}

impl From<i64> for Arrival {
    fn from(time: i64) -> Self {
        Self { time }
    }
}

/// Event-driven simulation with streaming per-client reports, fed by any
/// arrival source (`Vec`, generator adaptors, a live ingest queue — no
/// pre-materialized slice required; `(0..n).map(Arrival::from)` works).
///
/// `emit` is called once per client, in part-deadline order (`t_c + L`,
/// ties by arrival index), as soon as the client's program completes —
/// nothing per-client is retained afterwards. For nondecreasing arrival
/// times (the model's canonical form) the schedule itself is pulled lazily
/// tree-by-tree and each tree is dropped once its last client is served, so
/// peak memory tracks the *active* trees and streams rather than the whole
/// arrival sequence. `config.buffer_bound` is honored; `config.engine` is
/// ignored (this *is* the event engine).
///
/// Returns the whole-run aggregates; fails at the first violating
/// *part-deadline*. That is the same first error [`super::simulate_with`]
/// reports whenever arrival times are nondecreasing; on exotic unsorted
/// inputs (which take an eager, sort-based path) `simulate_with`
/// additionally replays the checks in arrival order to keep its error
/// identical to the dense engine's.
pub fn simulate_streaming<I, F>(
    forest: &MergeForest,
    arrivals: I,
    media_len: u64,
    config: SimConfig,
    mut emit: F,
) -> Result<StreamingSummary, SimError>
where
    I: IntoIterator<Item = Arrival>,
    F: FnMut(ClientReport),
{
    // The schedule needs random access to root-path times, so the source
    // is drained once into a times vector, checking sortedness on the fly
    // (no second pass, no caller-side materialization contract).
    let iter = arrivals.into_iter();
    let mut times = Vec::with_capacity(iter.size_hint().0);
    let mut sorted = true;
    for arrival in iter {
        sorted &= times.last().is_none_or(|&last| last <= arrival.time);
        times.push(arrival.time);
    }
    dispatch(forest, &times, sorted, media_len, config, &mut emit)
}

/// The batch-slice form of [`simulate_streaming`]: zero-copy over an
/// already-materialized times slice. Semantics are identical.
pub fn simulate_streaming_slice<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    mut emit: F,
) -> Result<StreamingSummary, SimError> {
    let sorted = times.windows(2).all(|w| w[0] <= w[1]);
    dispatch(forest, times, sorted, media_len, config, &mut emit)
}

/// Shared tail of the two streaming entry points.
fn dispatch<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    sorted: bool,
    media_len: u64,
    config: SimConfig,
    emit: &mut F,
) -> Result<StreamingSummary, SimError> {
    if times.len() != forest.total_arrivals() {
        return Err(SimError::Model(sm_core::ModelError::TimesLengthMismatch {
            nodes: forest.total_arrivals(),
            times: times.len(),
        }));
    }
    if sorted {
        streaming_lazy(forest, times, media_len, config, emit)
    } else {
        streaming_eager(forest, times, media_len, config, emit)
    }
}

/// One pulled tree, retained while any of its clients' deadlines are
/// pending: the arena form of the tree plus its contiguous spec buffer,
/// both recycled through [`LazySchedule::pool`] once fully served.
struct RetainedTree {
    base: usize,
    arena: TreeArena,
    specs: Vec<StreamSpec>,
    remaining: usize,
}

/// Lazily pulled schedule state for the sorted-arrivals streaming path.
///
/// Trees enter at the back when the start cursor (or a part-deadline)
/// reaches them and leave at the front when fully served; with sorted
/// times, starts are nondecreasing in global index order, so the cursor
/// `(cur_tree, cur_local)` never has to look behind the back tree, and the
/// deadline cursor always points into the *front* retained tree.
struct LazySchedule<'a> {
    trees: ScheduleStream<'a>,
    retained: VecDeque<RetainedTree>,
    /// Reclaimed arena + spec storage of fully-served trees; pulling a new
    /// tree reuses it, so steady-state pulls allocate nothing.
    pool: Vec<(TreeArena, Vec<StreamSpec>)>,
    /// Trees already dropped from the front of `retained`.
    popped: usize,
    /// Global arrival index one past the last pulled tree.
    covered: usize,
    /// Start cursor: next spec to start, as (tree index, local index).
    cur_tree: usize,
    cur_local: usize,
    /// Memoized [`Self::peek_start`] answer for the current cursor position
    /// (outer `None` = not computed). Only [`Self::take_start`] moves the
    /// cursor, so that is the only invalidation point: pulls append behind
    /// the cursor and front releases renumber without changing which spec
    /// the cursor denotes.
    peeked: Option<Option<(i64, i64)>>,
    total_units: i64,
}

impl<'a> LazySchedule<'a> {
    fn new(trees: ScheduleStream<'a>) -> Self {
        Self {
            trees,
            retained: VecDeque::new(),
            pool: Vec::new(),
            popped: 0,
            covered: 0,
            cur_tree: 0,
            cur_local: 0,
            peeked: None,
            total_units: 0,
        }
    }

    fn pulled(&self) -> usize {
        self.popped + self.retained.len()
    }

    /// Pulls one more tree into retention (storage from the pool when
    /// available); `Ok(false)` when the forest is exhausted.
    fn pull(&mut self) -> Result<bool, SimError> {
        let (mut arena, mut specs) = self.pool.pop().unwrap_or_default();
        let Some(base) = self.trees.next_into_arena(&mut arena, &mut specs)? else {
            self.pool.push((arena, specs));
            return Ok(false);
        };
        self.total_units += specs.iter().map(|s| s.length).sum::<i64>();
        self.covered = base + specs.len();
        self.retained.push_back(RetainedTree {
            base,
            arena,
            remaining: specs.len(),
            specs,
        });
        Ok(true)
    }

    /// Advances the start cursor to the next positive-length stream and
    /// returns its `(start, end)`, pulling trees as the cursor reaches
    /// them.
    fn peek_start(&mut self) -> Result<Option<(i64, i64)>, SimError> {
        if let Some(peeked) = self.peeked {
            return Ok(peeked);
        }
        let peeked = loop {
            if self.cur_tree >= self.pulled() {
                if !self.pull()? {
                    break None;
                }
                continue;
            }
            let t = &self.retained[self.cur_tree - self.popped];
            match t.specs.get(self.cur_local) {
                None => {
                    self.cur_tree += 1;
                    self.cur_local = 0;
                }
                Some(s) if s.length == 0 => self.cur_local += 1,
                Some(s) => break Some((s.start, s.end())),
            }
        };
        self.peeked = Some(peeked);
        Ok(peeked)
    }

    /// Consumes the spec the last `peek_start` returned.
    fn take_start(&mut self) {
        self.cur_local += 1;
        self.peeked = None;
    }

    /// Guarantees the tree serving global arrival `g` has been pulled
    /// (needed only when a part-deadline fires before any stream of its
    /// tree starts, e.g. `media_len = 0`).
    fn ensure_pulled(&mut self, g: usize) -> Result<(), SimError> {
        while self.covered <= g {
            if !self.pull()? {
                break;
            }
        }
        Ok(())
    }

    /// The front retained tree — with sorted times, always the tree of the
    /// client at the deadline cursor (deadlines fire in arrival order and
    /// trees tile the arrival sequence).
    fn front(&self) -> &RetainedTree {
        &self.retained[0]
    }

    /// Records that one client of the front tree was served; a fully-served
    /// tree is dropped and its storage recycled into the pool.
    fn release_front(&mut self) {
        self.retained[0].remaining -= 1;
        if self.retained[0].remaining > 0 {
            return;
        }
        // The cursor can never lag behind a fully-served tree: every
        // start of the tree precedes its last part-deadline. (Non-front
        // trees always have unserved clients, so no cascade is possible.)
        debug_assert!(
            self.cur_tree > self.popped || self.cur_local >= self.retained[0].specs.len()
        );
        if self.cur_tree == self.popped {
            self.cur_tree += 1;
            self.cur_local = 0;
        }
        if let Some(done) = self.retained.pop_front() {
            self.pool.push((done.arena, done.specs));
        }
        self.popped += 1;
    }
}

/// The lazy streaming path for nondecreasing arrival times: starts and
/// deadlines are plain cursors (both orders coincide with global index
/// order), the schedule is pulled and dropped tree-by-tree.
fn streaming_lazy<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    emit: &mut F,
) -> Result<StreamingSummary, SimError> {
    let mut sched = LazySchedule::new(ScheduleStream::new(forest, times, media_len)?);
    let media = media_len as i64; // validated by ScheduleStream::new

    let mut ends: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut active: u32 = 0;
    let mut profile = ProfileBuilder::new();
    let mut ci = 0usize; // deadline cursor: next client (deadlines sorted)
    let mut scratch = EngineScratch::default();

    loop {
        // Next event instant over the three sources.
        let mut next: Option<i64> = ends.peek().map(|&Reverse(t)| t);
        if let Some((start, _)) = sched.peek_start()? {
            next = Some(next.map_or(start, |t| t.min(start)));
        }
        if let Some(&t_c) = times.get(ci) {
            let d = t_c + media;
            next = Some(next.map_or(d, |t| t.min(d)));
        }
        let Some(now) = next else { break };

        // Stream ends, then starts: the net count change at `now` is what
        // the sparse profile records (a back-to-back handoff is no change).
        let mut bandwidth_event = false;
        while ends.peek().is_some_and(|&Reverse(t)| t == now) {
            ends.pop();
            active -= 1;
            bandwidth_event = true;
        }
        while let Some((start, end)) = sched.peek_start()? {
            if start != now {
                break;
            }
            ends.push(Reverse(end));
            active += 1;
            sched.take_start();
            bandwidth_event = true;
        }
        if bandwidth_event {
            profile.record(now, active);
        }

        // Client part-deadlines: the client's last part has played, so its
        // whole program is checkable; verify, emit, release the tree. The
        // client always lives in the front retained tree (see
        // [`LazySchedule::front`]), so no per-client forest search happens.
        while times.get(ci).is_some_and(|&t_c| t_c + media == now) {
            sched.ensure_pulled(ci)?;
            let rt = sched.front();
            let local = ci - rt.base;
            let local_times = &times[rt.base..rt.base + rt.specs.len()];
            emit(eval_client(
                &rt.arena,
                local_times,
                &rt.specs,
                media_len,
                rt.base,
                local,
                config,
                &mut scratch,
            )?);
            sched.release_front();
            ci += 1;
        }
    }

    // Every tree serves at least one client, so by the last part-deadline
    // every tree has been pulled; drain defensively anyway so
    // `total_units` is complete on degenerate inputs.
    while sched.pull()? {}

    Ok(StreamingSummary {
        bandwidth: profile.finish(),
        total_units: sched.total_units,
        clients: times.len(),
    })
}

/// The eager fallback for exotic inputs with globally unsorted arrival
/// times: materialize the whole schedule (and every tree's arena) and sort
/// the event sources.
fn streaming_eager<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    emit: &mut F,
) -> Result<StreamingSummary, SimError> {
    let specs = stream_schedule(forest, times, media_len)?;
    let media = media_len as i64; // validated by stream_schedule
    let total_units: i64 = specs.iter().map(|s| s.length).sum();
    let mut arenas: Vec<TreeArena> = Vec::with_capacity(forest.num_trees());
    for tree in forest.trees() {
        arenas.push(TreeArena::lower(tree).map_err(SimError::Model)?);
    }

    let mut starts: Vec<usize> = (0..specs.len()).filter(|&i| specs[i].length > 0).collect();
    starts.sort_by_key(|&i| specs[i].start);
    let mut deadlines: Vec<usize> = (0..times.len()).collect();
    deadlines.sort_by_key(|&c| times[c]);

    let mut ends: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut active: u32 = 0;
    let mut profile = ProfileBuilder::new();
    let mut si = 0usize; // cursor into `starts`
    let mut ci = 0usize; // cursor into `deadlines`
    let mut scratch = EngineScratch::default();

    loop {
        // Next event instant over the three sources.
        let mut next: Option<i64> = ends.peek().map(|&Reverse(t)| t);
        if let Some(&i) = starts.get(si) {
            next = Some(next.map_or(specs[i].start, |t| t.min(specs[i].start)));
        }
        if let Some(&c) = deadlines.get(ci) {
            let d = times[c] + media;
            next = Some(next.map_or(d, |t| t.min(d)));
        }
        let Some(now) = next else { break };

        // Stream ends, then starts: the net count change at `now` is what
        // the sparse profile records (a back-to-back handoff is no change).
        let mut bandwidth_event = false;
        while ends.peek().is_some_and(|&Reverse(t)| t == now) {
            ends.pop();
            active -= 1;
            bandwidth_event = true;
        }
        while starts.get(si).is_some_and(|&i| specs[i].start == now) {
            ends.push(Reverse(specs[starts[si]].end()));
            active += 1;
            si += 1;
            bandwidth_event = true;
        }
        if bandwidth_event {
            profile.record(now, active);
        }

        // Client part-deadlines: the client's last part has played, so its
        // whole program is checkable; verify and emit.
        while deadlines.get(ci).is_some_and(|&c| times[c] + media == now) {
            let c = deadlines[ci];
            ci += 1;
            let (ti, local) = forest.locate(c);
            let base = forest.tree_start(ti);
            let arena = &arenas[ti];
            let local_times = &times[base..base + arena.len()];
            let local_specs = &specs[base..base + arena.len()];
            emit(eval_client(
                arena,
                local_times,
                local_specs,
                media_len,
                base,
                local,
                config,
                &mut scratch,
            )?);
        }
    }

    Ok(StreamingSummary {
        bandwidth: profile.finish(),
        total_units,
        clients: times.len(),
    })
}

/// Reusable per-client evaluation buffers: one allocation set for a whole
/// run instead of one per client. The receiving program is held in
/// struct-of-arrays form (`seg_stream`/`seg_first`/`seg_last` parallel
/// columns) — the arena counterpart of `ReceivingProgram`, rebuilt in
/// place with identical output and identical `verify` semantics. Shared
/// with the push-based [`super::incremental`] engine so both evaluate
/// clients with the very same code path.
#[derive(Debug, Default)]
pub(super) struct EngineScratch {
    /// Root path of the client under evaluation (local indices).
    path: Vec<usize>,
    /// Receiving-program segments in part order, struct-of-arrays: source
    /// stream (local index), first and last part (1-based, inclusive).
    seg_stream: Vec<usize>,
    seg_first: Vec<i64>,
    seg_last: Vec<i64>,
    /// Inclusive receive-slot interval of each non-empty segment
    /// (test-only staging: the hot path feeds `starts`/`ends` directly).
    #[cfg(test)]
    intervals: Vec<(i64, i64)>,
    /// Interval start slots, sorted ascending.
    starts: Vec<i64>,
    /// Exclusive interval end slots (`hi + 1`), sorted ascending.
    ends: Vec<i64>,
}

impl EngineScratch {
    /// Rebuilds `client`'s receiving program into the segment columns and
    /// verifies it in the same pass — the struct-of-arrays fusion of
    /// `ReceivingProgram::rebuild` + `verify`: bit-identical segments and
    /// errors (rebuild is infallible and verify rejects at the first
    /// offending segment in part order — exactly the order segments are
    /// generated here, so checking each segment as it is built reports the
    /// identical first error), no per-client allocation once the columns
    /// have capacity.
    fn rebuild_and_verify_program(
        &mut self,
        arena: &TreeArena,
        times: &[i64],
        media: i64,
        client: usize,
    ) -> Result<(), ModelError> {
        debug_assert_eq!(times.len(), arena.len());
        arena.path_from_root_into(client, &mut self.path);
        let path = &self.path;
        let k = path.len() - 1;
        let tk = times[path[k]];
        let client_time = times[client];
        self.seg_stream.clear();
        self.seg_first.clear();
        self.seg_last.clear();
        let mut expected = 1i64;
        // j runs from the client's own stream (j = k) down to the root;
        // the three path times each closed form reads (`t_{j+1}`, `t_j`,
        // `t_{j−1}`) shift through registers so each level costs a single
        // `times` load.
        let mut t_above = tk;
        let mut tj = tk;
        for j in (0..=k).rev() {
            let t_below = if j == 0 { 0 } else { times[path[j - 1]] };
            let first = 2 * tk - t_above - tj + 1;
            let last = if j == 0 { media } else { 2 * tk - tj - t_below };
            self.seg_stream.push(path[j]);
            self.seg_first.push(first);
            self.seg_last.push(last);
            if last >= first {
                if first < 1 || last > media {
                    let part = if first < 1 { first } else { last };
                    return Err(ModelError::PartOutOfRange { part });
                }
                if first != expected {
                    return Err(ModelError::CoverageGap {
                        expected_part: expected,
                        found_part: first,
                    });
                }
                // Timeliness: part q is received during slot
                // [t_stream + q − 1, t_stream + q) and played during
                // [t_client + q − 1, t_client + q); the source must not be
                // later than the client (guaranteed by parent < child,
                // re-checked here against the actual times).
                if tj > client_time {
                    return Err(ModelError::ParentNotEarlier {
                        node: client,
                        parent: path[j],
                    });
                }
                expected = last + 1;
            }
            t_above = tj;
            tj = t_below;
        }
        if expected != media + 1 {
            return Err(ModelError::CoverageGap {
                expected_part: expected,
                found_part: media + 1,
            });
        }
        Ok(())
    }

    /// Sorts the endpoint views if needed. The hot path pushes endpoints in
    /// part order, which the closed forms keep sorted for every program the
    /// verify pass admits on sorted arrivals, so the common case is a single
    /// ordered scan with no swap; the sorts only fire on adversarial inputs
    /// (and produce exactly what sorting the part-order endpoints always
    /// produced, so behavior is unchanged either way).
    fn sort_endpoints(&mut self) {
        if !self.starts.is_sorted() {
            self.starts.sort_unstable();
        }
        if !self.ends.is_sorted() {
            self.ends.sort_unstable();
        }
    }

    /// Loads the sorted endpoint views of `intervals` (test-only staging —
    /// the hot path pushes into `starts`/`ends` directly).
    #[cfg(test)]
    fn load_endpoints(&mut self) {
        self.starts.clear();
        self.starts.extend(self.intervals.iter().map(|&(lo, _)| lo));
        self.ends.clear();
        self.ends
            .extend(self.intervals.iter().map(|&(_, hi)| hi + 1));
        self.sort_endpoints();
    }
}

/// Everything one merged endpoint walk learns about a client's reception.
#[derive(Debug, Default, PartialEq, Eq)]
struct SweepOutcome {
    /// Peak concurrent receptions (≤ 2 when compliant).
    max_concurrent: usize,
    /// Maximum of `received(τ) − played(τ)` over the playback window.
    max_buffer: i64,
    /// First `(slot, count)` where concurrency exceeded two, if any.
    violation: Option<(i64, i64)>,
}

/// Receive-two compliance *and* peak buffer occupancy in a single merged
/// walk over the sorted interval endpoints.
///
/// The concurrency half reproduces exactly the change-points (and the first
/// violating slot) of the sparse reception profile the dense scan is pinned
/// against. The buffer half exploits that `received(τ) − played(τ)` is
/// piecewise linear with slope `open_count − 1` between endpoints: for any
/// *verified* program every interval endpoint lies inside the playback
/// window `[t_c, t_c + L]` (`lo = 2t_c − t_above ≥ t_c` since every source
/// on the path arrives no later than the client, and `hi + 1 = t_j + last ≤
/// t_c + L` since `last ≤ L`), so the window clamps the former standalone
/// sweep applied are provably no-ops and the running integral evaluated at
/// each endpoint visits every candidate maximum (the window bounds
/// themselves can never beat the endpoint values: before the first `lo` and
/// after the last `hi + 1` the buffer only drains).
fn endpoint_sweep(scratch: &EngineScratch, t_c: i64, media: i64) -> SweepOutcome {
    let (starts, ends) = (&scratch.starts, &scratch.ends);
    debug_assert!(starts.first().is_none_or(|&lo| lo >= t_c));
    debug_assert!(ends.last().is_none_or(|&e| e <= t_c + media));
    let (mut si, mut ei) = (0usize, 0usize);
    let mut count = 0i64;
    let mut out = SweepOutcome::default();
    let mut prev = t_c;
    let mut buf = 0i64;
    while si < starts.len() || ei < ends.len() {
        let slot = match (starts.get(si), ends.get(ei)) {
            (Some(&s), Some(&e)) => s.min(e),
            (Some(&s), None) => s,
            (None, Some(&e)) => e,
            // Unreachable (the loop condition keeps one side non-empty),
            // but exiting the loop is the honest fallback: the tail checks
            // still run and no panic surface is introduced.
            (None, None) => break,
        };
        // Buffer at `slot`, evaluated before the count changes: the slope
        // since the previous endpoint is `count − 1` (reception minus
        // playback).
        buf += (count - 1) * (slot - prev);
        prev = slot;
        out.max_buffer = out.max_buffer.max(buf);
        let before = count;
        while ei < ends.len() && ends[ei] == slot {
            count -= 1;
            ei += 1;
        }
        while si < starts.len() && starts[si] == slot {
            count += 1;
            si += 1;
        }
        if count != before {
            if count > 2 && out.violation.is_none() {
                out.violation = Some((slot, count));
            }
            out.max_concurrent = out.max_concurrent.max(count as usize);
        }
    }
    out
}

/// Checks one client's program against its tree's schedule and measures it,
/// in `O(segments log segments)` arithmetic — no per-slot state, no
/// allocation (everything lives in `scratch`). Also the evaluator of the
/// push-based [`super::incremental`] engine (same code path, so the two
/// engines cannot drift apart on per-client semantics).
#[allow(clippy::too_many_arguments)] // tree-local slices + scratch, all hot
pub(super) fn eval_client(
    arena: &TreeArena,
    local_times: &[i64],
    local_specs: &[StreamSpec],
    media_len: u64,
    base: usize,
    local: usize,
    config: SimConfig,
    scratch: &mut EngineScratch,
) -> Result<ClientReport, SimError> {
    let media = media_len as i64;
    let t_c = local_times[local];
    let global = base + local;

    scratch
        .rebuild_and_verify_program(arena, local_times, media, local)
        .map_err(SimError::Model)?;

    // Per-segment closed forms, pushing each non-empty segment's inclusive
    // receive-slot interval straight into the endpoint views.
    let mut min_slack = i64::MAX;
    scratch.starts.clear();
    scratch.ends.clear();
    for s in 0..scratch.seg_stream.len() {
        let (first, last) = (scratch.seg_first[s], scratch.seg_last[s]);
        if last < first {
            continue;
        }
        let stream = scratch.seg_stream[s];
        let spec = &local_specs[stream];
        // Mirrors the dense per-part loop's error precedence: for each part
        // in order, "stream too short" is checked before "stall", so the
        // first failing part decides the variant.
        if first > spec.length {
            return Err(SimError::StreamTooShort {
                client: global,
                stream: base + stream,
                part: first,
                length: spec.length,
            });
        }
        if spec.start > t_c {
            return Err(SimError::Stall {
                client: global,
                part: first,
                received: spec.start + first - 1,
                deadline: t_c + first - 1,
            });
        }
        if last > spec.length {
            return Err(SimError::StreamTooShort {
                client: global,
                stream: base + stream,
                part: spec.length + 1,
                length: spec.length,
            });
        }
        // Part q arrives at the end of slot t_j + q − 1 and plays in slot
        // t_c + q − 1: slack is t_c − t_j for every part of the segment.
        min_slack = min_slack.min(t_c - spec.start);
        scratch.starts.push(spec.start + first - 1);
        scratch.ends.push(spec.start + last);
    }
    scratch.sort_endpoints();

    // Receive-two (segment intervals may overlap at most pairwise — the
    // first endpoint whose net coverage exceeds 2 is exactly the slot the
    // dense scan reports) and buffer occupancy (received(τ) − played(τ)
    // maximized over the playback window; a part received in slot τ′ is
    // *in hand* from τ′ + 1 on), both from one merged endpoint walk.
    let sweep = endpoint_sweep(scratch, t_c, media);
    if let Some((slot, count)) = sweep.violation {
        return Err(SimError::ReceiveTwoViolation {
            client: global,
            slot,
            count: count as usize,
        });
    }
    let max_buffer = sweep.max_buffer;

    if let Some(bound) = config.buffer_bound {
        if max_buffer > bound as i64 {
            return Err(SimError::BufferOverflow {
                client: global,
                needed: max_buffer,
                bound,
            });
        }
    }
    Ok(ClientReport {
        client: global,
        max_buffer,
        max_concurrent: sweep.max_concurrent,
        min_slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, MergeTree, ReceivingProgram};

    /// Quadratic reference for the endpoint sweep: evaluate occupancy at
    /// every candidate by re-summing all segments.
    fn max_buffer_quadratic(intervals: &[(i64, i64)], t_c: i64, media: i64) -> i64 {
        let occupancy = |tau: i64| -> i64 {
            let received: i64 = intervals
                .iter()
                .map(|&(lo, hi)| (tau - lo).clamp(0, hi - lo + 1))
                .sum();
            received - (tau - t_c).clamp(0, media)
        };
        let clamp_window = |tau: i64| tau.clamp(t_c, t_c + media);
        let mut max_buffer = 0i64;
        for &(lo, hi) in intervals {
            max_buffer = max_buffer.max(occupancy(clamp_window(lo)));
            max_buffer = max_buffer.max(occupancy(clamp_window(hi + 1)));
        }
        max_buffer.max(occupancy(t_c)).max(occupancy(t_c + media))
    }

    fn sweep_with(intervals: &[(i64, i64)], t_c: i64, media: i64) -> i64 {
        let mut scratch = EngineScratch::default();
        scratch.intervals.extend_from_slice(intervals);
        scratch.load_endpoints();
        endpoint_sweep(&scratch, t_c, media).max_buffer
    }

    #[test]
    fn sweep_matches_quadratic_reference() {
        // Deterministic pseudo-random interval sets — overlapping, nested,
        // touching, deeply stacked — drawn inside the playback window, the
        // domain the verify pass establishes before the sweep ever runs
        // (every interval of a verified program lies within
        // [t_c, t_c + media]).
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let t_c = (next() % 50) as i64 - 25;
            let media = 1 + (next() % 40) as i64;
            let n = (case % 7) as usize;
            let intervals: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let lo = t_c + (next() % media as u64) as i64;
                    let len = (next() % 12) as i64;
                    (lo, (lo + len).min(t_c + media - 1))
                })
                .collect();
            assert_eq!(
                sweep_with(&intervals, t_c, media),
                max_buffer_quadratic(&intervals, t_c, media),
                "case {case}: t_c={t_c} media={media} intervals={intervals:?}"
            );
        }
    }

    #[test]
    fn receive_two_sweep_matches_sparse_profile() {
        // Same randomized interval sets: the merged endpoint walk must see
        // exactly the change-points (and max) of the sparse profile.
        let mut state = 0x1319_8A2E_0370_7344u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let n = (case % 6) as usize;
            let intervals: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let lo = (next() % 30) as i64;
                    (lo, lo + (next() % 10) as i64)
                })
                .collect();
            let mut scratch = EngineScratch::default();
            scratch.intervals.extend_from_slice(&intervals);
            scratch.load_endpoints();
            let swept = endpoint_sweep(&scratch, 0, 64);
            let reference =
                BandwidthProfile::from_intervals(intervals.iter().map(|&(lo, hi)| (lo, hi + 1)));
            let first_violation = reference
                .change_points()
                .iter()
                .find(|&&(_, count)| count > 2)
                .map(|&(slot, count)| (slot, count as i64));
            assert_eq!(swept.violation, first_violation, "case {case}");
            if first_violation.is_none() {
                assert_eq!(swept.max_concurrent as u32, reference.peak(), "case {case}");
            }
        }
    }

    #[test]
    fn sweep_on_no_intervals_is_zero() {
        assert_eq!(sweep_with(&[], 5, 10), 0);
        assert_eq!(sweep_with(&[], 0, 0), 0);
    }

    #[test]
    fn soa_program_matches_receiving_program_rebuild() {
        // The scratch's SoA rebuild + verify must agree with the
        // pointer-based `ReceivingProgram` on the paper's Fig. 4 tree,
        // client by client, segment by segment.
        let tree = MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap();
        let times = consecutive_slots(8);
        let arena = TreeArena::lower(&tree).unwrap();
        let mut scratch = EngineScratch::default();
        for client in 0..tree.len() {
            let prog = ReceivingProgram::build(&tree, &times, 15, client);
            let verdict = scratch.rebuild_and_verify_program(&arena, &times, 15, client);
            assert_eq!(verdict, prog.verify(&times, 15), "client {client}");
            assert_eq!(scratch.path, prog.path, "client {client}");
            let soa: Vec<(usize, i64, i64)> = (0..scratch.seg_stream.len())
                .map(|s| {
                    (
                        scratch.seg_stream[s],
                        scratch.seg_first[s],
                        scratch.seg_last[s],
                    )
                })
                .collect();
            let reference: Vec<(usize, i64, i64)> = prog
                .segments
                .iter()
                .map(|seg| (seg.stream, seg.first_part, seg.last_part))
                .collect();
            assert_eq!(soa, reference, "client {client}");
        }
    }

    #[test]
    fn lazy_streaming_retains_only_open_trees() {
        // Singleton trees at widely spaced times: while tree k plays, trees
        // k+2.. have not been pulled and trees ..k−1 have been dropped, so
        // retention stays at the one-open-tree + one-lookahead bound.
        let n = 64usize;
        let media = 5u64;
        let trees = vec![MergeTree::singleton(); n];
        let forest = MergeForest::from_trees(trees).unwrap();
        let times: Vec<i64> = (0..n as i64).map(|i| i * 100).collect();
        let mut served = 0usize;
        let summary = simulate_streaming_slice(&forest, &times, media, SimConfig::events(), |r| {
            assert_eq!(r.client, served, "deadline order is arrival order");
            served += 1;
        })
        .unwrap();
        assert_eq!(served, n);
        assert_eq!(summary.total_units, n as i64 * media as i64);
        assert_eq!(summary.bandwidth.peak(), 1);
    }

    #[test]
    fn deep_chain_tree_streams_cleanly() {
        // One maximal-depth feasible chain: L ≥ 2(c − 1) with consecutive
        // arrivals. Exercises the sweep on many-segment programs.
        let media = 60u64;
        let c = (media / 2 + 1) as usize;
        let forest = MergeForest::single(MergeTree::chain(c));
        let times = consecutive_slots(c);
        let mut reports = Vec::new();
        // The iterator entry point, exercised over a generator source.
        let summary = simulate_streaming(
            &forest,
            times.iter().copied().map(Arrival::from),
            media,
            SimConfig::events(),
            |r| reports.push(r),
        )
        .unwrap();
        assert_eq!(reports.len(), c);
        assert_eq!(
            summary.total_units,
            sm_core::full_cost(&forest, &times, media)
        );
        for r in &reports {
            assert!(r.max_concurrent <= 2);
        }
    }
}
