//! The discrete-event engine.
//!
//! Where the [`dense`](super::dense) engine sweeps every slot of every
//! client's playback window, this engine advances time only at *events*:
//!
//! * **stream starts** — arrivals are time-ordered, so pending starts are a
//!   sorted cursor, not heap entries;
//! * **stream ends** — pushed into a binary min-heap when their stream
//!   starts, so the heap never holds more than the currently *active*
//!   streams;
//! * **per-client part-deadlines** — each client's program ends with part
//!   `L` playing during `[t_c+L−1, t_c+L)`; the final deadline `t_c + L` is
//!   the event at which the client's whole program is checked and its
//!   report emitted.
//!
//! Bandwidth is metered sparsely: the active-stream count is recorded only
//! when it changes, yielding the change-point [`BandwidthProfile`] directly
//! — no per-slot allocation over the span ever happens.
//!
//! Per-client metrics are computed in closed form from the receiving
//! program's segments instead of slot-by-slot replay. For a client at `t_c`
//! receiving parts `[first, last]` from the stream of node `x_j` (started at
//! `t_j`):
//!
//! * part `q` is broadcast in slot `t_j + q − 1` and plays in slot
//!   `t_c + q − 1`, so the *slack* `t_c − t_j` and the *stall* condition
//!   `t_j > t_c` are constant across the segment;
//! * reception occupies the slot interval `[t_j+first−1, t_j+last−1]`, so
//!   receive-two compliance is interval-overlap ≤ 2;
//! * buffer occupancy `received(τ) − played(τ)` is piecewise linear in `τ`
//!   with breakpoints only at segment interval endpoints (and `t_c`,
//!   `t_c + L`), so its maximum is attained at one of `O(segments)`
//!   candidate slots.
//!
//! All of this reproduces the dense engine's measurements *bit for bit*
//! (including which error fires first); the `engine_equivalence` proptest
//! suite pins that.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{ClientReport, SimConfig, SimReport};
use crate::error::SimError;
use crate::metrics::{BandwidthProfile, ProfileBuilder};
use crate::schedule::{stream_schedule, StreamSpec};
use sm_core::{MergeForest, ReceivingProgram};

/// Whole-run aggregates of a streaming simulation (everything a
/// [`SimReport`] holds except the per-client vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingSummary {
    /// Server bandwidth at its change-points.
    pub bandwidth: BandwidthProfile,
    /// Total transmitted slot-units (`= Fcost`).
    pub total_units: i64,
    /// Number of clients served (and emitted).
    pub clients: usize,
}

/// Runs the event engine and collects a full [`SimReport`].
pub(super) fn run(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    let mut clients = Vec::with_capacity(times.len());
    match simulate_streaming(forest, times, media_len, config, |r| clients.push(r)) {
        Ok(summary) => {
            // Deadline order equals arrival-index order for sorted times;
            // sort to guarantee index order for the report regardless.
            clients.sort_unstable_by_key(|r| r.client);
            Ok(SimReport {
                bandwidth: summary.bandwidth,
                total_units: summary.total_units,
                clients,
            })
        }
        Err(streaming_err) => {
            // The stream fails at the earliest part-deadline violation; the
            // dense engine reports the lowest-*index* violation. Those only
            // differ when arrival times are not globally nondecreasing —
            // replay client checks in index order so the reported error is
            // identical either way. Error path only: no cost on success.
            let specs = stream_schedule(forest, times, media_len)?;
            for c in 0..times.len() {
                eval_client(forest, times, &specs, media_len, c, config)?;
            }
            Err(streaming_err)
        }
    }
}

/// Event-driven simulation with streaming per-client reports.
///
/// `emit` is called once per client, in part-deadline order (`t_c + L`,
/// ties by arrival index), as soon as the client's program completes —
/// nothing per-client is retained afterwards, so peak memory is the
/// schedule plus the active-stream heap rather than `O(clients)` reports.
/// `config.buffer_bound` is honored; `config.engine` is ignored (this *is*
/// the event engine).
///
/// Returns the whole-run aggregates; fails at the first violating
/// *part-deadline*. That is the same first error [`super::simulate_with`]
/// reports whenever arrival times are nondecreasing (the model's canonical
/// form); on exotic unsorted inputs `simulate_with` additionally replays
/// the checks in arrival order to keep its error identical to the dense
/// engine's.
pub fn simulate_streaming<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    mut emit: F,
) -> Result<StreamingSummary, SimError> {
    if times.len() != forest.total_arrivals() {
        return Err(SimError::Model(sm_core::ModelError::TimesLengthMismatch {
            nodes: forest.total_arrivals(),
            times: times.len(),
        }));
    }
    let specs = stream_schedule(forest, times, media_len)?;
    let media = media_len as i64; // validated by stream_schedule
    let total_units: i64 = specs.iter().map(|s| s.length).sum();

    // Sorted event sources. Arrival times are nondecreasing in every real
    // workload (trees tile arrivals left to right), making these sorts
    // near-free; they also make the engine robust to exotic inputs.
    let mut starts: Vec<usize> = (0..specs.len()).filter(|&i| specs[i].length > 0).collect();
    starts.sort_by_key(|&i| specs[i].start);
    let mut deadlines: Vec<usize> = (0..times.len()).collect();
    deadlines.sort_by_key(|&c| times[c]);

    let mut ends: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut active: u32 = 0;
    let mut profile = ProfileBuilder::new();
    let mut si = 0usize; // cursor into `starts`
    let mut ci = 0usize; // cursor into `deadlines`

    loop {
        // Next event instant over the three sources.
        let mut next: Option<i64> = ends.peek().map(|&Reverse(t)| t);
        if let Some(&i) = starts.get(si) {
            next = Some(next.map_or(specs[i].start, |t| t.min(specs[i].start)));
        }
        if let Some(&c) = deadlines.get(ci) {
            let d = times[c] + media;
            next = Some(next.map_or(d, |t| t.min(d)));
        }
        let Some(now) = next else { break };

        // Stream ends, then starts: the net count change at `now` is what
        // the sparse profile records (a back-to-back handoff is no change).
        let mut bandwidth_event = false;
        while ends.peek().is_some_and(|&Reverse(t)| t == now) {
            ends.pop();
            active -= 1;
            bandwidth_event = true;
        }
        while starts.get(si).is_some_and(|&i| specs[i].start == now) {
            ends.push(Reverse(specs[starts[si]].end()));
            active += 1;
            si += 1;
            bandwidth_event = true;
        }
        if bandwidth_event {
            profile.record(now, active);
        }

        // Client part-deadlines: the client's last part has played, so its
        // whole program is checkable; verify and emit.
        while deadlines.get(ci).is_some_and(|&c| times[c] + media == now) {
            let c = deadlines[ci];
            ci += 1;
            emit(eval_client(forest, times, &specs, media_len, c, config)?);
        }
    }

    Ok(StreamingSummary {
        bandwidth: profile.finish(),
        total_units,
        clients: times.len(),
    })
}

/// Checks one client's program against the schedule and measures it, in
/// `O(segments²)` arithmetic — no per-slot state.
fn eval_client(
    forest: &MergeForest,
    times: &[i64],
    specs: &[StreamSpec],
    media_len: u64,
    global: usize,
    config: SimConfig,
) -> Result<ClientReport, SimError> {
    let media = media_len as i64;
    let (ti, local) = forest.locate(global);
    let tree = &forest.trees()[ti];
    let base = forest.tree_start(ti);
    let local_times = &times[base..base + tree.len()];
    let local_specs = &specs[base..base + tree.len()];
    let t_c = local_times[local];

    let prog = ReceivingProgram::build(tree, local_times, media_len, local);
    prog.verify(local_times, media_len)
        .map_err(SimError::Model)?;

    // Per-segment closed forms. `intervals` collects the inclusive
    // receive-slot interval of each non-empty segment.
    let mut min_slack = i64::MAX;
    let mut intervals: Vec<(i64, i64)> = Vec::with_capacity(prog.segments.len());
    for seg in &prog.segments {
        if seg.is_empty() {
            continue;
        }
        let spec = &local_specs[seg.stream];
        // Mirrors the dense per-part loop's error precedence: for each part
        // in order, "stream too short" is checked before "stall", so the
        // first failing part decides the variant.
        if seg.first_part > spec.length {
            return Err(SimError::StreamTooShort {
                client: global,
                stream: base + seg.stream,
                part: seg.first_part,
                length: spec.length,
            });
        }
        if spec.start > t_c {
            return Err(SimError::Stall {
                client: global,
                part: seg.first_part,
                received: spec.start + seg.first_part - 1,
                deadline: t_c + seg.first_part - 1,
            });
        }
        if seg.last_part > spec.length {
            return Err(SimError::StreamTooShort {
                client: global,
                stream: base + seg.stream,
                part: spec.length + 1,
                length: spec.length,
            });
        }
        // Part q arrives at the end of slot t_j + q − 1 and plays in slot
        // t_c + q − 1: slack is t_c − t_j for every part of the segment.
        min_slack = min_slack.min(t_c - spec.start);
        intervals.push((
            spec.start + seg.first_part - 1,
            spec.start + seg.last_part - 1,
        ));
    }

    // Receive-two: segment intervals may overlap at most pairwise. The
    // client's reception is itself a tiny bandwidth profile (one unit per
    // segment); coverage only changes at change-points, so the first
    // change-point above 2 is exactly the slot the dense scan reports.
    let reception =
        BandwidthProfile::from_intervals(intervals.iter().map(|&(lo, hi)| (lo, hi + 1)));
    let mut max_concurrent = 0usize;
    for &(slot, count) in reception.change_points() {
        if count > 2 {
            return Err(SimError::ReceiveTwoViolation {
                client: global,
                slot,
                count: count as usize,
            });
        }
        max_concurrent = max_concurrent.max(count as usize);
    }

    // Buffer occupancy: received(τ) − played(τ) is piecewise linear with
    // breakpoints only at interval endpoints (and the playback window
    // bounds), so its maximum over [t_c, t_c + L] is attained at one of
    // these candidates.
    // A part received in slot τ′ is *in hand* from τ′ + 1 on, so a segment
    // over receive slots [lo, hi] has contributed clamp(τ − lo, 0, hi−lo+1)
    // parts by instant τ — kinks at τ = lo and τ = hi + 1.
    let occupancy = |tau: i64| -> i64 {
        let received: i64 = intervals
            .iter()
            .map(|&(lo, hi)| (tau - lo).clamp(0, hi - lo + 1))
            .sum();
        received - (tau - t_c).clamp(0, media)
    };
    let mut max_buffer = 0i64;
    let clamp_window = |tau: i64| tau.clamp(t_c, t_c + media);
    for &(lo, hi) in &intervals {
        max_buffer = max_buffer.max(occupancy(clamp_window(lo)));
        max_buffer = max_buffer.max(occupancy(clamp_window(hi + 1)));
    }
    max_buffer = max_buffer.max(occupancy(t_c)).max(occupancy(t_c + media));

    if let Some(bound) = config.buffer_bound {
        if max_buffer > bound as i64 {
            return Err(SimError::BufferOverflow {
                client: global,
                needed: max_buffer,
                bound,
            });
        }
    }
    Ok(ClientReport {
        client: global,
        max_buffer,
        max_concurrent,
        min_slack,
    })
}
