//! The discrete-event engine.
//!
//! Where the [`dense`](super::dense) engine sweeps every slot of every
//! client's playback window, this engine advances time only at *events*:
//!
//! * **stream starts** — pulled lazily, tree by tree, from a
//!   [`ScheduleStream`]: arrival times are nondecreasing in every real
//!   workload, so the next start is a cursor into the most recently pulled
//!   tree, not a heap entry;
//! * **stream ends** — pushed into a binary min-heap when their stream
//!   starts, so the heap never holds more than the currently *active*
//!   streams;
//! * **per-client part-deadlines** — each client's program ends with part
//!   `L` playing during `[t_c+L−1, t_c+L)`; the final deadline `t_c + L` is
//!   the event at which the client's whole program is checked and its
//!   report emitted. Deadlines are a cursor over the arrival sequence — no
//!   per-client allocation.
//!
//! A pulled tree is retained only until its last client's deadline fires,
//! so schedule memory is proportional to the trees whose playback windows
//! are *open*, not to the whole arrival sequence. (Exotic inputs with
//! globally unsorted arrival times fall back to an eager path that
//! materializes and sorts the schedule; results are identical either way.)
//!
//! Bandwidth is metered sparsely: the active-stream count is recorded only
//! when it changes, yielding the change-point [`BandwidthProfile`] directly
//! — no per-slot allocation over the span ever happens.
//!
//! Per-client metrics are computed in closed form from the receiving
//! program's segments instead of slot-by-slot replay. For a client at `t_c`
//! receiving parts `[first, last]` from the stream of node `x_j` (started at
//! `t_j`):
//!
//! * part `q` is broadcast in slot `t_j + q − 1` and plays in slot
//!   `t_c + q − 1`, so the *slack* `t_c − t_j` and the *stall* condition
//!   `t_j > t_c` are constant across the segment;
//! * reception occupies the slot interval `[t_j+first−1, t_j+last−1]`, so
//!   receive-two compliance is interval-overlap ≤ 2;
//! * buffer occupancy `received(τ) − played(τ)` is piecewise linear in `τ`
//!   with kinks only at segment interval endpoints (and `t_c`, `t_c + L`);
//!   one merged sweep over the sorted endpoints evaluates every kink
//!   candidate with a running `(open streams, Σ open starts, finished
//!   parts)` prefix — `O(segments log segments)` total, never
//!   candidates × segments.
//!
//! All of this reproduces the dense engine's measurements *bit for bit*
//! (including which error fires first); the `engine_equivalence` proptest
//! suite pins that, for the collected and the streaming API both.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use super::{ClientReport, SimConfig, SimReport};
use crate::error::SimError;
use crate::metrics::{BandwidthProfile, ProfileBuilder};
use crate::schedule::{stream_schedule, ScheduleStream, StreamSpec};
use sm_core::{MergeForest, MergeTree, ReceivingProgram};

/// Whole-run aggregates of a streaming simulation (everything a
/// [`SimReport`] holds except the per-client vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingSummary {
    /// Server bandwidth at its change-points.
    pub bandwidth: BandwidthProfile,
    /// Total transmitted slot-units (`= Fcost`).
    pub total_units: i64,
    /// Number of clients served (and emitted).
    pub clients: usize,
}

/// Runs the event engine and collects a full [`SimReport`].
pub(super) fn run(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    let mut clients = Vec::with_capacity(times.len());
    match simulate_streaming_slice(forest, times, media_len, config, |r| clients.push(r)) {
        Ok(summary) => {
            // Deadline order equals arrival-index order for sorted times;
            // sort to guarantee index order for the report regardless.
            clients.sort_unstable_by_key(|r| r.client);
            Ok(SimReport {
                bandwidth: summary.bandwidth,
                total_units: summary.total_units,
                clients,
            })
        }
        Err(streaming_err) => {
            // The stream fails at the earliest part-deadline violation; the
            // dense engine reports the lowest-*index* violation. Those only
            // differ when arrival times are not globally nondecreasing —
            // replay client checks in index order so the reported error is
            // identical either way. Error path only: no cost on success.
            let specs = stream_schedule(forest, times, media_len)?;
            let mut scratch = EvalScratch::default();
            for (range, tree) in forest.iter_with_ranges() {
                let base = range.start;
                let local_times = &times[range.clone()];
                let local_specs = &specs[range];
                for local in 0..tree.len() {
                    eval_client(
                        tree,
                        local_times,
                        local_specs,
                        media_len,
                        base,
                        local,
                        config,
                        &mut scratch,
                    )?;
                }
            }
            Err(streaming_err)
        }
    }
}

/// One client arrival — the unit the streaming API ingests.
///
/// Thin today (a slot time), but a named type so arrival sources (slices,
/// generators, sockets) and the engine agree on a vocabulary that can grow
/// fields without breaking every `IntoIterator` in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arrival {
    /// Arrival slot.
    pub time: i64,
}

impl From<i64> for Arrival {
    fn from(time: i64) -> Self {
        Self { time }
    }
}

/// Event-driven simulation with streaming per-client reports, fed by any
/// arrival source (`Vec`, generator adaptors, a live ingest queue — no
/// pre-materialized slice required; `(0..n).map(Arrival::from)` works).
///
/// `emit` is called once per client, in part-deadline order (`t_c + L`,
/// ties by arrival index), as soon as the client's program completes —
/// nothing per-client is retained afterwards. For nondecreasing arrival
/// times (the model's canonical form) the schedule itself is pulled lazily
/// tree-by-tree and each tree is dropped once its last client is served, so
/// peak memory tracks the *active* trees and streams rather than the whole
/// arrival sequence. `config.buffer_bound` is honored; `config.engine` is
/// ignored (this *is* the event engine).
///
/// Returns the whole-run aggregates; fails at the first violating
/// *part-deadline*. That is the same first error [`super::simulate_with`]
/// reports whenever arrival times are nondecreasing; on exotic unsorted
/// inputs (which take an eager, sort-based path) `simulate_with`
/// additionally replays the checks in arrival order to keep its error
/// identical to the dense engine's.
pub fn simulate_streaming<I, F>(
    forest: &MergeForest,
    arrivals: I,
    media_len: u64,
    config: SimConfig,
    mut emit: F,
) -> Result<StreamingSummary, SimError>
where
    I: IntoIterator<Item = Arrival>,
    F: FnMut(ClientReport),
{
    // The schedule needs random access to root-path times, so the source
    // is drained once into a times vector, checking sortedness on the fly
    // (no second pass, no caller-side materialization contract).
    let iter = arrivals.into_iter();
    let mut times = Vec::with_capacity(iter.size_hint().0);
    let mut sorted = true;
    for arrival in iter {
        sorted &= times.last().is_none_or(|&last| last <= arrival.time);
        times.push(arrival.time);
    }
    dispatch(forest, &times, sorted, media_len, config, &mut emit)
}

/// The batch-slice form of [`simulate_streaming`]: zero-copy over an
/// already-materialized times slice. Semantics are identical.
pub fn simulate_streaming_slice<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    mut emit: F,
) -> Result<StreamingSummary, SimError> {
    let sorted = times.windows(2).all(|w| w[0] <= w[1]);
    dispatch(forest, times, sorted, media_len, config, &mut emit)
}

/// Shared tail of the two streaming entry points.
fn dispatch<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    sorted: bool,
    media_len: u64,
    config: SimConfig,
    emit: &mut F,
) -> Result<StreamingSummary, SimError> {
    if times.len() != forest.total_arrivals() {
        return Err(SimError::Model(sm_core::ModelError::TimesLengthMismatch {
            nodes: forest.total_arrivals(),
            times: times.len(),
        }));
    }
    if sorted {
        streaming_lazy(forest, times, media_len, config, emit)
    } else {
        streaming_eager(forest, times, media_len, config, emit)
    }
}

/// One pulled tree, retained while any of its clients' deadlines are
/// pending.
struct RetainedTree {
    base: usize,
    specs: Vec<StreamSpec>,
    remaining: usize,
}

/// Lazily pulled schedule state for the sorted-arrivals streaming path.
///
/// Trees enter at the back when the start cursor (or a part-deadline)
/// reaches them and leave at the front when fully served; with sorted
/// times, starts are nondecreasing in global index order, so the cursor
/// `(cur_tree, cur_local)` never has to look behind the back tree.
struct LazySchedule<'a> {
    trees: ScheduleStream<'a>,
    retained: VecDeque<RetainedTree>,
    /// Trees already dropped from the front of `retained`.
    popped: usize,
    /// Global arrival index one past the last pulled tree.
    covered: usize,
    /// Start cursor: next spec to start, as (tree index, local index).
    cur_tree: usize,
    cur_local: usize,
    total_units: i64,
}

impl<'a> LazySchedule<'a> {
    fn new(trees: ScheduleStream<'a>) -> Self {
        Self {
            trees,
            retained: VecDeque::new(),
            popped: 0,
            covered: 0,
            cur_tree: 0,
            cur_local: 0,
            total_units: 0,
        }
    }

    fn pulled(&self) -> usize {
        self.popped + self.retained.len()
    }

    /// Pulls one more tree into retention; `false` when the forest is
    /// exhausted.
    fn pull(&mut self) -> bool {
        let Some(t) = self.trees.next() else {
            return false;
        };
        self.total_units += t.total_units();
        self.covered = t.base + t.specs.len();
        self.retained.push_back(RetainedTree {
            base: t.base,
            remaining: t.specs.len(),
            specs: t.specs,
        });
        true
    }

    /// Advances the start cursor to the next positive-length stream and
    /// returns its `(start, end)`, pulling trees as the cursor reaches
    /// them.
    fn peek_start(&mut self) -> Option<(i64, i64)> {
        loop {
            if self.cur_tree >= self.pulled() {
                if !self.pull() {
                    return None;
                }
                continue;
            }
            let t = &self.retained[self.cur_tree - self.popped];
            match t.specs.get(self.cur_local) {
                None => {
                    self.cur_tree += 1;
                    self.cur_local = 0;
                }
                Some(s) if s.length == 0 => self.cur_local += 1,
                Some(s) => return Some((s.start, s.end())),
            }
        }
    }

    /// Consumes the spec the last `peek_start` returned.
    fn take_start(&mut self) {
        self.cur_local += 1;
    }

    /// Guarantees the tree serving global arrival `g` has been pulled
    /// (needed only when a part-deadline fires before any stream of its
    /// tree starts, e.g. `media_len = 0`).
    fn ensure_pulled(&mut self, g: usize) {
        while self.covered <= g && self.pull() {}
    }

    /// Records that one client of tree `ti` was served; fully-served trees
    /// are dropped from the front.
    fn release(&mut self, ti: usize) {
        self.retained[ti - self.popped].remaining -= 1;
        while let Some(front) = self.retained.front() {
            if front.remaining > 0 {
                break;
            }
            // The cursor can never lag behind a fully-served tree: every
            // start of the tree precedes its last part-deadline.
            debug_assert!(self.cur_tree > self.popped || self.cur_local >= front.specs.len());
            if self.cur_tree == self.popped {
                self.cur_tree += 1;
                self.cur_local = 0;
            }
            self.retained.pop_front();
            self.popped += 1;
        }
    }
}

/// The lazy streaming path for nondecreasing arrival times: starts and
/// deadlines are plain cursors (both orders coincide with global index
/// order), the schedule is pulled and dropped tree-by-tree.
fn streaming_lazy<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    emit: &mut F,
) -> Result<StreamingSummary, SimError> {
    let mut sched = LazySchedule::new(ScheduleStream::new(forest, times, media_len)?);
    let media = media_len as i64; // validated by ScheduleStream::new

    let mut ends: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut active: u32 = 0;
    let mut profile = ProfileBuilder::new();
    let mut ci = 0usize; // deadline cursor: next client (deadlines sorted)
    let mut scratch = EvalScratch::default();

    loop {
        // Next event instant over the three sources.
        let mut next: Option<i64> = ends.peek().map(|&Reverse(t)| t);
        if let Some((start, _)) = sched.peek_start() {
            next = Some(next.map_or(start, |t| t.min(start)));
        }
        if let Some(&t_c) = times.get(ci) {
            let d = t_c + media;
            next = Some(next.map_or(d, |t| t.min(d)));
        }
        let Some(now) = next else { break };

        // Stream ends, then starts: the net count change at `now` is what
        // the sparse profile records (a back-to-back handoff is no change).
        let mut bandwidth_event = false;
        while ends.peek().is_some_and(|&Reverse(t)| t == now) {
            ends.pop();
            active -= 1;
            bandwidth_event = true;
        }
        while let Some((start, end)) = sched.peek_start() {
            if start != now {
                break;
            }
            ends.push(Reverse(end));
            active += 1;
            sched.take_start();
            bandwidth_event = true;
        }
        if bandwidth_event {
            profile.record(now, active);
        }

        // Client part-deadlines: the client's last part has played, so its
        // whole program is checkable; verify, emit, release the tree.
        while times.get(ci).is_some_and(|&t_c| t_c + media == now) {
            sched.ensure_pulled(ci);
            let (ti, local) = forest.locate(ci);
            let rt = &sched.retained[ti - sched.popped];
            let tree = &forest.trees()[ti];
            let local_times = &times[rt.base..rt.base + rt.specs.len()];
            emit(eval_client(
                tree,
                local_times,
                &rt.specs,
                media_len,
                rt.base,
                local,
                config,
                &mut scratch,
            )?);
            sched.release(ti);
            ci += 1;
        }
    }

    // Every tree serves at least one client, so by the last part-deadline
    // every tree has been pulled; drain defensively anyway so
    // `total_units` is complete on degenerate inputs.
    while sched.pull() {}

    Ok(StreamingSummary {
        bandwidth: profile.finish(),
        total_units: sched.total_units,
        clients: times.len(),
    })
}

/// The eager fallback for exotic inputs with globally unsorted arrival
/// times: materialize the whole schedule and sort the event sources.
fn streaming_eager<F: FnMut(ClientReport)>(
    forest: &MergeForest,
    times: &[i64],
    media_len: u64,
    config: SimConfig,
    emit: &mut F,
) -> Result<StreamingSummary, SimError> {
    let specs = stream_schedule(forest, times, media_len)?;
    let media = media_len as i64; // validated by stream_schedule
    let total_units: i64 = specs.iter().map(|s| s.length).sum();

    let mut starts: Vec<usize> = (0..specs.len()).filter(|&i| specs[i].length > 0).collect();
    starts.sort_by_key(|&i| specs[i].start);
    let mut deadlines: Vec<usize> = (0..times.len()).collect();
    deadlines.sort_by_key(|&c| times[c]);

    let mut ends: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut active: u32 = 0;
    let mut profile = ProfileBuilder::new();
    let mut si = 0usize; // cursor into `starts`
    let mut ci = 0usize; // cursor into `deadlines`
    let mut scratch = EvalScratch::default();

    loop {
        // Next event instant over the three sources.
        let mut next: Option<i64> = ends.peek().map(|&Reverse(t)| t);
        if let Some(&i) = starts.get(si) {
            next = Some(next.map_or(specs[i].start, |t| t.min(specs[i].start)));
        }
        if let Some(&c) = deadlines.get(ci) {
            let d = times[c] + media;
            next = Some(next.map_or(d, |t| t.min(d)));
        }
        let Some(now) = next else { break };

        // Stream ends, then starts: the net count change at `now` is what
        // the sparse profile records (a back-to-back handoff is no change).
        let mut bandwidth_event = false;
        while ends.peek().is_some_and(|&Reverse(t)| t == now) {
            ends.pop();
            active -= 1;
            bandwidth_event = true;
        }
        while starts.get(si).is_some_and(|&i| specs[i].start == now) {
            ends.push(Reverse(specs[starts[si]].end()));
            active += 1;
            si += 1;
            bandwidth_event = true;
        }
        if bandwidth_event {
            profile.record(now, active);
        }

        // Client part-deadlines: the client's last part has played, so its
        // whole program is checkable; verify and emit.
        while deadlines.get(ci).is_some_and(|&c| times[c] + media == now) {
            let c = deadlines[ci];
            ci += 1;
            let (ti, local) = forest.locate(c);
            let tree = &forest.trees()[ti];
            let base = forest.tree_start(ti);
            let local_times = &times[base..base + tree.len()];
            let local_specs = &specs[base..base + tree.len()];
            emit(eval_client(
                tree,
                local_times,
                local_specs,
                media_len,
                base,
                local,
                config,
                &mut scratch,
            )?);
        }
    }

    Ok(StreamingSummary {
        bandwidth: profile.finish(),
        total_units,
        clients: times.len(),
    })
}

/// Reusable per-client evaluation buffers: one allocation set for a whole
/// run instead of one per client (the constant factor that used to keep
/// deep-chain programs far slower than balanced ones). Shared with the
/// push-based [`super::incremental`] engine so both evaluate clients with
/// the very same code path.
#[derive(Debug)]
pub(super) struct EvalScratch {
    /// Receiving program, rebuilt in place per client.
    prog: ReceivingProgram,
    /// Inclusive receive-slot interval of each non-empty segment.
    intervals: Vec<(i64, i64)>,
    /// Interval start slots, sorted ascending.
    starts: Vec<i64>,
    /// `(hi + 1, lo)` exclusive-end pairs, sorted ascending.
    ends: Vec<(i64, i64)>,
}

impl Default for EvalScratch {
    fn default() -> Self {
        Self {
            prog: ReceivingProgram {
                client: 0,
                path: Vec::new(),
                segments: Vec::new(),
            },
            intervals: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
        }
    }
}

impl EvalScratch {
    /// Loads the sorted endpoint views of `intervals` (which are in
    /// part order — nearly sorted already, so the sorts are near-linear).
    fn load_endpoints(&mut self) {
        self.starts.clear();
        self.starts.extend(self.intervals.iter().map(|&(lo, _)| lo));
        self.starts.sort_unstable();
        self.ends.clear();
        self.ends
            .extend(self.intervals.iter().map(|&(lo, hi)| (hi + 1, lo)));
        self.ends.sort_unstable();
    }
}

/// Receive-two compliance over the sorted endpoints: one merged walk over
/// interval starts and ends reproduces exactly the change-points (and the
/// first violating slot) of the sparse reception profile the dense scan is
/// pinned against.
fn receive_two_sweep(scratch: &EvalScratch, global: usize) -> Result<usize, SimError> {
    let (starts, ends) = (&scratch.starts, &scratch.ends);
    let (mut si, mut ei) = (0usize, 0usize);
    let mut count = 0i64;
    let mut max_concurrent = 0usize;
    while si < starts.len() || ei < ends.len() {
        let slot = match (starts.get(si), ends.get(ei)) {
            (Some(&s), Some(&(e, _))) => s.min(e),
            (Some(&s), None) => s,
            (None, Some(&(e, _))) => e,
            // Unreachable (the loop condition keeps one side non-empty),
            // but exiting the loop is the honest fallback: the tail checks
            // still run and no panic surface is introduced.
            (None, None) => break,
        };
        let before = count;
        while ei < ends.len() && ends[ei].0 == slot {
            count -= 1;
            ei += 1;
        }
        while si < starts.len() && starts[si] == slot {
            count += 1;
            si += 1;
        }
        if count != before {
            if count > 2 {
                return Err(SimError::ReceiveTwoViolation {
                    client: global,
                    slot,
                    count: count as usize,
                });
            }
            max_concurrent = max_concurrent.max(count as usize);
        }
    }
    Ok(max_concurrent)
}

/// Maximum of `received(τ) − played(τ)` over the playback window
/// `[t_c, t_c + L]` in one merged sweep over the sorted interval endpoints.
///
/// `received(τ) = Σ clamp(τ − lo, 0, hi − lo + 1)` is piecewise linear with
/// kinks only at `lo` and `hi + 1`, so its maximum over the window is
/// attained at one of the clamped kinks or the window bounds — exactly the
/// candidate set the former quadratic evaluator probed, now each evaluated
/// in O(1) from a running `(open streams, Σ open starts, finished parts)`
/// prefix instead of an O(segments) re-sum. Candidates are generated by
/// merging the two sorted endpoint arrays on the fly (clamping is
/// monotone), so no candidate buffer is materialized or sorted.
fn max_buffer_sweep(scratch: &EvalScratch, t_c: i64, media: i64) -> i64 {
    let window_end = t_c + media;
    let (starts, ends) = (&scratch.starts, &scratch.ends);

    let (mut si, mut ei) = (0usize, 0usize); // prefix state over raw slots
    let mut open_count = 0i64; // segments with lo < τ ≤ hi + 1
    let mut open_lo_sum = 0i64;
    let mut done_parts = 0i64; // full lengths of segments with hi + 1 ≤ τ
    let mut max_buffer = 0i64;

    let (mut cs, mut ce) = (0usize, 0usize); // candidate-generation cursors
    let mut before_window = true; // τ = t_c not yet evaluated
    let mut after_window = false; // τ = window_end evaluated
    loop {
        let tau = if before_window {
            before_window = false;
            t_c
        } else {
            match (starts.get(cs), ends.get(ce)) {
                (Some(&lo), Some(&(end, _))) if lo <= end => {
                    cs += 1;
                    lo.clamp(t_c, window_end)
                }
                (Some(&lo), None) => {
                    cs += 1;
                    lo.clamp(t_c, window_end)
                }
                (_, Some(&(end, _))) => {
                    ce += 1;
                    end.clamp(t_c, window_end)
                }
                (None, None) if !after_window => {
                    after_window = true;
                    window_end
                }
                (None, None) => break,
            }
        };
        while si < starts.len() && starts[si] < tau {
            open_count += 1;
            open_lo_sum += starts[si];
            si += 1;
        }
        while ei < ends.len() && ends[ei].0 <= tau {
            open_count -= 1;
            open_lo_sum -= ends[ei].1;
            done_parts += ends[ei].0 - ends[ei].1;
            ei += 1;
        }
        let received = open_count * tau - open_lo_sum + done_parts;
        max_buffer = max_buffer.max(received - (tau - t_c).clamp(0, media));
    }
    max_buffer
}

/// Checks one client's program against its tree's schedule and measures it,
/// in `O(segments log segments)` arithmetic — no per-slot state. Also the
/// evaluator of the push-based [`super::incremental`] engine (same code
/// path, so the two engines cannot drift apart on per-client semantics).
#[allow(clippy::too_many_arguments)] // tree-local slices + scratch, all hot
pub(super) fn eval_client(
    tree: &MergeTree,
    local_times: &[i64],
    local_specs: &[StreamSpec],
    media_len: u64,
    base: usize,
    local: usize,
    config: SimConfig,
    scratch: &mut EvalScratch,
) -> Result<ClientReport, SimError> {
    let media = media_len as i64;
    let t_c = local_times[local];
    let global = base + local;

    scratch.prog.rebuild(tree, local_times, media_len, local);
    scratch
        .prog
        .verify(local_times, media_len)
        .map_err(SimError::Model)?;

    // Per-segment closed forms. `scratch.intervals` collects the inclusive
    // receive-slot interval of each non-empty segment.
    let mut min_slack = i64::MAX;
    scratch.intervals.clear();
    for seg in &scratch.prog.segments {
        if seg.is_empty() {
            continue;
        }
        let spec = &local_specs[seg.stream];
        // Mirrors the dense per-part loop's error precedence: for each part
        // in order, "stream too short" is checked before "stall", so the
        // first failing part decides the variant.
        if seg.first_part > spec.length {
            return Err(SimError::StreamTooShort {
                client: global,
                stream: base + seg.stream,
                part: seg.first_part,
                length: spec.length,
            });
        }
        if spec.start > t_c {
            return Err(SimError::Stall {
                client: global,
                part: seg.first_part,
                received: spec.start + seg.first_part - 1,
                deadline: t_c + seg.first_part - 1,
            });
        }
        if seg.last_part > spec.length {
            return Err(SimError::StreamTooShort {
                client: global,
                stream: base + seg.stream,
                part: spec.length + 1,
                length: spec.length,
            });
        }
        // Part q arrives at the end of slot t_j + q − 1 and plays in slot
        // t_c + q − 1: slack is t_c − t_j for every part of the segment.
        min_slack = min_slack.min(t_c - spec.start);
        scratch.intervals.push((
            spec.start + seg.first_part - 1,
            spec.start + seg.last_part - 1,
        ));
    }
    scratch.load_endpoints();

    // Receive-two: segment intervals may overlap at most pairwise. The
    // client's reception coverage only changes at interval endpoints, so
    // the first endpoint whose net coverage exceeds 2 is exactly the slot
    // the dense scan reports.
    let max_concurrent = receive_two_sweep(scratch, global)?;

    // Buffer occupancy: received(τ) − played(τ), maximized over the
    // playback window by the endpoint sweep. A part received in slot τ′ is
    // *in hand* from τ′ + 1 on, so a segment over receive slots [lo, hi]
    // has contributed clamp(τ − lo, 0, hi − lo + 1) parts by instant τ.
    let max_buffer = max_buffer_sweep(scratch, t_c, media);

    if let Some(bound) = config.buffer_bound {
        if max_buffer > bound as i64 {
            return Err(SimError::BufferOverflow {
                client: global,
                needed: max_buffer,
                bound,
            });
        }
    }
    Ok(ClientReport {
        client: global,
        max_buffer,
        max_concurrent,
        min_slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::consecutive_slots;

    /// Quadratic reference for the endpoint sweep: evaluate occupancy at
    /// every candidate by re-summing all segments.
    fn max_buffer_quadratic(intervals: &[(i64, i64)], t_c: i64, media: i64) -> i64 {
        let occupancy = |tau: i64| -> i64 {
            let received: i64 = intervals
                .iter()
                .map(|&(lo, hi)| (tau - lo).clamp(0, hi - lo + 1))
                .sum();
            received - (tau - t_c).clamp(0, media)
        };
        let clamp_window = |tau: i64| tau.clamp(t_c, t_c + media);
        let mut max_buffer = 0i64;
        for &(lo, hi) in intervals {
            max_buffer = max_buffer.max(occupancy(clamp_window(lo)));
            max_buffer = max_buffer.max(occupancy(clamp_window(hi + 1)));
        }
        max_buffer.max(occupancy(t_c)).max(occupancy(t_c + media))
    }

    fn sweep_with(intervals: &[(i64, i64)], t_c: i64, media: i64) -> i64 {
        let mut scratch = EvalScratch::default();
        scratch.intervals.extend_from_slice(intervals);
        scratch.load_endpoints();
        max_buffer_sweep(&scratch, t_c, media)
    }

    #[test]
    fn sweep_matches_quadratic_reference() {
        // Deterministic pseudo-random interval sets, including overlapping,
        // nested, touching, and out-of-window segments.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let t_c = (next() % 50) as i64 - 25;
            let media = (next() % 40) as i64;
            let n = (case % 7) as usize;
            let intervals: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let lo = t_c - 10 + (next() % 40) as i64;
                    let len = (next() % 12) as i64;
                    (lo, lo + len)
                })
                .collect();
            assert_eq!(
                sweep_with(&intervals, t_c, media),
                max_buffer_quadratic(&intervals, t_c, media),
                "case {case}: t_c={t_c} media={media} intervals={intervals:?}"
            );
        }
    }

    #[test]
    fn receive_two_sweep_matches_sparse_profile() {
        // Same randomized interval sets: the merged endpoint walk must see
        // exactly the change-points (and max) of the sparse profile.
        let mut state = 0x1319_8A2E_0370_7344u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let n = (case % 6) as usize;
            let intervals: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let lo = (next() % 30) as i64;
                    (lo, lo + (next() % 10) as i64)
                })
                .collect();
            let mut scratch = EvalScratch::default();
            scratch.intervals.extend_from_slice(&intervals);
            scratch.load_endpoints();
            let swept = receive_two_sweep(&scratch, 7);
            let profile =
                BandwidthProfile::from_intervals(intervals.iter().map(|&(lo, hi)| (lo, hi + 1)));
            let reference = profile
                .change_points()
                .iter()
                .find(|&&(_, count)| count > 2)
                .map(|&(slot, count)| SimError::ReceiveTwoViolation {
                    client: 7,
                    slot,
                    count: count as usize,
                });
            match reference {
                Some(err) => assert_eq!(swept.unwrap_err(), err, "case {case}"),
                None => assert_eq!(swept.unwrap() as u32, profile.peak(), "case {case}"),
            }
        }
    }

    #[test]
    fn sweep_on_no_intervals_is_zero() {
        assert_eq!(sweep_with(&[], 5, 10), 0);
        assert_eq!(sweep_with(&[], 0, 0), 0);
    }

    #[test]
    fn lazy_streaming_retains_only_open_trees() {
        // Singleton trees at widely spaced times: while tree k plays, trees
        // k+2.. have not been pulled and trees ..k−1 have been dropped, so
        // retention stays at the one-open-tree + one-lookahead bound.
        let n = 64usize;
        let media = 5u64;
        let trees = vec![MergeTree::singleton(); n];
        let forest = MergeForest::from_trees(trees).unwrap();
        let times: Vec<i64> = (0..n as i64).map(|i| i * 100).collect();
        let mut served = 0usize;
        let summary = simulate_streaming_slice(&forest, &times, media, SimConfig::events(), |r| {
            assert_eq!(r.client, served, "deadline order is arrival order");
            served += 1;
        })
        .unwrap();
        assert_eq!(served, n);
        assert_eq!(summary.total_units, n as i64 * media as i64);
        assert_eq!(summary.bandwidth.peak(), 1);
    }

    #[test]
    fn deep_chain_tree_streams_cleanly() {
        // One maximal-depth feasible chain: L ≥ 2(c − 1) with consecutive
        // arrivals. Exercises the sweep on many-segment programs.
        let media = 60u64;
        let c = (media / 2 + 1) as usize;
        let forest = MergeForest::single(MergeTree::chain(c));
        let times = consecutive_slots(c);
        let mut reports = Vec::new();
        // The iterator entry point, exercised over a generator source.
        let summary = simulate_streaming(
            &forest,
            times.iter().copied().map(Arrival::from),
            media,
            SimConfig::events(),
            |r| reports.push(r),
        )
        .unwrap();
        assert_eq!(reports.len(), c);
        assert_eq!(
            summary.total_units,
            sm_core::full_cost(&forest, &times, media)
        );
        for r in &reports {
            assert!(r.max_concurrent <= 2);
        }
    }
}
