//! Server bandwidth metering.

use crate::schedule::StreamSpec;

/// Per-slot count of concurrently transmitting streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandwidthProfile {
    /// First slot covered.
    pub origin: i64,
    /// `counts[i]` = streams live during slot `origin + i`.
    pub counts: Vec<u32>,
}

impl BandwidthProfile {
    /// Sweeps the schedule into a per-slot profile.
    pub fn from_streams(specs: &[StreamSpec]) -> Self {
        if specs.is_empty() {
            return Self {
                origin: 0,
                counts: Vec::new(),
            };
        }
        let origin = specs.iter().map(|s| s.start).min().unwrap();
        let end = specs.iter().map(StreamSpec::end).max().unwrap();
        let mut delta = vec![0i32; (end - origin + 1) as usize];
        for s in specs {
            if s.length <= 0 {
                continue;
            }
            delta[(s.start - origin) as usize] += 1;
            delta[(s.end() - origin) as usize] -= 1;
        }
        let mut counts = Vec::with_capacity(delta.len().saturating_sub(1));
        let mut cur = 0i32;
        for d in &delta[..delta.len() - 1] {
            cur += d;
            counts.push(cur as u32);
        }
        Self { origin, counts }
    }

    /// Peak concurrent streams (the "maximum bandwidth" of §5's discussion).
    pub fn peak(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Total transmitted slot-units (`= Fcost`).
    pub fn total_units(&self) -> i64 {
        self.counts.iter().map(|&c| c as i64).sum()
    }

    /// Average bandwidth over the active horizon, in streams.
    pub fn average(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total_units() as f64 / self.counts.len() as f64
    }

    /// Bandwidth during a specific slot.
    pub fn at(&self, slot: i64) -> u32 {
        if slot < self.origin {
            return 0;
        }
        self.counts
            .get((slot - self.origin) as usize)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(node: usize, start: i64, length: i64) -> StreamSpec {
        StreamSpec {
            node,
            start,
            length,
        }
    }

    #[test]
    fn empty_profile() {
        let p = BandwidthProfile::from_streams(&[]);
        assert_eq!(p.peak(), 0);
        assert_eq!(p.total_units(), 0);
        assert_eq!(p.average(), 0.0);
    }

    #[test]
    fn single_stream() {
        let p = BandwidthProfile::from_streams(&[spec(0, 3, 4)]);
        assert_eq!(p.origin, 3);
        assert_eq!(p.counts, vec![1, 1, 1, 1]);
        assert_eq!(p.peak(), 1);
        assert_eq!(p.total_units(), 4);
        assert_eq!(p.at(3), 1);
        assert_eq!(p.at(7), 0);
        assert_eq!(p.at(0), 0);
    }

    #[test]
    fn overlapping_streams() {
        let p = BandwidthProfile::from_streams(&[spec(0, 0, 5), spec(1, 2, 2), spec(2, 4, 3)]);
        assert_eq!(p.counts, vec![1, 1, 2, 2, 2, 1, 1]);
        assert_eq!(p.peak(), 2);
        assert_eq!(p.total_units(), 10);
    }

    #[test]
    fn zero_length_streams_ignored() {
        let p = BandwidthProfile::from_streams(&[spec(0, 0, 3), spec(1, 1, 0)]);
        assert_eq!(p.total_units(), 3);
    }
}
