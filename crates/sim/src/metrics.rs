//! Server bandwidth metering with sparse (difference-array) accounting.
//!
//! A schedule over a long horizon is mostly *quiet*: the number of
//! concurrently transmitting streams changes only when a stream starts or
//! ends, so a profile over `span` slots carrying `m` streams has at most
//! `2m` distinct values. [`BandwidthProfile`] therefore stores only the
//! change-points `(slot, count)` instead of one counter per slot — memory is
//! `O(streams)`, independent of the schedule span, which is what lets the
//! event-driven engine meter million-arrival horizons without materializing
//! them.

use crate::schedule::StreamSpec;

/// Piecewise-constant count of concurrently transmitting streams.
///
/// Stored sparsely as change-points: `changes[i] = (slot, count)` means
/// `count` streams are live from `slot` (inclusive) until the next
/// change-point. Slots are strictly increasing, consecutive counts always
/// differ, and the final entry has count 0 (every stream ends), so the
/// covered extent is `[origin(), end())`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BandwidthProfile {
    changes: Vec<(i64, u32)>,
}

impl BandwidthProfile {
    /// Sweeps the schedule into a sparse profile. Zero-length streams carry
    /// no bandwidth and are ignored entirely (they do not extend the span).
    pub fn from_streams(specs: &[StreamSpec]) -> Self {
        Self::from_intervals(
            specs
                .iter()
                .filter(|s| s.length > 0)
                .map(|s| (s.start, s.end())),
        )
    }

    /// Builds the profile of arbitrary half-open `[start, end)` intervals
    /// (one unit of bandwidth each). Empty intervals (`end <= start`) are
    /// ignored.
    pub fn from_intervals(intervals: impl IntoIterator<Item = (i64, i64)>) -> Self {
        let mut deltas: Vec<(i64, i32)> = Vec::new();
        for (start, end) in intervals {
            if end > start {
                deltas.push((start, 1));
                deltas.push((end, -1));
            }
        }
        deltas.sort_unstable();
        let mut changes: Vec<(i64, u32)> = Vec::new();
        let mut cur = 0i64;
        let mut i = 0usize;
        while i < deltas.len() {
            let slot = deltas[i].0;
            let before = cur;
            while i < deltas.len() && deltas[i].0 == slot {
                cur += deltas[i].1 as i64;
                i += 1;
            }
            if cur != before {
                // sm-lint: allow(narrowing-cast) — cur counts concurrently transmitting streams, one per schedule entry, and never goes negative on valid schedules
                changes.push((slot, cur as u32));
            }
        }
        Self { changes }
    }

    /// `true` iff no stream ever transmits.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// First covered slot (0 for an empty profile).
    pub fn origin(&self) -> i64 {
        self.changes.first().map_or(0, |&(s, _)| s)
    }

    /// One past the last covered slot (0 for an empty profile).
    pub fn end(&self) -> i64 {
        self.changes.last().map_or(0, |&(s, _)| s)
    }

    /// Number of slots in the covered extent `[origin(), end())`.
    pub fn span(&self) -> u64 {
        (self.end() - self.origin()) as u64
    }

    /// The change-points `(slot, count)`: strictly increasing slots, each
    /// count holding until the next entry, final count always 0.
    pub fn change_points(&self) -> &[(i64, u32)] {
        &self.changes
    }

    /// Peak concurrent streams (the "maximum bandwidth" of §5's discussion).
    pub fn peak(&self) -> u32 {
        self.changes.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Total transmitted slot-units (`= Fcost`).
    pub fn total_units(&self) -> i64 {
        self.changes
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * w[0].1 as i64)
            .sum()
    }

    /// Average bandwidth over the active extent, in streams.
    pub fn average(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.total_units() as f64 / self.span() as f64
    }

    /// Bandwidth during a specific slot (0 outside the covered extent).
    pub fn at(&self, slot: i64) -> u32 {
        let idx = self.changes.partition_point(|&(s, _)| s <= slot);
        if idx == 0 {
            return 0;
        }
        self.changes[idx - 1].1
    }

    /// Materializes the dense per-slot counts of `[lo, hi)` — the window
    /// view legacy callers (steady-state metering, periodic profiles) need.
    /// Slots outside the covered extent read as 0.
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn window(&self, lo: i64, hi: i64) -> Vec<u32> {
        assert!(hi >= lo, "window bounds out of order: [{lo}, {hi})");
        let mut out = Vec::with_capacity((hi - lo) as usize);
        let mut idx = self.changes.partition_point(|&(s, _)| s <= lo);
        let mut cur = if idx == 0 { 0 } else { self.changes[idx - 1].1 };
        for slot in lo..hi {
            while idx < self.changes.len() && self.changes[idx].0 <= slot {
                cur = self.changes[idx].1;
                idx += 1;
            }
            out.push(cur);
        }
        out
    }
}

/// Incremental builder used by the event-driven engine: feed `(slot, count)`
/// observations in nondecreasing slot order; only actual changes are stored,
/// so the result is identical to [`BandwidthProfile::from_intervals`] over
/// the same stream intervals.
#[derive(Debug, Default)]
pub(crate) struct ProfileBuilder {
    changes: Vec<(i64, u32)>,
    cur: u32,
}

impl ProfileBuilder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records that `count` streams are live from `slot` on.
    pub(crate) fn record(&mut self, slot: i64, count: u32) {
        if count != self.cur {
            debug_assert!(self.changes.last().is_none_or(|&(s, _)| s < slot));
            self.changes.push((slot, count));
            self.cur = count;
        }
    }

    pub(crate) fn finish(self) -> BandwidthProfile {
        debug_assert_eq!(self.cur, 0, "profile must close with all streams ended");
        BandwidthProfile {
            changes: self.changes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(node: usize, start: i64, length: i64) -> StreamSpec {
        StreamSpec {
            node,
            start,
            length,
        }
    }

    #[test]
    fn empty_profile() {
        let p = BandwidthProfile::from_streams(&[]);
        assert!(p.is_empty());
        assert_eq!(p.peak(), 0);
        assert_eq!(p.total_units(), 0);
        assert_eq!(p.average(), 0.0);
        assert_eq!(p.span(), 0);
        assert_eq!(p.change_points(), &[]);
    }

    #[test]
    fn single_stream() {
        let p = BandwidthProfile::from_streams(&[spec(0, 3, 4)]);
        assert_eq!(p.origin(), 3);
        assert_eq!(p.end(), 7);
        assert_eq!(p.span(), 4);
        assert_eq!(p.change_points(), &[(3, 1), (7, 0)]);
        assert_eq!(p.window(3, 7), vec![1, 1, 1, 1]);
        assert_eq!(p.peak(), 1);
        assert_eq!(p.total_units(), 4);
        assert_eq!(p.at(3), 1);
        assert_eq!(p.at(7), 0);
        assert_eq!(p.at(0), 0);
    }

    #[test]
    fn overlapping_streams() {
        let p = BandwidthProfile::from_streams(&[spec(0, 0, 5), spec(1, 2, 2), spec(2, 4, 3)]);
        assert_eq!(p.window(0, 7), vec![1, 1, 2, 2, 2, 1, 1]);
        assert_eq!(p.change_points(), &[(0, 1), (2, 2), (5, 1), (7, 0)]);
        assert_eq!(p.peak(), 2);
        assert_eq!(p.total_units(), 10);
    }

    #[test]
    fn zero_length_streams_ignored() {
        let p = BandwidthProfile::from_streams(&[spec(0, 0, 3), spec(1, 1, 0)]);
        assert_eq!(p.total_units(), 3);
        assert_eq!(p.span(), 3);
    }

    #[test]
    fn back_to_back_streams_coalesce() {
        // One ends exactly where the next starts: no change-point between.
        let p = BandwidthProfile::from_streams(&[spec(0, 0, 4), spec(1, 4, 4)]);
        assert_eq!(p.change_points(), &[(0, 1), (8, 0)]);
        assert_eq!(p.total_units(), 8);
    }

    #[test]
    fn window_extends_past_extent_with_zeros() {
        let p = BandwidthProfile::from_streams(&[spec(0, 2, 2)]);
        assert_eq!(p.window(0, 6), vec![0, 0, 1, 1, 0, 0]);
        assert_eq!(p.window(3, 3), Vec::<u32>::new());
    }

    #[test]
    fn from_intervals_matches_from_streams() {
        let specs = [spec(0, -3, 7), spec(1, 0, 2), spec(2, 1, 9)];
        let a = BandwidthProfile::from_streams(&specs);
        let b = BandwidthProfile::from_intervals(specs.iter().map(|s| (s.start, s.end())));
        assert_eq!(a, b);
    }

    #[test]
    fn builder_matches_batch_construction() {
        // Feed the sweep of [0,5), [2,4), [4,7) manually.
        let mut b = ProfileBuilder::new();
        b.record(0, 1);
        b.record(2, 2);
        b.record(4, 2); // end of one, start of another: no change
        b.record(5, 1);
        b.record(7, 0);
        let built = b.finish();
        let swept = BandwidthProfile::from_intervals([(0, 5), (2, 4), (4, 7)]);
        assert_eq!(built, swept);
    }
}
