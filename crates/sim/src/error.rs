//! Simulator failure modes.

use std::fmt;

/// Everything that can go wrong while executing a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The forest/times/media combination is malformed at the model level.
    Model(sm_core::ModelError),
    /// A client's program asks stream `stream` for part `part`, but the
    /// stream is only `length` parts long — the broadcast schedule and the
    /// receiving program disagree.
    StreamTooShort {
        client: usize,
        stream: usize,
        part: i64,
        length: i64,
    },
    /// Part `part` reaches client `client` in slot `received`, after its
    /// playback slot `deadline` — a playback stall.
    Stall {
        client: usize,
        part: i64,
        received: i64,
        deadline: i64,
    },
    /// Client `client` would receive `count` streams simultaneously in slot
    /// `slot` (receive-two allows 2).
    ReceiveTwoViolation {
        client: usize,
        slot: i64,
        count: usize,
    },
    /// Client `client` needs `needed` buffered parts, over the bound.
    BufferOverflow {
        client: usize,
        needed: i64,
        bound: u64,
    },
    /// `media_len` does not fit the signed slot arithmetic (`i64`); the
    /// schedule cannot be represented without wrapping.
    MediaLenOverflow {
        /// The offending media length.
        media_len: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::StreamTooShort {
                client,
                stream,
                part,
                length,
            } => write!(
                f,
                "client {client} needs part {part} from stream {stream}, which has only {length} parts"
            ),
            Self::Stall {
                client,
                part,
                received,
                deadline,
            } => write!(
                f,
                "client {client} stalls: part {part} arrives in slot {received}, playback slot is {deadline}"
            ),
            Self::ReceiveTwoViolation {
                client,
                slot,
                count,
            } => write!(
                f,
                "client {client} would receive {count} streams in slot {slot}"
            ),
            Self::BufferOverflow {
                client,
                needed,
                bound,
            } => write!(
                f,
                "client {client} needs {needed} buffered parts, bound is {bound}"
            ),
            Self::MediaLenOverflow { media_len } => write!(
                f,
                "media length {media_len} exceeds the representable slot range (i64)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<sm_core::ModelError> for SimError {
    fn from(e: sm_core::ModelError) -> Self {
        Self::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errs: Vec<SimError> = vec![
            SimError::Model(sm_core::ModelError::EmptyTree),
            SimError::Stall {
                client: 3,
                part: 7,
                received: 12,
                deadline: 9,
            },
            SimError::StreamTooShort {
                client: 1,
                stream: 0,
                part: 16,
                length: 15,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
