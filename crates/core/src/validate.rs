//! Solution feasibility checks.
//!
//! A merge tree is *structurally* valid by construction; these helpers check
//! the model-level feasibility conditions the paper states:
//!
//! * the root stream can serve its last client: `z − r ≤ L − 1` (§2,
//!   "Length of streams");
//! * no stream would have to broadcast past the end of the media:
//!   `ℓ(x) ≤ L` (implicit in streams being prefixes of the media);
//! * optionally, the preorder-traversal property (all *optimal* trees have
//!   it);
//! * optionally, a client buffer bound `B` (§3.3, Lemma 15).

use crate::cost::lengths;
use crate::error::ModelError;
use crate::forest::MergeForest;
use crate::time::{is_strictly_increasing, TimeScalar};
use crate::tree::MergeTree;

/// What to check beyond the basic span/length feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValidationOptions {
    /// Require the preorder-traversal property.
    pub require_preorder: bool,
    /// Client buffer bound `B` in parts (`None` = unbounded).
    pub buffer_bound: Option<u64>,
}

/// Validates a single tree over `times` against media length `media_len`.
pub fn validate_tree<T: TimeScalar>(
    tree: &MergeTree,
    times: &[T],
    media_len: u64,
    opts: ValidationOptions,
) -> Result<(), ModelError> {
    if times.len() != tree.len() {
        return Err(ModelError::TimesLengthMismatch {
            nodes: tree.len(),
            times: times.len(),
        });
    }
    if !is_strictly_increasing(times) {
        return Err(ModelError::TimesNotSorted);
    }
    if opts.require_preorder {
        tree.check_preorder_property()?;
    }
    let media = T::from_slots(media_len);
    let one = T::from_slots(1);
    // Span: z − r ≤ L − 1 so the last client still catches the root stream.
    let span = times[tree.last_arrival()] - times[0];
    // NaN-safe: an incomparable (NaN) span must *fail* validation, so the
    // negated comparison is deliberate.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(span + one <= media) {
        return Err(ModelError::SpanExceedsStream {
            root: 0,
            last: tree.last_arrival(),
        });
    }
    // Every non-root stream is a prefix of the media: ℓ(x) ≤ L.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail validation
    for (x, len) in lengths(tree, times).into_iter().enumerate().skip(1) {
        if !(len <= media) {
            return Err(ModelError::LengthExceedsMedia { node: x });
        }
    }
    if let Some(bound) = opts.buffer_bound {
        // Lemma 15: b(x) = min(x − r, L − (x − r)).
        for x in 1..tree.len() {
            let d = (times[x] - times[0]).to_f64();
            let b = d.min(media_len as f64 - d);
            if b > bound as f64 {
                return Err(ModelError::BufferExceeded {
                    node: x,
                    needed: b.ceil() as u64,
                    bound,
                });
            }
        }
    }
    Ok(())
}

/// Validates every tree of a forest (slicing `times` per tree).
pub fn validate_forest<T: TimeScalar>(
    forest: &MergeForest,
    times: &[T],
    media_len: u64,
    opts: ValidationOptions,
) -> Result<(), ModelError> {
    if times.len() != forest.total_arrivals() {
        return Err(ModelError::TimesLengthMismatch {
            nodes: forest.total_arrivals(),
            times: times.len(),
        });
    }
    for (range, tree) in forest.iter_with_ranges() {
        validate_tree(tree, &times[range], media_len, opts)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::consecutive_slots;

    fn fig4() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn fig4_valid_for_l15() {
        let t = fig4();
        let times = consecutive_slots(8);
        validate_tree(&t, &times, 15, ValidationOptions::default()).unwrap();
        validate_tree(
            &t,
            &times,
            15,
            ValidationOptions {
                require_preorder: true,
                buffer_bound: Some(7),
            },
        )
        .unwrap();
    }

    #[test]
    fn span_violation_detected() {
        let t = fig4();
        let times = consecutive_slots(8);
        // L = 7: last arrival 7 > L - 1 = 6 slots from the root.
        let err = validate_tree(&t, &times, 7, ValidationOptions::default()).unwrap_err();
        assert_eq!(err, ModelError::SpanExceedsStream { root: 0, last: 7 });
    }

    #[test]
    fn length_violation_detected() {
        // Chain over 0..5 with L = 8: span ok (5 <= 7) but ℓ(1) = 2·5−1−0 = 9 > 8.
        let t = MergeTree::chain(6);
        let times = consecutive_slots(6);
        let err = validate_tree(&t, &times, 8, ValidationOptions::default()).unwrap_err();
        assert_eq!(err, ModelError::LengthExceedsMedia { node: 1 });
    }

    #[test]
    fn buffer_bound_enforced() {
        let t = fig4();
        let times = consecutive_slots(8);
        let err = validate_tree(
            &t,
            &times,
            15,
            ValidationOptions {
                require_preorder: false,
                buffer_bound: Some(3),
            },
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::BufferExceeded { node: 4, .. }));
    }

    #[test]
    fn unsorted_times_detected() {
        let t = MergeTree::chain(3);
        let err = validate_tree(&t, &[0i64, 2, 2], 15, ValidationOptions::default()).unwrap_err();
        assert_eq!(err, ModelError::TimesNotSorted);
    }

    #[test]
    fn preorder_requirement() {
        let t = MergeTree::from_parents(&[None, Some(0), Some(0), Some(1)]).unwrap();
        let times = consecutive_slots(4);
        assert!(validate_tree(&t, &times, 15, ValidationOptions::default()).is_ok());
        let err = validate_tree(
            &t,
            &times,
            15,
            ValidationOptions {
                require_preorder: true,
                buffer_bound: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::PreorderViolation { .. }));
    }

    #[test]
    fn forest_validation_slices_times() {
        let f = MergeForest::from_trees(vec![fig4(), MergeTree::star(4)]).unwrap();
        let times = consecutive_slots(12);
        validate_forest(&f, &times, 15, ValidationOptions::default()).unwrap();
    }

    #[test]
    fn continuous_times_validate() {
        let t = MergeTree::star(3);
        let times = [0.0f64, 0.25, 1.5];
        validate_tree(&t, &times, 4, ValidationOptions::default()).unwrap();
        // Span 1.5 > L - 1 = 0: invalid for L = 1.
        assert!(validate_tree(&t, &times, 1, ValidationOptions::default()).is_err());
    }
}
