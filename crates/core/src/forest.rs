//! Merge forests: a solution for an arrival sequence is a sequence of merge
//! trees tiling the arrivals left to right (§2, "Merge trees": all arrival
//! times in one tree precede all arrival times in the successive tree).

use std::ops::Range;

use crate::error::ModelError;
use crate::tree::MergeTree;

/// An ordered sequence of [`MergeTree`]s partitioning the arrival sequence
/// into contiguous blocks. Tree `i` covers global arrivals
/// `starts[i] .. starts[i] + trees[i].len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeForest {
    trees: Vec<MergeTree>,
    starts: Vec<usize>,
    total: usize,
}

impl MergeForest {
    /// Builds a forest from trees laid out consecutively.
    ///
    /// Returns an error if `trees` is empty (a forest serves at least one
    /// arrival).
    pub fn from_trees(trees: Vec<MergeTree>) -> Result<Self, ModelError> {
        if trees.is_empty() {
            return Err(ModelError::EmptyTree);
        }
        let mut starts = Vec::with_capacity(trees.len());
        let mut total = 0usize;
        for t in &trees {
            starts.push(total);
            total += t.len();
        }
        Ok(Self {
            trees,
            starts,
            total,
        })
    }

    /// A forest consisting of a single tree.
    pub fn single(tree: MergeTree) -> Self {
        Self::from_trees(vec![tree]).expect("single tree is a valid forest")
    }

    /// The forest over zero arrivals: no trees, no clients, no streams.
    ///
    /// [`from_trees`](Self::from_trees) deliberately rejects an empty tree
    /// list (forgetting the trees is almost always a bug); the zero-arrival
    /// service plan — e.g. simulating an idle horizon — must be requested
    /// explicitly through this constructor.
    pub fn empty() -> Self {
        Self {
            trees: Vec::new(),
            starts: Vec::new(),
            total: 0,
        }
    }

    /// `true` iff the forest covers no arrivals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of trees (`s`, the number of full streams).
    #[inline]
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total number of arrivals covered.
    #[inline]
    pub fn total_arrivals(&self) -> usize {
        self.total
    }

    /// The trees in order.
    #[inline]
    pub fn trees(&self) -> &[MergeTree] {
        &self.trees
    }

    /// Global index of the first arrival of tree `i`.
    #[inline]
    pub fn tree_start(&self, i: usize) -> usize {
        self.starts[i]
    }

    /// Tree sizes in order (the paper's `p`/`p+1` balance shows up here).
    pub fn sizes(&self) -> Vec<usize> {
        self.trees.iter().map(|t| t.len()).collect()
    }

    /// Iterates `(global_range, tree)` pairs.
    pub fn iter_with_ranges(&self) -> impl Iterator<Item = (Range<usize>, &MergeTree)> {
        self.trees
            .iter()
            .zip(self.starts.iter())
            .map(|(t, &s)| (s..s + t.len(), t))
    }

    /// Locates the tree serving global arrival `g`; returns
    /// `(tree_index, local_index)`.
    ///
    /// # Panics
    /// Panics if `g >= total_arrivals()`.
    pub fn locate(&self, g: usize) -> (usize, usize) {
        assert!(g < self.total, "arrival {g} outside forest");
        let ti = match self.starts.binary_search(&g) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (ti, g - self.starts[ti])
    }

    /// Global indices of the roots (full-stream start slots).
    pub fn root_arrivals(&self) -> Vec<usize> {
        self.starts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tree_forest() -> MergeForest {
        let t1 = MergeTree::chain(3);
        let t2 = MergeTree::star(4);
        MergeForest::from_trees(vec![t1, t2]).unwrap()
    }

    #[test]
    fn empty_forest_rejected() {
        assert_eq!(
            MergeForest::from_trees(vec![]).unwrap_err(),
            ModelError::EmptyTree
        );
    }

    #[test]
    fn layout() {
        let f = two_tree_forest();
        assert_eq!(f.num_trees(), 2);
        assert_eq!(f.total_arrivals(), 7);
        assert_eq!(f.sizes(), vec![3, 4]);
        assert_eq!(f.root_arrivals(), vec![0, 3]);
        let ranges: Vec<_> = f.iter_with_ranges().map(|(r, _)| r).collect();
        assert_eq!(ranges, vec![0..3, 3..7]);
    }

    #[test]
    fn locate_maps_global_to_local() {
        let f = two_tree_forest();
        assert_eq!(f.locate(0), (0, 0));
        assert_eq!(f.locate(2), (0, 2));
        assert_eq!(f.locate(3), (1, 0));
        assert_eq!(f.locate(6), (1, 3));
    }

    #[test]
    #[should_panic]
    fn locate_out_of_range_panics() {
        let f = two_tree_forest();
        let _ = f.locate(7);
    }

    #[test]
    fn single_is_one_tree() {
        let f = MergeForest::single(MergeTree::singleton());
        assert_eq!(f.num_trees(), 1);
        assert_eq!(f.total_arrivals(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn explicit_empty_forest() {
        let f = MergeForest::empty();
        assert!(f.is_empty());
        assert_eq!(f.num_trees(), 0);
        assert_eq!(f.total_arrivals(), 0);
        assert_eq!(f.sizes(), Vec::<usize>::new());
        assert_eq!(f.root_arrivals(), Vec::<usize>::new());
        assert_eq!(f.iter_with_ranges().count(), 0);
    }
}
