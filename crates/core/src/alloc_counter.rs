//! Thread-local allocation counters for allocation-budget test harnesses.
//!
//! The workspace forbids `unsafe` in library code, so the actual
//! `#[global_allocator]` wrapper lives in the test/bench binaries that need
//! it (`tests/alloc_budget.rs`, `sm-bench`'s `scale.rs`); those wrappers
//! call [`note_alloc`] from their `alloc`/`realloc` hooks and this module
//! keeps the counts. Counters are **per thread**, so parallel test binaries
//! and `sm_core::parallel` worker threads never pollute each other's
//! measurements — a harness observes exactly the allocations made by the
//! thread driving the code under test.
//!
//! The counters are `const`-initialised `Cell`s: reading or bumping them
//! never allocates and never panics, which is mandatory inside a global
//! allocator. During thread teardown the thread-local may already be gone;
//! [`note_alloc`] silently drops such late counts instead of panicking.

use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static ALLOCATED_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Records one heap allocation of `bytes` bytes on the current thread.
/// Called by counting `#[global_allocator]` wrappers; safe to call from
/// inside an allocator (no allocation, no panic).
pub fn note_alloc(bytes: usize) {
    if ALLOCATIONS.try_with(|c| c.set(c.get() + 1)).is_err() {
        // Thread-local storage is being torn down; drop the count rather
        // than panic inside the allocator.
        return;
    }
    if ALLOCATED_BYTES
        .try_with(|c| c.set(c.get().saturating_add(bytes as u64)))
        .is_err()
    {
        // Same teardown race as above.
    }
}

/// Total heap allocations recorded on the current thread.
pub fn allocations() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// Total bytes requested by recorded allocations on the current thread.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// A point-in-time snapshot of the current thread's counters, for measuring
/// the allocations of a code region.
#[derive(Debug, Clone, Copy)]
pub struct AllocCheckpoint {
    allocations: u64,
    bytes: u64,
}

/// Snapshots the current thread's counters.
pub fn checkpoint() -> AllocCheckpoint {
    AllocCheckpoint {
        allocations: allocations(),
        bytes: allocated_bytes(),
    }
}

impl AllocCheckpoint {
    /// Allocations on this thread since the checkpoint was taken.
    pub fn allocations_since(&self) -> u64 {
        allocations() - self.allocations
    }

    /// Bytes requested on this thread since the checkpoint was taken.
    pub fn bytes_since(&self) -> u64 {
        allocated_bytes() - self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_checkpoints_diff() {
        let before = checkpoint();
        note_alloc(64);
        note_alloc(32);
        assert_eq!(before.allocations_since(), 2);
        assert_eq!(before.bytes_since(), 96);
        let later = checkpoint();
        assert_eq!(later.allocations_since(), 0);
    }
}
