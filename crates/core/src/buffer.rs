//! Client buffer requirements (§3.3, Lemma 15).
//!
//! A client arriving at `x` in a tree rooted at `r` needs a buffer of
//! exactly `b(x) = min(x − r, L − (x − r))` parts: while it receives two
//! streams it accumulates one extra part per slot, peaking when it merges to
//! the root (or when the root stream ends, whichever binds first).
//!
//! [`buffer_profile`] recomputes occupancy slot-by-slot from the receiving
//! program — an independent check of the closed form used by tests and the
//! simulator.

use crate::receiving::ReceivingProgram;
use crate::tree::MergeTree;

/// Lemma 15: the closed-form buffer requirement, in parts, for the client at
/// local arrival `client`.
///
/// # Panics
/// Panics if `times.len() != tree.len()`.
pub fn required_buffer(tree: &MergeTree, times: &[i64], media_len: u64, client: usize) -> i64 {
    assert_eq!(times.len(), tree.len());
    let span = times[client] - times[0];
    span.min(media_len as i64 - span)
}

/// Buffer occupancy of `client` at each instant, derived by replaying its
/// receiving program: a part occupies the buffer from the end of the slot in
/// which it is received until the end of the slot in which it is played.
///
/// Returns `(instant, occupancy)` pairs for every integer instant from the
/// client's arrival to the end of its playback.
pub fn buffer_profile(
    tree: &MergeTree,
    times: &[i64],
    media_len: u64,
    client: usize,
) -> Vec<(i64, i64)> {
    let prog = ReceivingProgram::build(tree, times, media_len, client);
    let t_c = times[client];
    let media = media_len as i64;
    // receive_end[q] = instant the part q is fully received.
    let mut receive_end = vec![i64::MAX; (media + 1) as usize];
    for seg in &prog.segments {
        if seg.is_empty() {
            continue;
        }
        for part in seg.first_part..=seg.last_part {
            if (1..=media).contains(&part) {
                let end = ReceivingProgram::receive_slot(times, seg, part) + 1;
                receive_end[part as usize] = receive_end[part as usize].min(end);
            }
        }
    }
    let horizon = t_c + media; // playback ends at t_c + L
    let mut profile = Vec::with_capacity((horizon - t_c + 1) as usize);
    for tau in t_c..=horizon {
        let received = (1..=media)
            .filter(|&q| receive_end[q as usize] <= tau)
            .count() as i64;
        let played = (tau - t_c).clamp(0, media);
        profile.push((tau, received - played));
    }
    profile
}

/// Maximum of [`buffer_profile`] — the observed buffer requirement.
pub fn max_buffer_observed(tree: &MergeTree, times: &[i64], media_len: u64, client: usize) -> i64 {
    buffer_profile(tree, times, media_len, client)
        .into_iter()
        .map(|(_, b)| b)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::consecutive_slots;

    fn fig4() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn lemma15_closed_form_examples() {
        let t = fig4();
        let times = consecutive_slots(8);
        // L = 15: x - r <= 7 < L/2, so b(x) = x - r everywhere here.
        for c in 0..8 {
            assert_eq!(required_buffer(&t, &times, 15, c), c as i64);
        }
        // Small L flips the min: with L = 10, client 7 buffers 10-7 = 3.
        assert_eq!(required_buffer(&t, &times, 10, 7), 3);
    }

    #[test]
    fn observed_buffer_matches_lemma15_on_fig4() {
        let t = fig4();
        let times = consecutive_slots(8);
        for c in 0..8 {
            let closed = required_buffer(&t, &times, 15, c);
            let observed = max_buffer_observed(&t, &times, 15, c);
            assert_eq!(observed, closed, "client {c}");
        }
    }

    #[test]
    fn observed_buffer_matches_lemma15_on_chain_and_star() {
        for n in [2usize, 3, 5, 7] {
            let times = consecutive_slots(n);
            let media = 2 * n as u64 + 3;
            for tree in [MergeTree::chain(n), MergeTree::star(n)] {
                for c in 0..n {
                    assert_eq!(
                        max_buffer_observed(&tree, &times, media, c),
                        required_buffer(&tree, &times, media, c),
                        "n = {n}, client {c}, tree = {}",
                        tree.to_sexpr()
                    );
                }
            }
        }
    }

    #[test]
    fn root_needs_no_buffer() {
        let t = fig4();
        let times = consecutive_slots(8);
        assert_eq!(required_buffer(&t, &times, 15, 0), 0);
        assert_eq!(max_buffer_observed(&t, &times, 15, 0), 0);
    }

    #[test]
    fn profile_starts_and_ends_empty() {
        let t = fig4();
        let times = consecutive_slots(8);
        let profile = buffer_profile(&t, &times, 15, 7);
        assert_eq!(profile.first().unwrap().1, 0);
        assert_eq!(profile.last().unwrap().1, 0);
    }
}
