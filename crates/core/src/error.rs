//! Error types for model construction and validation.

use std::fmt;

/// Everything that can go wrong constructing or validating a merge
/// tree/forest or a receiving program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A tree must contain at least one node.
    EmptyTree,
    /// The root (local index 0) must not have a parent.
    RootHasParent,
    /// Non-root node `node` is missing a parent.
    MissingParent { node: usize },
    /// A stream can only merge to an *earlier* stream (paper §2: parent
    /// label < child label).
    ParentNotEarlier { node: usize, parent: usize },
    /// The tree does not satisfy the preorder-traversal property (required
    /// of *optimal* trees, Lemma from \[6\] quoted in §2).
    PreorderViolation { expected: usize, found: usize },
    /// Arrival times are not strictly increasing.
    TimesNotSorted,
    /// Tree/forest shape disagrees with the arrival-time slice it indexes.
    TimesLengthMismatch { nodes: usize, times: usize },
    /// The last arrival of a tree is too far from its root: the paper
    /// requires `z − r ≤ L − 1` so the root stream can serve everyone.
    SpanExceedsStream { root: usize, last: usize },
    /// A non-root stream's mandated length `ℓ(x)` exceeds the media length,
    /// i.e. the schedule would have to broadcast past the end of the media.
    LengthExceedsMedia { node: usize },
    /// A client would need more buffer than the stated bound `B`.
    BufferExceeded {
        node: usize,
        needed: u64,
        bound: u64,
    },
    /// A receiving program asked for a part outside `1..=L`.
    PartOutOfRange { part: i64 },
    /// A receiving program does not deliver the media contiguously.
    CoverageGap { expected_part: i64, found_part: i64 },
    /// More than two streams would have to be received simultaneously in the
    /// receive-two model.
    TooManyConcurrentStreams { time: i64, count: usize },
    /// Forests must tile the arrival sequence left to right.
    ForestNotContiguous { tree: usize },
    /// A tree outgrew the `u32` index space of the arena representation
    /// (one label is reserved as the "no node" sentinel).
    NodeLimitExceeded { nodes: usize },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTree => write!(f, "merge tree must contain at least one arrival"),
            Self::RootHasParent => write!(f, "root node must not have a parent"),
            Self::MissingParent { node } => {
                write!(f, "non-root node {node} has no parent")
            }
            Self::ParentNotEarlier { node, parent } => write!(
                f,
                "node {node} merges to {parent}, but streams may only merge to earlier streams"
            ),
            Self::PreorderViolation { expected, found } => write!(
                f,
                "preorder traversal produced arrival {found} where {expected} was expected"
            ),
            Self::TimesNotSorted => write!(f, "arrival times must be strictly increasing"),
            Self::TimesLengthMismatch { nodes, times } => write!(
                f,
                "tree has {nodes} nodes but was given {times} arrival times"
            ),
            Self::SpanExceedsStream { root, last } => write!(
                f,
                "arrival {last} is too far from root {root}: span must be at most L-1"
            ),
            Self::LengthExceedsMedia { node } => write!(
                f,
                "stream {node} would need to broadcast past the end of the media"
            ),
            Self::BufferExceeded {
                node,
                needed,
                bound,
            } => write!(
                f,
                "client {node} needs a buffer of {needed} slots, exceeding the bound {bound}"
            ),
            Self::PartOutOfRange { part } => {
                write!(
                    f,
                    "receiving program references part {part}, outside the media"
                )
            }
            Self::CoverageGap {
                expected_part,
                found_part,
            } => write!(
                f,
                "receiving program skips from part {expected_part} to {found_part}"
            ),
            Self::TooManyConcurrentStreams { time, count } => write!(
                f,
                "client must receive {count} streams at slot {time}, but receive-two allows 2"
            ),
            Self::ForestNotContiguous { tree } => write!(
                f,
                "forest tree {tree} does not start where the previous tree ended"
            ),
            Self::NodeLimitExceeded { nodes } => write!(
                f,
                "tree of {nodes} arrivals exceeds the arena's u32 index space"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable() {
        let msgs = [
            ModelError::EmptyTree.to_string(),
            ModelError::RootHasParent.to_string(),
            ModelError::ParentNotEarlier { node: 3, parent: 5 }.to_string(),
            ModelError::BufferExceeded {
                node: 1,
                needed: 9,
                bound: 4,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::EmptyTree);
    }
}
