//! Client receiving programs (§2, "Receiving programs").
//!
//! For a client arriving at `x_k` with root-path `x_0 < x_1 < … < x_k`, the
//! paper's staged rules flatten into: the client receives from stream `x_j`
//! exactly parts
//!
//! ```text
//! P_j = [ 2·t_k − t_{j+1} − t_j + 1 ,  2·t_k − t_j − t_{j−1} ]
//! ```
//!
//! with the conventions `t_{k+1} := t_k` (so `P_k` starts at part 1) and the
//! upper bound of `P_0` replaced by `L` (stage `k` runs to the end of the
//! media). Consecutive ranges are contiguous, and during
//! `[2t_k − t_j, 2t_k − t_{j−1})` the client listens to `x_j` and `x_{j−1}`
//! simultaneously — never more than two streams (receive-two).

use crate::error::ModelError;
use crate::tree::MergeTree;

/// A maximal run of parts received from a single stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSegment {
    /// Local index (within the tree) of the source stream.
    pub stream: usize,
    /// First part received from this stream (1-based).
    pub first_part: i64,
    /// Last part received from this stream (inclusive).
    pub last_part: i64,
}

impl StageSegment {
    /// Number of parts in the segment.
    pub fn len(&self) -> i64 {
        (self.last_part - self.first_part + 1).max(0)
    }

    /// `true` iff the segment contributes no parts.
    pub fn is_empty(&self) -> bool {
        self.last_part < self.first_part
    }
}

/// The complete receiving program of one client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivingProgram {
    /// Local index of the client's own arrival.
    pub client: usize,
    /// Root path `x_0 < … < x_k` (local indices).
    pub path: Vec<usize>,
    /// Segments in part order (from the client's own stream back to the
    /// root). Possibly-empty segments are retained so `segments.len() ==
    /// path.len()` always holds.
    pub segments: Vec<StageSegment>,
}

impl ReceivingProgram {
    /// Builds the receiving program of local arrival `client` in `tree`
    /// with slotted arrival times `times` and media length `media_len`.
    ///
    /// # Panics
    /// Panics if `times.len() != tree.len()` or `client` is out of range.
    pub fn build(tree: &MergeTree, times: &[i64], media_len: u64, client: usize) -> Self {
        let mut prog = Self {
            client,
            path: Vec::new(),
            segments: Vec::new(),
        };
        prog.rebuild(tree, times, media_len, client);
        prog
    }

    /// Rebuilds the program in place, reusing the `path`/`segments`
    /// allocations — the hot-loop form of [`Self::build`] (identical
    /// output) for callers evaluating many clients back to back.
    ///
    /// # Panics
    /// Panics if `times.len() != tree.len()` or `client` is out of range.
    pub fn rebuild(&mut self, tree: &MergeTree, times: &[i64], media_len: u64, client: usize) {
        assert_eq!(times.len(), tree.len());
        self.client = client;
        tree.path_from_root_into(client, &mut self.path);
        let path = &self.path;
        let k = path.len() - 1;
        let tk = times[path[k]];
        let media = media_len as i64;
        self.segments.clear();
        self.segments.reserve(path.len());
        // j runs from the client's own stream (j = k) down to the root.
        for j in (0..=k).rev() {
            let tj = times[path[j]];
            let t_above = if j == k { tk } else { times[path[j + 1]] };
            let first = 2 * tk - t_above - tj + 1;
            let last = if j == 0 {
                media
            } else {
                2 * tk - tj - times[path[j - 1]]
            };
            self.segments.push(StageSegment {
                stream: path[j],
                first_part: first,
                last_part: last,
            });
        }
    }

    /// Slot during which `part` of `segment` is received:
    /// stream `x_j` broadcasts part `q` during `[t_j + q − 1, t_j + q)`.
    pub fn receive_slot(times: &[i64], segment: &StageSegment, part: i64) -> i64 {
        times[segment.stream] + part - 1
    }

    /// Total number of parts the program delivers.
    pub fn total_parts(&self) -> i64 {
        self.segments.iter().map(StageSegment::len).sum()
    }

    /// Number of slots during which the client receives two streams at once
    /// (the paper: `min(x_k − x_0, L − (x_k − x_0))`).
    pub fn dual_receive_slots(&self, times: &[i64], media_len: u64) -> i64 {
        let span = times[*self.path.last().unwrap()] - times[self.path[0]];
        span.min(media_len as i64 - span)
    }

    /// Verifies the program delivers exactly parts `1..=L`, contiguously and
    /// in order, never referencing a part outside the media, and that every
    /// part arrives no later than its playback slot.
    pub fn verify(&self, times: &[i64], media_len: u64) -> Result<(), ModelError> {
        let media = media_len as i64;
        let client_time = times[self.client];
        let mut expected = 1i64;
        for seg in &self.segments {
            if seg.is_empty() {
                continue;
            }
            if seg.first_part < 1 || seg.last_part > media {
                let part = if seg.first_part < 1 {
                    seg.first_part
                } else {
                    seg.last_part
                };
                return Err(ModelError::PartOutOfRange { part });
            }
            if seg.first_part != expected {
                return Err(ModelError::CoverageGap {
                    expected_part: expected,
                    found_part: seg.first_part,
                });
            }
            // Timeliness: part q is received during slot
            // [t_stream + q − 1, t_stream + q) and played during
            // [t_client + q − 1, t_client + q); the source must not be later
            // than the client (guaranteed by parent < child, re-checked
            // here against the actual times).
            if times[seg.stream] > client_time {
                return Err(ModelError::ParentNotEarlier {
                    node: self.client,
                    parent: seg.stream,
                });
            }
            expected = seg.last_part + 1;
        }
        if expected != media + 1 {
            return Err(ModelError::CoverageGap {
                expected_part: expected,
                found_part: media + 1,
            });
        }
        Ok(())
    }

    /// The set of `(slot, streams_being_received)` implied by the program,
    /// from which receive-two compliance can be checked explicitly.
    /// Returns, per slot offset from the client's arrival, how many streams
    /// are simultaneously being received.
    pub fn concurrency_profile(&self, times: &[i64]) -> Vec<(i64, usize)> {
        use std::collections::BTreeMap;
        let mut per_slot: BTreeMap<i64, usize> = BTreeMap::new();
        for seg in &self.segments {
            if seg.is_empty() {
                continue;
            }
            for part in seg.first_part..=seg.last_part {
                let slot = Self::receive_slot(times, seg, part);
                *per_slot.entry(slot).or_insert(0) += 1;
            }
        }
        per_slot.into_iter().collect()
    }

    /// Explicit receive-two check (never more than two streams in a slot).
    pub fn check_receive_two(&self, times: &[i64]) -> Result<(), ModelError> {
        for (time, count) in self.concurrency_profile(times) {
            if count > 2 {
                return Err(ModelError::TooManyConcurrentStreams { time, count });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::consecutive_slots;

    fn fig4() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn client_h_matches_paper_walkthrough() {
        // Paper §2: client H (arrival 7, path 0,5,7; L = 15):
        //   from stream 7: parts 1,2; from stream 5: parts 3..9;
        //   from stream 0: parts 10..15.
        let t = fig4();
        let times = consecutive_slots(8);
        let prog = ReceivingProgram::build(&t, &times, 15, 7);
        assert_eq!(prog.path, vec![0, 5, 7]);
        assert_eq!(
            prog.segments,
            vec![
                StageSegment {
                    stream: 7,
                    first_part: 1,
                    last_part: 2
                },
                StageSegment {
                    stream: 5,
                    first_part: 3,
                    last_part: 9
                },
                StageSegment {
                    stream: 0,
                    first_part: 10,
                    last_part: 15
                },
            ]
        );
        prog.verify(&times, 15).unwrap();
        prog.check_receive_two(&times).unwrap();
    }

    #[test]
    fn root_client_receives_everything_from_root() {
        let t = fig4();
        let times = consecutive_slots(8);
        let prog = ReceivingProgram::build(&t, &times, 15, 0);
        assert_eq!(prog.segments.len(), 1);
        assert_eq!(prog.segments[0].stream, 0);
        assert_eq!(prog.segments[0].first_part, 1);
        assert_eq!(prog.segments[0].last_part, 15);
        prog.verify(&times, 15).unwrap();
    }

    #[test]
    fn every_fig4_client_verifies() {
        let t = fig4();
        let times = consecutive_slots(8);
        for c in 0..8 {
            let prog = ReceivingProgram::build(&t, &times, 15, c);
            prog.verify(&times, 15)
                .unwrap_or_else(|e| panic!("client {c}: {e}"));
            prog.check_receive_two(&times).unwrap();
            assert_eq!(prog.total_parts(), 15, "client {c}");
        }
    }

    #[test]
    fn segment_parts_received_from_stream_match_its_length() {
        // The largest part any client pulls from stream x equals ℓ(x)
        // (Lemma 1), tying receiving programs to the cost model.
        let t = fig4();
        let times = consecutive_slots(8);
        let lens = crate::cost::lengths(&t, &times);
        let mut max_part = [0i64; 8];
        for c in 0..8 {
            let prog = ReceivingProgram::build(&t, &times, 15, c);
            for seg in &prog.segments {
                if !seg.is_empty() {
                    max_part[seg.stream] = max_part[seg.stream].max(seg.last_part);
                }
            }
        }
        for x in 1..8 {
            assert_eq!(max_part[x], lens[x], "stream {x}");
        }
        assert_eq!(max_part[0], 15);
    }

    #[test]
    fn coverage_gap_detected_for_too_short_media() {
        // With L = 6 the Fig. 4 tree is infeasible for far clients:
        // client 7 would need part ranges beyond the media.
        let t = fig4();
        let times = consecutive_slots(8);
        let prog = ReceivingProgram::build(&t, &times, 6, 7);
        assert!(prog.verify(&times, 6).is_err());
    }

    #[test]
    fn dual_receive_slots_matches_paper_formula() {
        let t = fig4();
        let times = consecutive_slots(8);
        for c in 0..8 {
            let prog = ReceivingProgram::build(&t, &times, 15, c);
            let span = times[c] - times[0];
            assert_eq!(prog.dual_receive_slots(&times, 15), span.min(15 - span));
        }
    }

    #[test]
    fn concurrency_never_exceeds_two_on_chain() {
        let t = MergeTree::chain(6);
        let times = consecutive_slots(6);
        for c in 0..6 {
            let prog = ReceivingProgram::build(&t, &times, 15, c);
            prog.check_receive_two(&times).unwrap();
            prog.verify(&times, 15).unwrap();
        }
    }
}
