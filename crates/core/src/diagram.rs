//! ASCII rendering of the paper's "concrete diagrams" (Fig. 3): one row per
//! stream, offset by its start slot, showing the segment numbers it
//! broadcasts. Used by the examples to make schedules inspectable.

use crate::cost::lengths;
use crate::forest::MergeForest;
use crate::tree::MergeTree;

/// Renders a single tree over slotted times as a Fig. 3 style diagram.
///
/// Each stream occupies one row; column `t` of a row shows the last digit of
/// the part broadcast during slot `[t, t+1)`. Stream names are `A, B, C, …`
/// by arrival order (matching the paper's figure), falling back to `#i` past
/// 26 streams.
pub fn render_tree(tree: &MergeTree, times: &[i64], media_len: u64) -> String {
    let lens = lengths(tree, times);
    let origin = times[0];
    let mut out = String::new();
    let total_span = (times[tree.len() - 1] - origin) + media_len as i64;
    push_ruler(&mut out, total_span);
    for x in 0..tree.len() {
        let len = if x == 0 { media_len as i64 } else { lens[x] };
        push_stream_row(&mut out, x, times[x] - origin, len);
    }
    out
}

/// Renders a whole forest (trees separated by a blank line).
pub fn render_forest(forest: &MergeForest, times: &[i64], media_len: u64) -> String {
    let mut out = String::new();
    for (i, (range, tree)) in forest.iter_with_ranges().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_tree(tree, &times[range], media_len));
    }
    out
}

fn stream_name(x: usize) -> String {
    if x < 26 {
        // sm-lint: allow(narrowing-cast) — guarded by `x < 26` on the line above
        char::from(b'A' + x as u8).to_string()
    } else {
        format!("#{x}")
    }
}

fn push_ruler(out: &mut String, span: i64) {
    use std::fmt::Write;
    let _ = write!(out, "{:>8} ", "slot");
    for t in 0..span {
        let _ = write!(out, "{}", (t % 10));
    }
    out.push('\n');
}

fn push_stream_row(out: &mut String, x: usize, offset: i64, len: i64) {
    use std::fmt::Write;
    let label = format!("{}({})", stream_name(x), x);
    let _ = write!(out, "{label:>8} ");
    for _ in 0..offset {
        out.push(' ');
    }
    for part in 1..=len {
        let _ = write!(out, "{}", (part % 10));
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::consecutive_slots;

    fn fig4() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn renders_all_streams() {
        let t = fig4();
        let times = consecutive_slots(8);
        let s = render_tree(&t, &times, 15);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 9); // ruler + 8 streams
        assert!(lines[1].contains("A(0)"));
        assert!(lines[8].contains("H(7)"));
        // Stream A broadcasts 15 parts: digits 123456789012345.
        assert!(lines[1].ends_with("123456789012345"));
        // Stream F (index 5) has length 9 and starts at slot 5.
        assert!(lines[6].ends_with("     123456789"));
    }

    #[test]
    fn forest_rendering_contains_all_trees() {
        let f = MergeForest::from_trees(vec![MergeTree::chain(2), MergeTree::chain(2)]).unwrap();
        let times = consecutive_slots(4);
        let s = render_forest(&f, &times, 5);
        // Two rulers, four streams.
        assert_eq!(s.matches("slot").count(), 2);
        assert_eq!(s.matches("A(0)").count(), 2);
    }

    #[test]
    fn stream_names_past_z() {
        assert_eq!(stream_name(0), "A");
        assert_eq!(stream_name(25), "Z");
        assert_eq!(stream_name(30), "#30");
    }
}
