//! Index-based arena representation of a merge tree (struct-of-arrays).
//!
//! [`MergeTree`] stores one `Vec<u32>` *per node* for the children lists,
//! which is the right shape for validation and construction but scatters the
//! hot simulation loops across the heap. [`TreeArena`] flattens the same
//! tree into four parallel `u32` columns:
//!
//! ```text
//! node            0    1    2    3   …        (local preorder labels)
//! parent        [ –  | 0  | 1  | 0  | … ]     (entry 0 unused)
//! first_child   [ 1  | 2  | ∅  | ∅  | … ]     ∅ = u32::MAX sentinel
//! next_sibling  [ ∅  | 3  | ∅  | ∅  | … ]
//! last_descendant[3  | 2  | 2  | 3  | … ]     z(x), Lemma 1
//! ```
//!
//! (a fifth internal `last_child` column makes appends O(1)). A whole tree
//! is therefore five contiguous slices with **no per-node allocation**, and
//! `clear`/`lower_into`/`reset_singleton` reuse the storage so a pooled
//! arena is allocation-free in steady state.
//!
//! `MergeTree` stays the validated constructor: build or validate there,
//! then [`TreeArena::lower_into`] the result. [`TreeArena::raise`] converts
//! back (used by tests to pin the round-trip). Trees larger than the `u32`
//! index space — one label is reserved for the sentinel — are rejected with
//! [`ModelError::NodeLimitExceeded`] rather than a panic.

use crate::error::ModelError;
use crate::tree::MergeTree;

/// "No node" sentinel for the child/sibling columns.
const NONE: u32 = u32::MAX;

/// Converts a node index into its `u32` column label, rejecting indices that
/// collide with the sentinel or do not fit.
fn label(i: usize) -> Result<u32, ModelError> {
    match u32::try_from(i) {
        Ok(v) if v != NONE => Ok(v),
        _ => Err(ModelError::NodeLimitExceeded {
            nodes: i.saturating_add(1),
        }),
    }
}

/// A merge tree flattened into parallel `u32` columns (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeArena {
    parent: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    last_child: Vec<u32>,
    last_descendant: Vec<u32>,
}

impl TreeArena {
    /// Largest node count the columns can label: one `u32` value is the
    /// sentinel, every other one is a valid label.
    pub const MAX_NODES: usize = u32::MAX as usize;

    /// An empty arena holding no tree (and no heap storage).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rejects node counts beyond [`Self::MAX_NODES`] with a typed error.
    pub fn check_capacity(nodes: usize) -> Result<(), ModelError> {
        if nodes > Self::MAX_NODES {
            Err(ModelError::NodeLimitExceeded { nodes })
        } else {
            Ok(())
        }
    }

    /// Number of nodes currently in the arena.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the arena currently holds no tree.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Removes every node but keeps the column storage for reuse.
    pub fn clear(&mut self) {
        self.parent.clear();
        self.first_child.clear();
        self.next_sibling.clear();
        self.last_child.clear();
        self.last_descendant.clear();
    }

    /// Resets the arena to the single-root tree, reusing storage.
    pub fn reset_singleton(&mut self) {
        self.clear();
        self.parent.push(0);
        self.first_child.push(NONE);
        self.next_sibling.push(NONE);
        self.last_child.push(NONE);
        self.last_descendant.push(0);
    }

    /// Appends arrival `len()` as the new *last* child of `parent`, exactly
    /// like [`MergeTree::push_arrival`]: the preorder property is preserved
    /// by construction and every ancestor's last descendant becomes the new
    /// node. O(depth), allocation-free once the columns have capacity.
    pub fn push_arrival(&mut self, parent: usize) -> Result<usize, ModelError> {
        let node = self.len();
        if parent >= node {
            return Err(ModelError::ParentNotEarlier { node, parent });
        }
        let new_label = label(node)?;
        self.parent.push(label(parent)?);
        self.first_child.push(NONE);
        self.next_sibling.push(NONE);
        self.last_child.push(NONE);
        self.last_descendant.push(new_label);
        let prev = self.last_child[parent];
        if prev == NONE {
            self.first_child[parent] = new_label;
        } else {
            self.next_sibling[prev as usize] = new_label;
        }
        self.last_child[parent] = new_label;
        let mut cur = parent;
        loop {
            self.last_descendant[cur] = new_label;
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        Ok(node)
    }

    /// Lowers a validated [`MergeTree`] into a fresh arena.
    pub fn lower(tree: &MergeTree) -> Result<Self, ModelError> {
        let mut arena = Self::new();
        arena.lower_into(tree)?;
        Ok(arena)
    }

    /// Lowers `tree` into this arena, reusing the column storage. The only
    /// failure mode is a tree outside the `u32` index space.
    pub fn lower_into(&mut self, tree: &MergeTree) -> Result<(), ModelError> {
        let n = tree.len();
        Self::check_capacity(n)?;
        self.clear();
        self.parent.resize(n, 0);
        self.first_child.resize(n, NONE);
        self.next_sibling.resize(n, NONE);
        self.last_child.resize(n, NONE);
        self.last_descendant.resize(n, 0);
        for i in 0..n {
            let li = label(i)?;
            let kids = tree.children(i);
            self.first_child[i] = kids.first().copied().unwrap_or(NONE);
            self.last_child[i] = kids.last().copied().unwrap_or(NONE);
            for &c in kids {
                self.parent[c as usize] = li;
            }
            for pair in kids.windows(2) {
                self.next_sibling[pair[0] as usize] = pair[1];
            }
            self.last_descendant[i] = label(tree.last_descendant(i))?;
        }
        Ok(())
    }

    /// Raises the arena back into the pointer-based, validated form.
    pub fn raise(&self) -> Result<MergeTree, ModelError> {
        MergeTree::from_parents(&self.to_parents())
    }

    /// Parent list in [`MergeTree::from_parents`] form.
    pub fn to_parents(&self) -> Vec<Option<usize>> {
        (0..self.len()).map(|i| self.parent(i)).collect()
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: usize) -> Option<usize> {
        (node != 0).then(|| self.parent[node] as usize)
    }

    /// The earliest child of `node`, if any.
    pub fn first_child(&self, node: usize) -> Option<usize> {
        match self.first_child[node] {
            NONE => None,
            c => Some(c as usize),
        }
    }

    /// The next-later sibling of `node`, if any.
    pub fn next_sibling(&self, node: usize) -> Option<usize> {
        match self.next_sibling[node] {
            NONE => None,
            s => Some(s as usize),
        }
    }

    /// Children of `node` in arrival (= label) order.
    pub fn children(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        std::iter::successors(self.first_child(node), move |&c| self.next_sibling(c))
    }

    /// `z(node)`: the largest label in `node`'s subtree (Lemma 1).
    pub fn last_descendant(&self, node: usize) -> usize {
        self.last_descendant[node] as usize
    }

    /// Root-to-`node` path written into `out` (cleared first), mirroring
    /// [`MergeTree::path_from_root_into`].
    pub fn path_from_root_into(&self, node: usize, out: &mut Vec<usize>) {
        out.clear();
        let mut cur = node;
        out.push(cur);
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out.reverse();
    }

    /// Root-to-`node` path as a fresh vector.
    pub fn path_from_root(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.path_from_root_into(node, &mut out);
        out
    }

    /// Preorder traversal (children in arrival order). For any tree built
    /// through [`MergeTree`] or [`Self::push_arrival`] this is `0..len`.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = Vec::new();
        if !self.is_empty() {
            stack.push(0);
        }
        while let Some(node) = stack.pop() {
            out.push(node);
            // Push children in reverse arrival order so the earliest child
            // is visited first.
            let mut kids: Vec<usize> = self.children(node).collect();
            while let Some(c) = kids.pop() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_reset_matches_lowered_singleton() {
        let mut arena = TreeArena::new();
        arena.reset_singleton();
        assert_eq!(arena, TreeArena::lower(&MergeTree::singleton()).unwrap());
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.parent(0), None);
        assert_eq!(arena.last_descendant(0), 0);
    }

    #[test]
    fn push_arrival_rejects_out_of_range_parent() {
        let mut arena = TreeArena::new();
        arena.reset_singleton();
        assert_eq!(
            arena.push_arrival(1),
            Err(ModelError::ParentNotEarlier { node: 1, parent: 1 })
        );
    }

    #[test]
    fn capacity_check_is_a_typed_error() {
        assert_eq!(TreeArena::check_capacity(TreeArena::MAX_NODES), Ok(()));
        assert_eq!(
            TreeArena::check_capacity(TreeArena::MAX_NODES + 1),
            Err(ModelError::NodeLimitExceeded {
                nodes: TreeArena::MAX_NODES + 1
            })
        );
    }

    #[test]
    fn chain_and_star_round_trip() {
        for tree in [MergeTree::chain(5), MergeTree::star(5)] {
            let arena = TreeArena::lower(&tree).unwrap();
            assert_eq!(arena.raise().unwrap(), tree);
            assert_eq!(arena.preorder(), tree.preorder());
        }
    }
}
