//! Merge trees (§2 of the paper).
//!
//! A merge tree over `n` arrivals is an ordered labeled tree on local indices
//! `0..n`, rooted at 0, in which every non-root merges to an *earlier*
//! arrival and children are ordered by arrival. Optimal trees additionally
//! satisfy the preorder-traversal property (preorder visits labels in
//! increasing order) — a fact from \[6\] the paper reuses; [`MergeTree`]
//! validates the former on construction and exposes the latter as a check.

use crate::error::ModelError;

/// An ordered labeled merge tree over local arrival indices `0..n`.
///
/// The tree is structural only: arrival *times* are supplied separately to
/// the cost functions, so one tree shape can be priced against any time axis
/// (consecutive slots for the delay-guaranteed model, real timestamps for the
/// dyadic algorithm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeTree {
    /// `parent[i]` for non-root `i`; `parent[0]` is unused (stored as 0).
    parent: Vec<u32>,
    /// Children of each node, in increasing (arrival) order.
    children: Vec<Vec<u32>>,
    /// `z[i]`: the largest label in the subtree rooted at `i` (the paper's
    /// `z(x)`, the last arrival that still needs stream `i`).
    last_descendant: Vec<u32>,
}

/// Packs a node label into the `u32` the tree stores (halving the memory of
/// the three per-node columns). Labels are dense arrival indices, so 2^32
/// nodes would mean four billion arrivals in one merge group — far beyond
/// any workload the engines generate; debug builds still check.
fn label(i: usize) -> u32 {
    debug_assert!(u32::try_from(i).is_ok(), "node label {i} overflows u32");
    // sm-lint: allow(narrowing-cast) — debug-asserted in range above; labels are dense arrival indices ≪ 2^32
    i as u32
}

impl MergeTree {
    /// Builds a tree from a parent array. `parents[0]` must be `None`; every
    /// other entry must name an earlier arrival.
    pub fn from_parents(parents: &[Option<usize>]) -> Result<Self, ModelError> {
        if parents.is_empty() {
            return Err(ModelError::EmptyTree);
        }
        if parents[0].is_some() {
            return Err(ModelError::RootHasParent);
        }
        let n = parents.len();
        let mut parent = vec![0u32; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate().skip(1) {
            let p = p.ok_or(ModelError::MissingParent { node: i })?;
            if p >= i {
                return Err(ModelError::ParentNotEarlier { node: i, parent: p });
            }
            parent[i] = label(p);
            children[p].push(label(i));
        }
        // Children were inserted in increasing label order, so sibling order
        // is automatically the arrival order the paper requires.
        let mut last_descendant: Vec<u32> = (0..label(n)).collect();
        for i in (1..n).rev() {
            let p = parent[i] as usize;
            if last_descendant[i] > last_descendant[p] {
                last_descendant[p] = last_descendant[i];
            }
        }
        Ok(Self {
            parent,
            children,
            last_descendant,
        })
    }

    /// The tree with a single arrival.
    pub fn singleton() -> Self {
        Self::from_parents(&[None]).expect("singleton is always valid")
    }

    /// A chain: every arrival merges to its immediate predecessor.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn chain(n: usize) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        Self::from_parents(&parents).expect("chain is always valid")
    }

    /// A star: every arrival merges directly to the root.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(0) })
            .collect();
        Self::from_parents(&parents).expect("star is always valid")
    }

    /// Number of arrivals (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff the tree is a single arrival.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a MergeTree always has >= 1 node
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: usize) -> Option<usize> {
        (node != 0).then(|| self.parent[node] as usize)
    }

    /// Ordered children of `node`.
    #[inline]
    pub fn children(&self, node: usize) -> &[u32] {
        &self.children[node]
    }

    /// The paper's `z(x)`: the largest arrival in the subtree of `node`
    /// (equals `node` for leaves).
    #[inline]
    pub fn last_descendant(&self, node: usize) -> usize {
        self.last_descendant[node] as usize
    }

    /// The last arrival served by this tree, `z(root)`.
    #[inline]
    pub fn last_arrival(&self) -> usize {
        self.last_descendant[0] as usize
    }

    /// The path of local indices from the root to `node`, inclusive — the
    /// client's *receiving program* skeleton (`x_0 < x_1 < … < x_k`).
    pub fn path_from_root(&self, node: usize) -> Vec<usize> {
        let mut path = Vec::new();
        self.path_from_root_into(node, &mut path);
        path
    }

    /// Writes the root path of `node` into `out` (cleared first), reusing
    /// its allocation — the hot-loop form of [`Self::path_from_root`].
    pub fn path_from_root_into(&self, node: usize, out: &mut Vec<usize>) {
        out.clear();
        let mut cur = node;
        loop {
            out.push(cur);
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        out.reverse();
    }

    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: usize) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum depth over all nodes (the longest receiving program minus 1).
    pub fn height(&self) -> usize {
        (0..self.len()).map(|i| self.depth(i)).max().unwrap_or(0)
    }

    /// Preorder traversal of the node labels.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            out.push(node);
            // Push children in reverse so the leftmost is visited first.
            for &c in self.children[node].iter().rev() {
                stack.push(c as usize);
            }
        }
        out
    }

    /// Checks the preorder-traversal property: preorder visits `0, 1, …, n−1`
    /// in order. Optimal merge trees always satisfy it (§2, citing \[6\]).
    pub fn has_preorder_property(&self) -> bool {
        self.preorder().iter().copied().eq(0..self.len())
    }

    /// Like [`Self::has_preorder_property`] but reports the first violation.
    pub fn check_preorder_property(&self) -> Result<(), ModelError> {
        for (expected, found) in self.preorder().into_iter().enumerate() {
            if expected != found {
                return Err(ModelError::PreorderViolation { expected, found });
            }
        }
        Ok(())
    }

    /// The parent array (index 0 maps to `None`), the inverse of
    /// [`Self::from_parents`]. Useful for snapshots and serialization.
    pub fn to_parents(&self) -> Vec<Option<usize>> {
        (0..self.len()).map(|i| self.parent(i)).collect()
    }

    /// Grafts `other` onto this tree as a new *last child of the root*,
    /// relabeling `other`'s nodes to follow this tree's nodes. This is the
    /// recursive composition of Lemma 2 / Theorem 7: `T = T' ⊕ T''`.
    pub fn attach_as_last_root_child(&self, other: &Self) -> Self {
        let n1 = self.len();
        let n2 = other.len();
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(n1 + n2);
        parents.extend(self.to_parents());
        for i in 0..n2 {
            parents.push(match other.parent(i) {
                None => Some(0),         // other's root becomes a child of our root
                Some(p) => Some(p + n1), // internal edges shift by n1
            });
        }
        Self::from_parents(&parents).expect("grafting preserves validity")
    }

    /// Appends the next arrival (label [`Self::len`]) as the new *last
    /// child* of `parent`, maintaining sibling order and last-descendant
    /// labels incrementally — the arrival-at-a-time mirror of
    /// [`Self::from_parents`], in `O(depth(parent))` instead of `O(n)`.
    ///
    /// The new node carries the largest label, so it becomes `z(x)` for
    /// every ancestor `x` — exactly the update the incremental engines
    /// lean on when they extend tentative stream lengths.
    pub fn push_arrival(&mut self, parent: usize) -> Result<usize, ModelError> {
        let node = self.len();
        if parent >= node {
            return Err(ModelError::ParentNotEarlier { node, parent });
        }
        self.parent.push(label(parent));
        self.children.push(Vec::new());
        self.children[parent].push(label(node));
        self.last_descendant.push(label(node));
        let mut cur = parent;
        loop {
            self.last_descendant[cur] = label(node);
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        Ok(node)
    }

    /// Compact single-line rendering, e.g. `(0 (1) (2 (3)))`.
    pub fn to_sexpr(&self) -> String {
        fn go(tree: &MergeTree, node: usize, out: &mut String) {
            use std::fmt::Write;
            let _ = write!(out, "({node}");
            for &c in tree.children(node) {
                out.push(' ');
                go(tree, c as usize, out);
            }
            out.push(')');
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 4: the optimal merge tree for n = 8, merge cost 21.
    /// Root A=0 with children B=1, C=2, D=3, F=5; E=4 merges to D; G=6 and
    /// H=7 merge to F: `(0 (1) (2) (3 (4)) (5 (6) (7)))`.
    pub(crate) fn fig4_tree() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn from_parents_rejects_bad_shapes() {
        assert_eq!(
            MergeTree::from_parents(&[]).unwrap_err(),
            ModelError::EmptyTree
        );
        assert_eq!(
            MergeTree::from_parents(&[Some(0)]).unwrap_err(),
            ModelError::RootHasParent
        );
        assert_eq!(
            MergeTree::from_parents(&[None, None]).unwrap_err(),
            ModelError::MissingParent { node: 1 }
        );
        assert_eq!(
            MergeTree::from_parents(&[None, Some(1)]).unwrap_err(),
            ModelError::ParentNotEarlier { node: 1, parent: 1 }
        );
        assert_eq!(
            MergeTree::from_parents(&[None, Some(2), Some(1)]).unwrap_err(),
            ModelError::ParentNotEarlier { node: 1, parent: 2 }
        );
    }

    #[test]
    fn fig4_structure() {
        let t = fig4_tree();
        assert_eq!(t.len(), 8);
        assert_eq!(t.children(0), &[1, 2, 3, 5]);
        assert_eq!(t.children(3), &[4]);
        assert_eq!(t.children(5), &[6, 7]);
        assert!(t.has_preorder_property());
        assert_eq!(t.last_arrival(), 7);
    }

    #[test]
    fn fig4_last_descendants() {
        let t = fig4_tree();
        // z(A)=H, z(D)=E, z(F)=H, z(leaf)=leaf.
        assert_eq!(t.last_descendant(0), 7);
        assert_eq!(t.last_descendant(3), 4);
        assert_eq!(t.last_descendant(5), 7);
        assert_eq!(t.last_descendant(2), 2);
        assert_eq!(t.last_descendant(7), 7);
    }

    #[test]
    fn fig4_paths() {
        let t = fig4_tree();
        // Client H arrives at 7; the paper's example: x0=0, x1=5, x2=7.
        assert_eq!(t.path_from_root(7), vec![0, 5, 7]);
        assert_eq!(t.path_from_root(0), vec![0]);
        assert_eq!(t.path_from_root(4), vec![0, 3, 4]);
    }

    #[test]
    fn preorder_property_detects_violation() {
        // 0 -> {1, 2}, but 3 hangs under 1: preorder = 0,1,3,2.
        let t = MergeTree::from_parents(&[None, Some(0), Some(0), Some(1)]).unwrap();
        assert!(!t.has_preorder_property());
        assert_eq!(
            t.check_preorder_property().unwrap_err(),
            ModelError::PreorderViolation {
                expected: 2,
                found: 3
            }
        );
    }

    #[test]
    fn chain_and_star_shapes() {
        let chain = MergeTree::chain(4);
        assert_eq!(chain.to_parents(), vec![None, Some(0), Some(1), Some(2)]);
        assert_eq!(chain.height(), 3);
        assert!(chain.has_preorder_property());

        let star = MergeTree::star(4);
        assert_eq!(star.to_parents(), vec![None, Some(0), Some(0), Some(0)]);
        assert_eq!(star.height(), 1);
        assert!(star.has_preorder_property());

        let single = MergeTree::singleton();
        assert_eq!(single.len(), 1);
        assert_eq!(single.height(), 0);
    }

    #[test]
    fn attach_reproduces_lemma2_composition() {
        // T' = (0 (1)), T'' = (0 (1)) -> combined (0 (1) (2 (3))).
        let t1 = MergeTree::chain(2);
        let t2 = MergeTree::chain(2);
        let t = t1.attach_as_last_root_child(&t2);
        assert_eq!(t.to_parents(), vec![None, Some(0), Some(0), Some(2)]);
        assert!(t.has_preorder_property());
        assert_eq!(t.last_descendant(2), 3);
    }

    #[test]
    fn sexpr_rendering() {
        assert_eq!(fig4_tree().to_sexpr(), "(0 (1) (2) (3 (4)) (5 (6) (7)))");
        assert_eq!(MergeTree::singleton().to_sexpr(), "(0)");
    }

    #[test]
    fn roundtrip_parents() {
        let t = fig4_tree();
        let t2 = MergeTree::from_parents(&t.to_parents()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn depths() {
        let t = fig4_tree();
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(1), 1);
        assert_eq!(t.depth(4), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn push_arrival_grows_fig4_incrementally() {
        let mut t = MergeTree::singleton();
        for p in [0usize, 0, 0, 3, 0, 5, 5] {
            t.push_arrival(p).unwrap();
        }
        assert_eq!(t, fig4_tree());
        // Every intermediate prefix is the truncated batch tree.
        let parents = fig4_tree().to_parents();
        let mut grown = MergeTree::singleton();
        for i in 1..parents.len() {
            grown.push_arrival(parents[i].unwrap()).unwrap();
            assert_eq!(grown, MergeTree::from_parents(&parents[..=i]).unwrap());
        }
    }

    #[test]
    fn push_arrival_rejects_future_parents() {
        let mut t = MergeTree::singleton();
        assert_eq!(
            t.push_arrival(1).unwrap_err(),
            ModelError::ParentNotEarlier { node: 1, parent: 1 }
        );
        assert_eq!(
            t.push_arrival(7).unwrap_err(),
            ModelError::ParentNotEarlier { node: 1, parent: 7 }
        );
        // The tree is unchanged after a rejected push.
        assert_eq!(t, MergeTree::singleton());
    }
}
