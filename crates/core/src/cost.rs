//! Stream lengths and costs (paper §2, Lemmas 1–2; §3.4, Lemmas 17–18).
//!
//! In the receive-two model a non-root stream `x` with parent `p(x)` and
//! last subtree arrival `z(x)` must run for exactly
//!
//! ```text
//! ℓ(x) = 2·z(x) − x − p(x)          (Lemma 1)
//!       = (z(x) − x) + (z(x) − p(x))
//! ```
//!
//! slots; in the receive-all model only `ω(x) = z(x) − p(x)` (Lemma 17).
//! The *merge cost* of a tree is the sum of non-root lengths, and the *full
//! cost* of a forest with `s` trees adds `s·L` for the roots.

use crate::forest::MergeForest;
use crate::time::TimeScalar;
use crate::tree::MergeTree;

/// Per-node stream lengths in the receive-two model (Lemma 1).
///
/// `times[i]` is the arrival time of local node `i`; entry 0 (the root) is
/// reported as `T::zero()` — the root's length is the media length `L`,
/// which the tree does not know.
///
/// # Panics
/// Panics if `times.len() != tree.len()`.
pub fn lengths<T: TimeScalar>(tree: &MergeTree, times: &[T]) -> Vec<T> {
    assert_eq!(
        times.len(),
        tree.len(),
        "arrival slice must match tree size"
    );
    let mut out = Vec::with_capacity(tree.len());
    out.push(T::zero());
    for x in 1..tree.len() {
        let p = tree.parent(x).expect("non-root has a parent");
        let z = tree.last_descendant(x);
        // ℓ(x) = (z − x) + (z − p): kept in two differences so the formula
        // is exact for i64 and numerically stable for f64.
        out.push((times[z] - times[x]) + (times[z] - times[p]));
    }
    out
}

/// Per-node stream lengths in the receive-all model (Lemma 17):
/// `ω(x) = z(x) − p(x)`.
///
/// # Panics
/// Panics if `times.len() != tree.len()`.
pub fn receive_all_lengths<T: TimeScalar>(tree: &MergeTree, times: &[T]) -> Vec<T> {
    assert_eq!(
        times.len(),
        tree.len(),
        "arrival slice must match tree size"
    );
    let mut out = Vec::with_capacity(tree.len());
    out.push(T::zero());
    for x in 1..tree.len() {
        let p = tree.parent(x).expect("non-root has a parent");
        let z = tree.last_descendant(x);
        out.push(times[z] - times[p]);
    }
    out
}

/// `Mcost(T)`: the sum of non-root stream lengths (receive-two).
pub fn merge_cost<T: TimeScalar>(tree: &MergeTree, times: &[T]) -> T {
    lengths(tree, times)
        .into_iter()
        .skip(1)
        .fold(T::zero(), |acc, l| acc + l)
}

/// `Mcost_ω(T)`: the sum of non-root stream lengths (receive-all).
pub fn receive_all_merge_cost<T: TimeScalar>(tree: &MergeTree, times: &[T]) -> T {
    receive_all_lengths(tree, times)
        .into_iter()
        .skip(1)
        .fold(T::zero(), |acc, l| acc + l)
}

/// `Fcost(F) = s·L + Σ Mcost(Tᵢ)`: total server bandwidth of a forest, in
/// slot-units, for media length `media_len` slots (receive-two).
pub fn full_cost<T: TimeScalar>(forest: &MergeForest, times: &[T], media_len: u64) -> T {
    forest_cost_with(forest, times, media_len, merge_cost)
}

/// Receive-all analogue of [`full_cost`] (`Fcost_ω`, §3.4).
pub fn receive_all_full_cost<T: TimeScalar>(
    forest: &MergeForest,
    times: &[T],
    media_len: u64,
) -> T {
    forest_cost_with(forest, times, media_len, receive_all_merge_cost)
}

fn forest_cost_with<T: TimeScalar>(
    forest: &MergeForest,
    times: &[T],
    media_len: u64,
    tree_cost: impl Fn(&MergeTree, &[T]) -> T,
) -> T {
    assert_eq!(
        times.len(),
        forest.total_arrivals(),
        "arrival slice must match forest size"
    );
    let mut total = T::zero();
    for (range, tree) in forest.iter_with_ranges() {
        total = total + T::from_slots(media_len) + tree_cost(tree, &times[range]);
    }
    total
}

/// The largest part number any client needs from each stream — equal to its
/// length for non-roots, and to `min(L, …)`-free exact demand for the root:
/// the root must broadcast parts `1..=L` whenever `z − r ≤ L − 1`.
///
/// Useful for checking that a tree's schedule never has to broadcast past
/// the end of the media (`ℓ(x) ≤ L`), see `validate`.
pub fn max_part_needed(tree: &MergeTree, times: &[i64], media_len: u64) -> Vec<i64> {
    let mut out = lengths(tree, times);
    out[0] = media_len as i64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::consecutive_slots;

    fn fig4() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn fig3_stream_lengths() {
        // Paper, Fig. 3 (L = 15, n = 8): stream F runs 9 slots; H runs 2;
        // the full length table of the concrete diagram.
        let t = fig4();
        let times = consecutive_slots(8);
        let l = lengths(&t, &times);
        assert_eq!(l, vec![0, 1, 2, 5, 1, 9, 1, 2]);
    }

    #[test]
    fn fig4_merge_cost_is_21() {
        let t = fig4();
        let times = consecutive_slots(8);
        assert_eq!(merge_cost(&t, &times), 21);
    }

    #[test]
    fn lemma1_leaf_case() {
        // For a leaf, ℓ(x) = x − p(x).
        let t = MergeTree::star(5);
        let times = consecutive_slots(5);
        assert_eq!(lengths(&t, &times), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lemma2_recursive_decomposition() {
        // Mcost(T) = Mcost(T') + Mcost(T'') + (2z − x − r) where x is the
        // last child of the root. Verify on Fig. 4: T' = first 5 arrivals,
        // T'' = last 3, x = 5, z = 7, r = 0 -> 21 = 9 + 3 + 9.
        let t = fig4();
        let times = consecutive_slots(8);
        let t1 = MergeTree::from_parents(&[None, Some(0), Some(0), Some(0), Some(3)]).unwrap();
        let t2 = MergeTree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let m1 = merge_cost(&t1, &consecutive_slots(5));
        let m2 = merge_cost(&t2, &consecutive_slots(3));
        assert_eq!(m1, 9);
        assert_eq!(m2, 3);
        assert_eq!(merge_cost(&t, &times), m1 + m2 + (2 * 7 - 5));
    }

    #[test]
    fn costs_respect_general_times() {
        // A chain 0 -> 1 -> 2 over non-uniform times.
        let t = MergeTree::chain(3);
        let times = [0i64, 3, 4];
        // ℓ(1) = 2z(1)−1·t1−t0 with z(1)=2: (4−3)+(4−0) = 5; ℓ(2) = 4−3 = 1.
        assert_eq!(lengths(&t, &times), vec![0, 5, 1]);
        assert_eq!(merge_cost(&t, &times), 6);
    }

    #[test]
    fn continuous_times_match_integer_times() {
        let t = fig4();
        let int_times = consecutive_slots(8);
        let f_times: Vec<f64> = int_times.iter().map(|&x| x as f64).collect();
        let li = merge_cost(&t, &int_times);
        let lf = merge_cost(&t, &f_times);
        assert!((lf - li as f64).abs() < 1e-12);
    }

    #[test]
    fn receive_all_lengths_lemma17() {
        // ω(x) = z(x) − p(x); on Fig. 4: ω(5) = 7 − 0 = 7 (vs ℓ(5) = 9).
        let t = fig4();
        let times = consecutive_slots(8);
        let w = receive_all_lengths(&t, &times);
        assert_eq!(w, vec![0, 1, 2, 4, 1, 7, 1, 2]);
        assert_eq!(receive_all_merge_cost(&t, &times), 18);
    }

    #[test]
    fn receive_all_never_exceeds_receive_two() {
        let trees = [fig4(), MergeTree::chain(8), MergeTree::star(8)];
        let times = consecutive_slots(8);
        for t in &trees {
            let two = lengths(t, &times);
            let all = receive_all_lengths(t, &times);
            for (a, b) in all.iter().zip(two.iter()) {
                assert!(a <= b);
            }
        }
    }

    #[test]
    fn full_cost_fig3_example() {
        // Paper: for L = 15, n = 8 the single-tree forest has
        // Fcost = 1·L + Mcost(T) = 15 + 21 = 36.
        let forest = MergeForest::single(fig4());
        let times = consecutive_slots(8);
        assert_eq!(full_cost(&forest, &times, 15), 36);
    }

    #[test]
    fn full_cost_two_trees() {
        // Paper: L = 15, n = 14 optimal has two trees of 7 arrivals,
        // Fcost = 2·15 + 17 + 17 = 64. Check the arithmetic with explicit
        // optimal 7-trees: (0 (1) (2) (3 (4)) (5 (6))) has cost 17.
        let t7 =
            MergeTree::from_parents(&[None, Some(0), Some(0), Some(0), Some(3), Some(0), Some(5)])
                .unwrap();
        assert_eq!(merge_cost(&t7, &consecutive_slots(7)), 17);
        let forest = MergeForest::from_trees(vec![t7.clone(), t7]).unwrap();
        let times = consecutive_slots(14);
        assert_eq!(full_cost(&forest, &times, 15), 64);
    }

    #[test]
    fn max_part_needed_includes_root_media() {
        let t = fig4();
        let times = consecutive_slots(8);
        let parts = max_part_needed(&t, &times, 15);
        assert_eq!(parts[0], 15);
        assert_eq!(parts[5], 9);
    }

    #[test]
    #[should_panic]
    fn mismatched_times_panic() {
        let t = fig4();
        let _ = lengths(&t, &consecutive_slots(7));
    }
}
