#![forbid(unsafe_code)]
//! Model layer for delay-guaranteed Media-on-Demand with stream merging
//! (Bar-Noy–Goshi–Ladner, SPAA'03 / JDA'06, §2).
//!
//! # The model in brief
//!
//! Time is slotted; the slot length is the guaranteed start-up delay. A media
//! object is `L` slots long. At the end of slot `t` a stream may start to
//! serve the (imaginary) client aggregating every real request of that slot.
//! Clients can receive **two** streams at once while playing from their
//! buffer, so a later stream can *merge* into an earlier one and terminate —
//! the truncation is where server bandwidth is saved.
//!
//! A solution is a [`MergeForest`] of [`MergeTree`]s over the arrival
//! sequence. Tree structure alone determines every stream's length
//! (Lemma 1: `ℓ(x) = 2z(x) − x − p(x)`, [`cost::lengths`]), each client's
//! [`ReceivingProgram`] (§2, "Receiving programs"), the buffer each client
//! needs (Lemma 15, [`buffer::required_buffer`]) and therefore the total
//! server bandwidth ([`cost::merge_cost`], [`cost::full_cost`]).
//!
//! The crate is deliberately *policy-free*: it defines what a solution is and
//! what it costs. The algorithms that find good solutions live in
//! `sm-offline` (optimal, §3) and `sm-online` (on-line, §4); `sm-sim`
//! executes solutions slot-by-slot and re-derives every quantity defined here
//! by observation, acting as a correctness oracle.
//!
//! # Time axes
//!
//! The delay-guaranteed results use consecutive integer arrivals `0..n`; the
//! dyadic comparison algorithm runs on arbitrary real arrival times. Cost
//! machinery is therefore generic over [`TimeScalar`], implemented for `i64`
//! (exact, slotted) and `f64` (continuous).

pub mod alloc_counter;
pub mod arena;
pub mod buffer;
pub mod cost;
pub mod diagram;
pub mod error;
pub mod fanin;
pub mod forest;
pub mod parallel;
pub mod receive_all_program;
pub mod receiving;
pub mod time;
pub mod tree;
pub mod validate;

pub use arena::TreeArena;
pub use buffer::{buffer_profile, required_buffer};
pub use cost::{full_cost, lengths, merge_cost, receive_all_lengths, receive_all_merge_cost};
pub use error::ModelError;
pub use fanin::merge_runs;
pub use forest::MergeForest;
pub use parallel::{parallel_map, pipeline};
pub use receive_all_program::ReceiveAllProgram;
pub use receiving::{ReceivingProgram, StageSegment};
pub use time::{consecutive_slots, TimeScalar};
pub use tree::MergeTree;
pub use validate::{validate_forest, validate_tree, ValidationOptions};
