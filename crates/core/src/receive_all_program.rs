//! Receiving programs for the **receive-all** model (§3.4).
//!
//! When a client may listen to every stream on its root path at once, the
//! staged receive-two rules collapse: a client arriving at `x_k` with path
//! `x_0 < … < x_k` tunes to all `k+1` streams at its arrival and takes from
//! stream `x_i` exactly the parts (Lemma 17's proof)
//!
//! ```text
//! own stream x_k : [1, x_k − x_{k−1}]
//! inner x_i      : [1 + (x_k − x_i), x_k − x_{i−1}]
//! root x_0       : [1 + (x_k − x_0), L]
//! ```
//!
//! Consecutive ranges are contiguous, every part arrives live (stream `x_i`
//! broadcasts part `q` during `[x_i + q − 1, x_i + q)`, which is at or after
//! the client's arrival for every part it takes), and the last part needed
//! from `x_i` is `x_k − x_{i−1} ≤ z(x_i) − p(x_i) = ω(x_i)` — the Lemma 17
//! stream length, which [`crate::cost::receive_all_lengths`] computes. The
//! [`ReceiveAllProgram::verify`] method re-derives all of this per client,
//! giving the receive-all model the same program-level oracle the
//! receive-two model has in [`crate::receiving`].

use crate::cost;
use crate::error::ModelError;
use crate::receiving::StageSegment;
use crate::tree::MergeTree;

/// The complete receive-all program of one client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiveAllProgram {
    /// Local index of the client's own arrival.
    pub client: usize,
    /// Root path `x_0 < … < x_k` (local indices).
    pub path: Vec<usize>,
    /// Segments in part order (own stream first, root last). Possibly-empty
    /// segments are retained so `segments.len() == path.len()`.
    pub segments: Vec<StageSegment>,
}

impl ReceiveAllProgram {
    /// Builds the receive-all program of local arrival `client`.
    ///
    /// # Panics
    /// Panics if `times.len() != tree.len()` or `client` is out of range.
    pub fn build(tree: &MergeTree, times: &[i64], media_len: u64, client: usize) -> Self {
        assert_eq!(times.len(), tree.len());
        let path = tree.path_from_root(client);
        let k = path.len() - 1;
        let tk = times[path[k]];
        let media = media_len as i64;
        let mut segments = Vec::with_capacity(path.len());
        for j in (0..=k).rev() {
            let tj = times[path[j]];
            let first = if j == k { 1 } else { 1 + (tk - tj) };
            let last = if j == 0 {
                media
            } else {
                tk - times[path[j - 1]]
            };
            segments.push(StageSegment {
                stream: path[j],
                first_part: first,
                last_part: last,
            });
        }
        Self {
            client,
            path,
            segments,
        }
    }

    /// Total number of parts the program delivers.
    pub fn total_parts(&self) -> i64 {
        self.segments.iter().map(StageSegment::len).sum()
    }

    /// Number of streams received simultaneously at the client's arrival —
    /// the whole path in the receive-all model (the quantity the
    /// receive-two model caps at 2).
    pub fn max_concurrent(&self) -> usize {
        self.segments.iter().filter(|s| !s.is_empty()).count()
    }

    /// Maximum buffered parts: everything is received during
    /// `[x_k, x_k + (x_k − x_{i−1}) − (x_k − x_i))`… computed exactly by
    /// sweeping the per-slot received/played balance.
    pub fn required_buffer(&self, times: &[i64], media_len: u64) -> i64 {
        let tk = times[self.client];
        let media = media_len as i64;
        // Breakpoints: arrival + every segment end + playback end.
        let mut best = 0i64;
        let mut points: Vec<i64> = Vec::with_capacity(self.segments.len() * 2 + 2);
        for seg in &self.segments {
            if seg.is_empty() {
                continue;
            }
            points.push(times[seg.stream] + seg.first_part - 1);
            points.push(times[seg.stream] + seg.last_part);
        }
        points.push(tk);
        points.push(tk + media);
        points.sort_unstable();
        points.dedup();
        for &t in &points {
            let mut received = 0i64;
            for seg in &self.segments {
                if seg.is_empty() {
                    continue;
                }
                let start = times[seg.stream] + seg.first_part - 1;
                received += (t - start).clamp(0, seg.len());
            }
            let played = (t - tk).clamp(0, media);
            best = best.max(received - played);
        }
        best
    }

    /// Verifies the program: contiguous coverage of `1..=L`, every part
    /// within the media, every part broadcast at or after the client's
    /// arrival (live reception) and no later than its playback slot, and
    /// every source stream long enough (Lemma 17 lengths).
    pub fn verify(
        &self,
        times: &[i64],
        media_len: u64,
        tree: &MergeTree,
    ) -> Result<(), ModelError> {
        let media = media_len as i64;
        let tk = times[self.client];
        let omega = cost::receive_all_lengths(tree, times);
        let mut expected = 1i64;
        for seg in &self.segments {
            if seg.is_empty() {
                continue;
            }
            if seg.first_part < 1 || seg.last_part > media {
                return Err(ModelError::PartOutOfRange {
                    part: seg.first_part.min(seg.last_part),
                });
            }
            if seg.first_part != expected {
                return Err(ModelError::CoverageGap {
                    expected_part: expected,
                    found_part: seg.first_part,
                });
            }
            // Live reception: the first part taken from this stream must be
            // on air no earlier than the client's arrival...
            let first_slot = times[seg.stream] + seg.first_part - 1;
            if first_slot < tk {
                return Err(ModelError::CoverageGap {
                    expected_part: seg.first_part,
                    found_part: first_slot - times[seg.stream] + 1,
                });
            }
            // ...and every part must arrive by its playback slot.
            for part in [seg.first_part, seg.last_part] {
                let receive = times[seg.stream] + part - 1;
                let playback = tk + part - 1;
                if receive > playback {
                    return Err(ModelError::PartOutOfRange { part });
                }
            }
            // The source stream must broadcast long enough (ω-length), except
            // the root which carries the whole media.
            if seg.stream != self.path[0] && seg.last_part > omega[seg.stream] {
                return Err(ModelError::LengthExceedsMedia { node: seg.stream });
            }
            expected = seg.last_part + 1;
        }
        if expected != media + 1 {
            return Err(ModelError::CoverageGap {
                expected_part: expected,
                found_part: media + 1,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::consecutive_slots;

    /// The Fig. 4 tree shape (also used by the receive-two tests).
    fn fig4_tree() -> MergeTree {
        MergeTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(3),
            Some(0),
            Some(5),
            Some(5),
        ])
        .unwrap()
    }

    #[test]
    fn client_h_program_matches_lemma17() {
        // Client 7, path 0 -> 5 -> 7, L = 15:
        // own: [1, 7−5] = [1,2]; from 5: [1+(7−5), 7−0] = [3,7];
        // from 0: [1+7, 15] = [8,15].
        let tree = fig4_tree();
        let times = consecutive_slots(8);
        let p = ReceiveAllProgram::build(&tree, &times, 15, 7);
        assert_eq!(p.path, vec![0, 5, 7]);
        let parts: Vec<(i64, i64)> = p
            .segments
            .iter()
            .map(|s| (s.first_part, s.last_part))
            .collect();
        assert_eq!(parts, vec![(1, 2), (3, 7), (8, 15)]);
        p.verify(&times, 15, &tree).unwrap();
    }

    #[test]
    fn every_client_of_fig4_verifies() {
        let tree = fig4_tree();
        let times = consecutive_slots(8);
        for c in 0..8 {
            let p = ReceiveAllProgram::build(&tree, &times, 15, c);
            p.verify(&times, 15, &tree)
                .unwrap_or_else(|e| panic!("client {c}: {e}"));
            assert_eq!(p.total_parts(), 15);
        }
    }

    #[test]
    fn root_client_listens_to_one_stream() {
        let tree = fig4_tree();
        let times = consecutive_slots(8);
        let p = ReceiveAllProgram::build(&tree, &times, 15, 0);
        assert_eq!(p.max_concurrent(), 1);
        assert_eq!(p.required_buffer(&times, 15), 0);
    }

    #[test]
    fn concurrency_is_path_length() {
        let tree = fig4_tree();
        let times = consecutive_slots(8);
        let p = ReceiveAllProgram::build(&tree, &times, 15, 7);
        assert_eq!(p.max_concurrent(), 3); // path 0 -> 5 -> 7
                                           // Deep chains need as many receivers as their depth + 1.
        let chain = MergeTree::chain(5);
        let times = consecutive_slots(5);
        let p = ReceiveAllProgram::build(&chain, &times, 12, 4);
        assert_eq!(p.max_concurrent(), 5);
        p.verify(&times, 12, &chain).unwrap();
    }

    #[test]
    fn buffer_grows_with_distance_from_root() {
        let tree = MergeTree::star(6);
        let times = consecutive_slots(6);
        let mut last = -1i64;
        for c in 1..6 {
            let p = ReceiveAllProgram::build(&tree, &times, 20, c);
            let b = p.required_buffer(&times, 20);
            assert!(b >= last, "client {c}");
            last = b;
        }
    }

    #[test]
    fn star_buffers_match_the_lemma15_bound_in_both_models() {
        // On a star, both models buffer exactly the out-of-order tail
        // min(d, L−d): the receive-all client consumes its own stream live
        // and only holds the root's tail parts until playback reaches them.
        let tree = MergeTree::star(8);
        let times = consecutive_slots(8);
        let media = 10u64;
        for c in 1..8usize {
            let ra = ReceiveAllProgram::build(&tree, &times, media, c);
            let buffer_ra = ra.required_buffer(&times, media);
            let buffer_r2 = crate::buffer::required_buffer(&tree, &times, media, c);
            let d = times[c] - times[0];
            assert_eq!(buffer_r2, d.min(media as i64 - d), "client {c}");
            assert_eq!(buffer_ra, buffer_r2, "client {c}");
        }
    }

    #[test]
    fn verify_rejects_wrong_media_length() {
        let tree = fig4_tree();
        let times = consecutive_slots(8);
        let p = ReceiveAllProgram::build(&tree, &times, 15, 7);
        // Claiming a shorter media leaves a coverage overrun.
        assert!(p.verify(&times, 12, &tree).is_err());
    }
}
