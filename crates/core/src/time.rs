//! Time-axis abstraction.
//!
//! All stream-length and cost formulas in the paper are linear expressions in
//! arrival times (`ℓ(x) = 2z − x − p`), so they evaluate exactly over `i64`
//! slots and approximately-but-stably over `f64` seconds. [`TimeScalar`]
//! captures just the operations those formulas need.

use std::fmt::Debug;
use std::ops::{Add, Sub};

/// Scalar type usable as an arrival time / duration.
///
/// Implemented for `i64` (exact slotted arithmetic — the delay-guaranteed
/// model) and `f64` (continuous time — the dyadic comparison algorithm).
pub trait TimeScalar:
    Copy + PartialOrd + Debug + Add<Output = Self> + Sub<Output = Self> + PartialEq
{
    /// Additive identity.
    fn zero() -> Self;

    /// Conversion for reporting/metrics (never used in exact paths).
    fn to_f64(self) -> f64;

    /// Construction from a slot count (used to inject `L` into cost sums).
    fn from_slots(slots: u64) -> Self;
}

impl TimeScalar for i64 {
    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn from_slots(slots: u64) -> Self {
        i64::try_from(slots).expect("slot count exceeds i64 range")
    }
}

impl TimeScalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn from_slots(slots: u64) -> Self {
        slots as f64
    }
}

/// The canonical delay-guaranteed arrival sequence `0, 1, …, n−1`.
///
/// The paper reduces a delay-guaranteed system to exactly this instance: one
/// imaginary client per slot (§2, "Remark").
pub fn consecutive_slots(n: usize) -> Vec<i64> {
    (0..n as i64).collect()
}

/// `true` iff `times` is strictly increasing (a valid arrival sequence).
pub fn is_strictly_increasing<T: TimeScalar>(times: &[T]) -> bool {
    times.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_slots_shape() {
        assert_eq!(consecutive_slots(0), Vec::<i64>::new());
        assert_eq!(consecutive_slots(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn strictly_increasing_checks() {
        assert!(is_strictly_increasing::<i64>(&[]));
        assert!(is_strictly_increasing(&[3i64]));
        assert!(is_strictly_increasing(&[0i64, 1, 5]));
        assert!(!is_strictly_increasing(&[0i64, 0]));
        assert!(!is_strictly_increasing(&[2.0f64, 1.0]));
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(i64::from_slots(15), 15);
        assert_eq!(f64::from_slots(15), 15.0);
        assert_eq!(7i64.to_f64(), 7.0);
        assert_eq!(i64::zero(), 0);
        assert_eq!(f64::zero(), 0.0);
    }
}
