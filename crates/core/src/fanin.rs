//! Pipeline fan-in: stable k-way merge of per-source batches.
//!
//! The serving layer generates one sorted arrival run *per title* for each
//! pipeline batch and needs them interleaved into a single globally sorted
//! run before ingest. [`merge_runs`] does exactly that: a stable k-way
//! merge over individually sorted runs, where ties keep the earlier run's
//! element first — so "title 0 before title 1 at equal times" is a
//! deterministic, documented property rather than an accident of the sort.
//!
//! `k` is the number of sources feeding the pipeline (a handful of titles),
//! so the merge scans the `k` run heads per emitted element: `O(n·k)` with
//! no heap bookkeeping and a single output allocation.

/// Stable k-way merge of individually sorted runs into one sorted vector.
///
/// `before(a, b)` is the strict ordering predicate ("a sorts ahead of b").
/// Within one run the caller guarantees elements are already in order;
/// across runs, ties (`!before(a, b) && !before(b, a)`) resolve to the
/// run with the smaller index, making the merge stable.
///
/// ```
/// use sm_core::merge_runs;
///
/// let runs = vec![vec![(1.0, 'a'), (4.0, 'a')], vec![(1.0, 'b'), (2.0, 'b')]];
/// let merged = merge_runs(runs, |x, y| x.0 < y.0);
/// assert_eq!(merged, vec![(1.0, 'a'), (1.0, 'b'), (2.0, 'b'), (4.0, 'a')]);
/// ```
pub fn merge_runs<T, F>(mut runs: Vec<Vec<T>>, mut before: F) -> Vec<T>
where
    F: FnMut(&T, &T) -> bool,
{
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Each run is reversed once so its head is the cheap-to-pop tail.
    for run in &mut runs {
        run.reverse();
    }
    while out.len() < total {
        let mut best: Option<usize> = None;
        for i in 0..runs.len() {
            let Some(head) = runs[i].last() else { continue };
            best = Some(match best {
                None => i,
                // Strict `before` keeps the earlier run on ties: stability.
                Some(b) => match runs[b].last() {
                    Some(held) if before(head, held) => i,
                    _ => b,
                },
            });
        }
        match best.and_then(|b| runs[b].pop()) {
            Some(x) => out.push(x),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::merge_runs;

    #[test]
    fn merges_disjoint_runs_in_order() {
        let merged = merge_runs(vec![vec![1, 4, 9], vec![2, 3, 10], vec![0, 7]], |a, b| {
            a < b
        });
        assert_eq!(merged, vec![0, 1, 2, 3, 4, 7, 9, 10]);
    }

    #[test]
    fn ties_keep_the_earlier_run_first() {
        let merged = merge_runs(
            vec![
                vec![(1, 'a'), (2, 'a')],
                vec![(1, 'b')],
                vec![(1, 'c'), (3, 'c')],
            ],
            |a, b| a.0 < b.0,
        );
        assert_eq!(
            merged,
            vec![(1, 'a'), (1, 'b'), (1, 'c'), (2, 'a'), (3, 'c')]
        );
    }

    #[test]
    fn handles_empty_inputs() {
        assert_eq!(merge_runs(Vec::<Vec<u8>>::new(), |a, b| a < b), vec![]);
        assert_eq!(
            merge_runs(vec![vec![], vec![5u8], vec![]], |a, b| a < b),
            vec![5]
        );
    }

    #[test]
    fn preserves_within_run_order_of_equal_elements() {
        // One run with internal ties: pop order must equal input order.
        let merged = merge_runs(vec![vec![(2, 0), (2, 1), (2, 2)]], |a, b| a.0 < b.0);
        assert_eq!(merged, vec![(2, 0), (2, 1), (2, 2)]);
    }
}
