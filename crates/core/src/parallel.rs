//! Deterministic fork-join parallelism shared across the workspace.
//!
//! Experiment sweeps are embarrassingly parallel across their points, and the
//! §5 multi-object server simulates its titles independently — both shard
//! through [`parallel_map`]: `std::thread::scope` workers pull indices off a
//! shared atomic counter and write results through a `parking_lot` mutex — no
//! `unsafe`, no cloning of inputs, and results are always returned in input
//! order, so parallel callers are bit-identical to sequential ones.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

std::thread_local! {
    /// `true` while the current thread is a `parallel_map` worker: nested
    /// calls (an experiment sweep point invoking the sharded server layer,
    /// say) run sequentially instead of oversubscribing the machine with
    /// `threads²` scoped threads.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Applies `f` to every item, using up to `available_parallelism` threads.
/// Results are returned in input order. Falls back to sequential execution
/// for tiny inputs and when called from inside another `parallel_map`
/// (the outer call already saturates the cores).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 || IN_WORKER.get() {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.set(true);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock() = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn works_on_small_inputs() {
        assert_eq!(parallel_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn handles_non_copy_results() {
        let items = vec!["a", "bb", "ccc"];
        let out = parallel_map(&items, |s| s.to_string());
        assert_eq!(out, vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn nested_calls_run_sequentially_with_identical_results() {
        let outer: Vec<u64> = (0..64).collect();
        let out = parallel_map(&outer, |&x| {
            let inner: Vec<u64> = (0..32).collect();
            // On a worker thread the nested call must not spawn again —
            // and either way the result is the plain sequential one.
            parallel_map(&inner, |&y| x * 100 + y)
                .into_iter()
                .sum::<u64>()
        });
        for (x, &v) in out.iter().enumerate() {
            let expect: u64 = (0..32).map(|y| x as u64 * 100 + y).sum();
            assert_eq!(v, expect);
        }
    }
}
