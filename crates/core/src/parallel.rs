//! Deterministic parallelism shared across the workspace: fork-join sharding
//! and a two-stage pipeline.
//!
//! Experiment sweeps are embarrassingly parallel across their points, and the
//! §5 multi-object server simulates its titles independently — both shard
//! through [`parallel_map`]: `std::thread::scope` workers pull indices off a
//! shared atomic counter and write results through a `parking_lot` mutex — no
//! `unsafe`, no cloning of inputs, and results are always returned in input
//! order, so parallel callers are bit-identical to sequential ones.
//!
//! [`pipeline`] covers the orthogonal shape: a *sequence* of stages where
//! stage `k + 1`'s first half can start before stage `k`'s second half has
//! finished. A dedicated scoped producer thread runs `produce(i)` for every
//! index in order and feeds a bounded depth-`K` SPSC channel; the calling
//! thread pops items in order and runs `consume(i, item)` — so the producer
//! runs up to `K` finished items (plus one in flight) ahead of the consumer
//! while order, results, and the first error are exactly those of the plain
//! sequential interleaving, at any depth. The `sm-server` dynamic simulator
//! uses it to plan up to `K` epochs ahead of materialization
//! (`DynamicConfig::plan_ahead`); each stage may freely call
//! [`parallel_map`] internally (stage threads are *not* marked as workers),
//! while a `pipeline` call from inside a `parallel_map` worker runs inline
//! so nesting never oversubscribes the machine.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};

std::thread_local! {
    /// `true` while the current thread is a `parallel_map` worker: nested
    /// calls (an experiment sweep point invoking the sharded server layer,
    /// say) run sequentially instead of oversubscribing the machine with
    /// `threads²` scoped threads.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Applies `f` to every item, using up to `available_parallelism` threads.
/// Results are returned in input order. Falls back to sequential execution
/// for tiny inputs and when called from inside another `parallel_map`
/// (the outer call already saturates the cores).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 || IN_WORKER.get() {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.set(true);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock() = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        // sm-lint: allow(no-panic-surface) — scope() joined every worker, and each worker fills its claimed slots before exiting
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// Shared state of the bounded SPSC channel connecting the two pipeline
/// stages. One mutex + one condvar serve both directions: with a single
/// producer and a single consumer there is never a thundering herd to
/// distinguish.
struct ChannelState<T> {
    buf: VecDeque<T>,
    /// Producer finished (exhausted or errored); no more items will arrive.
    closed: bool,
    /// Consumer bailed out; the producer should stop instead of blocking.
    aborted: bool,
}

struct Channel<T> {
    state: StdMutex<ChannelState<T>>,
    cv: Condvar,
    depth: usize,
}

/// Recovers the guard from a poisoned `std` lock. Every critical section
/// below is a handful of field reads/writes with no user code, so a poisoned
/// mutex still holds consistent state — recovering beats propagating a panic
/// out of the channel plumbing.
fn recover<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> Channel<T> {
    fn new(depth: usize) -> Self {
        Self {
            state: StdMutex::new(ChannelState {
                buf: VecDeque::with_capacity(depth),
                closed: false,
                aborted: false,
            }),
            cv: Condvar::new(),
            depth,
        }
    }

    /// Blocks until there is room (or the consumer aborted). Returns `false`
    /// when the item was not accepted because of an abort.
    fn push(&self, item: T) -> bool {
        let mut state = recover(self.state.lock());
        while state.buf.len() >= self.depth && !state.aborted {
            state = recover(self.cv.wait(state));
        }
        if state.aborted {
            return false;
        }
        state.buf.push_back(item);
        self.cv.notify_all();
        true
    }

    /// Blocks until an item is available; `None` once the channel is closed
    /// *and* drained (buffered items produced before a close still come out,
    /// preserving the sequential consumption order).
    fn pop(&self) -> Option<T> {
        let mut state = recover(self.state.lock());
        while state.buf.is_empty() && !state.closed {
            state = recover(self.cv.wait(state));
        }
        let item = state.buf.pop_front();
        if item.is_some() {
            self.cv.notify_all();
        }
        item
    }

    fn close(&self) {
        let mut state = recover(self.state.lock());
        state.closed = true;
        self.cv.notify_all();
    }

    fn abort(&self) {
        let mut state = recover(self.state.lock());
        state.aborted = true;
        self.cv.notify_all();
    }
}

/// Runs a two-stage pipeline over the indices `0..n`: `produce(i)` executes
/// on a dedicated scoped thread, `consume(i, item)` on the calling thread, a
/// bounded channel holding at most `depth` finished-but-unconsumed items
/// between them. With `depth == 1` the classic overlap is realized —
/// `produce(k + 1)` runs while `consume(k)` does; a larger depth lets a
/// bursty producer run up to `depth` items (plus one in flight) ahead of a
/// slow consumer before backpressure blocks it, never further.
///
/// Semantics are exactly those of the sequential interleaving
/// `produce(0), consume(0), produce(1), consume(1), …`:
///
/// * items are consumed in index order;
/// * the returned `Vec` holds `consume`'s results in index order;
/// * the first error *in that interleaving* is returned — a `produce(k + 1)`
///   error is only surfaced after `consume(k)` succeeded, and a `consume(k)`
///   error wins over any concurrent later `produce` error;
/// * after an error, no later `consume` runs (the producer may have run
///   ahead by up to `depth + 1` items whose results are discarded).
///
/// The stage threads are deliberately **not** marked as `parallel_map`
/// workers: each stage may shard its own inner work across threads (the
/// dynamic server's per-title materialization does). Conversely, calling
/// `pipeline` from *inside* a `parallel_map` worker runs both stages inline
/// on the worker — same results, no thread explosion. `n <= 1` also runs
/// inline: there is nothing to overlap.
///
/// # Panics
/// Panics if `depth == 0`, and propagates panics from either stage.
pub fn pipeline<U, R, E, P, C>(
    n: usize,
    depth: usize,
    mut produce: P,
    mut consume: C,
) -> Result<Vec<R>, E>
where
    U: Send,
    E: Send,
    P: FnMut(usize) -> Result<U, E> + Send,
    C: FnMut(usize, U) -> Result<R, E>,
{
    // sm-lint: allow(no-panic-surface) — documented `# Panics` API precondition; a zero-depth channel cannot make progress
    assert!(depth >= 1, "pipeline depth must be at least 1");
    if n <= 1 || IN_WORKER.get() {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let item = produce(i)?;
            out.push(consume(i, item)?);
        }
        return Ok(out);
    }

    // Unwind-safety guards: a panic in either stage must release the *other*
    // stage's blocking channel wait before the scope joins, or the process
    // would deadlock instead of propagating the panic.
    struct CloseOnDrop<'a, T>(&'a Channel<T>);
    impl<T> Drop for CloseOnDrop<'_, T> {
        fn drop(&mut self) {
            self.0.close();
        }
    }
    struct AbortOnDrop<'a, T>(&'a Channel<T>);
    impl<T> Drop for AbortOnDrop<'_, T> {
        fn drop(&mut self) {
            self.0.abort();
        }
    }

    let channel: Channel<U> = Channel::new(depth);
    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<E> = None;
    std::thread::scope(|scope| {
        let channel = &channel;
        let producer = scope.spawn(move || -> Option<E> {
            // Closes the channel on every exit — exhaustion, error, or a
            // panic inside `produce` — so the consumer's `pop` never waits
            // on a producer that will not deliver.
            let _close = CloseOnDrop(channel);
            for i in 0..n {
                match produce(i) {
                    Ok(item) => {
                        if !channel.push(item) {
                            return None; // consumer aborted; its error wins
                        }
                    }
                    Err(e) => return Some(e),
                }
            }
            None
        });
        // If `consume` panics below, this unblocks a producer waiting in
        // `push` before the scope joins it (harmless on normal exits: by
        // then the producer has already finished).
        let _abort = AbortOnDrop(channel);
        for i in 0..n {
            match channel.pop() {
                Some(item) => match consume(i, item) {
                    Ok(r) => out.push(r),
                    Err(e) => {
                        first_err = Some(e);
                        channel.abort();
                        break;
                    }
                },
                // Closed and drained early: the producer errored (or
                // panicked) after every item it did produce was consumed —
                // sequential error order.
                None => break,
            }
        }
        match producer.join() {
            Ok(producer_err) => {
                if first_err.is_none() {
                    first_err = producer_err;
                }
            }
            // Re-raise the producer's panic with its original payload.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn works_on_small_inputs() {
        assert_eq!(parallel_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn handles_non_copy_results() {
        let items = vec!["a", "bb", "ccc"];
        let out = parallel_map(&items, |s| s.to_string());
        assert_eq!(out, vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn pipeline_matches_sequential_interleaving() {
        let produced = Mutex::new(Vec::new());
        let consumed = Mutex::new(Vec::new());
        let out: Result<Vec<usize>, ()> = pipeline(
            10,
            1,
            |i| {
                produced.lock().push(i);
                Ok(i * 10)
            },
            |i, item| {
                consumed.lock().push((i, item));
                Ok(item + 1)
            },
        );
        assert_eq!(
            out.unwrap(),
            (0..10).map(|i| i * 10 + 1).collect::<Vec<_>>()
        );
        assert_eq!(*produced.lock(), (0..10).collect::<Vec<_>>());
        assert_eq!(
            *consumed.lock(),
            (0..10).map(|i| (i, i * 10)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pipeline_handles_empty_and_single_item() {
        let none: Result<Vec<u32>, ()> = pipeline(0, 1, |_| Ok(1), |_, x| Ok(x));
        assert_eq!(none.unwrap(), Vec::<u32>::new());
        let one: Result<Vec<u32>, ()> = pipeline(1, 4, |i| Ok(i as u32), |_, x| Ok(x + 5));
        assert_eq!(one.unwrap(), vec![5]);
    }

    #[test]
    fn pipeline_producer_error_surfaces_after_prior_items_consumed() {
        let consumed = Mutex::new(Vec::new());
        let out: Result<Vec<usize>, String> = pipeline(
            8,
            2,
            |i| {
                if i == 3 {
                    Err(format!("produce {i} failed"))
                } else {
                    Ok(i)
                }
            },
            |i, item| {
                consumed.lock().push(i);
                Ok(item)
            },
        );
        assert_eq!(out.unwrap_err(), "produce 3 failed");
        // Everything produced before the failure was consumed, in order.
        assert_eq!(*consumed.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn pipeline_consumer_error_wins_over_later_producer_error() {
        // The producer runs ahead and fails at 3, but the consumer already
        // failed at 2 — sequentially consume(2) happens before produce(3),
        // so the consumer's error must be the one reported.
        let out: Result<Vec<usize>, String> = pipeline(
            8,
            1,
            |i| {
                if i == 3 {
                    Err("producer".to_string())
                } else {
                    Ok(i)
                }
            },
            |i, item| {
                if i == 2 {
                    Err("consumer".to_string())
                } else {
                    Ok(item)
                }
            },
        );
        assert_eq!(out.unwrap_err(), "consumer");
    }

    #[test]
    fn pipeline_consumer_error_stops_producer_promptly_at_any_depth() {
        for depth in [1usize, 2, 4] {
            let produced = AtomicUsize::new(0);
            let out: Result<Vec<usize>, ()> = pipeline(
                1000,
                depth,
                |i| {
                    produced.fetch_add(1, Ordering::Relaxed);
                    Ok(i)
                },
                |i, item| if i == 0 { Err(()) } else { Ok(item) },
            );
            assert!(out.is_err());
            // At most 1 consumed + `depth` buffered + 2 in flight items can
            // be produced before the abort is observed.
            assert!(
                produced.load(Ordering::Relaxed) <= depth + 3,
                "depth {depth}: produced {}",
                produced.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn pipeline_run_ahead_is_bounded_by_depth() {
        // The channel is the backpressure mechanism: at the moment
        // `consume(i)` starts, at most `i + 1` items were popped, at most
        // `depth` more sit finished in the buffer, and one more may be in
        // flight inside `produce` — so the producer can never have started
        // more than `i + depth + 2` productions, no matter how fast it is.
        for depth in [1usize, 2, 4, 8] {
            let produced = AtomicUsize::new(0);
            let out: Result<Vec<usize>, ()> = pipeline(
                200,
                depth,
                |i| {
                    produced.fetch_add(1, Ordering::Relaxed);
                    Ok(i)
                },
                |i, item| {
                    let ahead = produced.load(Ordering::Relaxed);
                    assert!(
                        ahead <= i + depth + 2,
                        "depth {depth}: {ahead} productions started by consume({i})"
                    );
                    Ok(item)
                },
            );
            assert_eq!(out.unwrap().len(), 200);
        }
    }

    #[test]
    fn pipeline_depth_covering_n_lets_the_producer_finish_first() {
        // With depth ≥ n the channel never fills: the producer can run the
        // whole index range to completion while the consumer sits on its
        // first item. The consumer waits for exactly that before touching
        // anything — deadlock here would mean the capacity is not honored.
        const N: usize = 64;
        let produced = AtomicUsize::new(0);
        let out: Result<Vec<usize>, ()> = pipeline(
            N,
            N,
            |i| {
                produced.fetch_add(1, Ordering::Relaxed);
                Ok(i * 3)
            },
            |_, item| {
                while produced.load(Ordering::Relaxed) < N {
                    std::thread::yield_now();
                }
                Ok(item)
            },
        );
        assert_eq!(out.unwrap(), (0..N).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_consumer_panic_propagates_instead_of_deadlocking() {
        // A panicking consumer must release the producer blocked in `push`
        // (depth 1 fills immediately at n = 100) and re-raise, not hang.
        let caught = std::panic::catch_unwind(|| {
            let _: Result<Vec<usize>, ()> = pipeline(100, 1, Ok, |i, item| {
                if i == 1 {
                    panic!("consumer boom");
                }
                Ok(item)
            });
        })
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<&str>(), Some(&"consumer boom"));
    }

    #[test]
    fn pipeline_producer_panic_propagates_with_its_payload() {
        let consumed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(|| {
            let _: Result<Vec<usize>, ()> = pipeline(
                8,
                2,
                |i| {
                    if i == 2 {
                        panic!("producer boom");
                    }
                    Ok(i)
                },
                |_, item| {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    Ok(item)
                },
            );
        })
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<&str>(), Some(&"producer boom"));
        // Everything produced before the panic still reached the consumer.
        assert_eq!(consumed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pipeline_inside_parallel_map_runs_inline_with_identical_results() {
        let outer: Vec<u64> = (0..16).collect();
        let out = parallel_map(&outer, |&x| {
            pipeline::<u64, u64, (), _, _>(8, 1, |i| Ok(x * 100 + i as u64), |_, v| Ok(v * 2))
                .unwrap()
                .into_iter()
                .sum::<u64>()
        });
        for (x, &v) in out.iter().enumerate() {
            let expect: u64 = (0..8).map(|i| (x as u64 * 100 + i) * 2).sum();
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn pipeline_stages_can_run_parallel_map_inside() {
        // Stage bodies are not marked as workers, so their inner
        // parallel_map calls behave exactly like top-level ones.
        let out: Result<Vec<u64>, ()> = pipeline(
            4,
            1,
            |i| {
                let items: Vec<u64> = (0..32).collect();
                Ok(parallel_map(&items, |&y| y + i as u64)
                    .into_iter()
                    .sum::<u64>())
            },
            |_, v| Ok(v),
        );
        let expect: Vec<u64> = (0..4u64).map(|i| (0..32).map(|y| y + i).sum()).collect();
        assert_eq!(out.unwrap(), expect);
    }

    #[test]
    fn nested_calls_run_sequentially_with_identical_results() {
        let outer: Vec<u64> = (0..64).collect();
        let out = parallel_map(&outer, |&x| {
            let inner: Vec<u64> = (0..32).collect();
            // On a worker thread the nested call must not spawn again —
            // and either way the result is the plain sequential one.
            parallel_map(&inner, |&y| x * 100 + y)
                .into_iter()
                .sum::<u64>()
        });
        for (x, &v) in out.iter().enumerate() {
            let expect: u64 = (0..32).map(|y| x as u64 * 100 + y).sum();
            assert_eq!(v, expect);
        }
    }
}
