//! `TreeArena` ↔ `MergeTree` conformance: the flat `u32`-column arena must
//! agree with the pointer-shaped tree on every structural query, on
//! exhaustive small trees and property-sampled larger ones, and reject
//! `u32` overflow as a typed error rather than a panic.

use proptest::prelude::*;
use sm_core::{MergeTree, ModelError, TreeArena};

/// Asserts every structural accessor of `arena` matches `tree`.
fn assert_conforms(tree: &MergeTree, arena: &TreeArena) {
    assert_eq!(arena.len(), tree.len());
    assert!(
        !arena.is_empty(),
        "trees are nonempty, so lowered arenas are"
    );
    for x in 0..tree.len() {
        assert_eq!(arena.parent(x), tree.parent(x), "parent({x})");
        assert_eq!(
            arena.children(x).collect::<Vec<_>>(),
            tree.children(x)
                .iter()
                .map(|&c| c as usize)
                .collect::<Vec<_>>(),
            "children({x})"
        );
        assert_eq!(
            arena.last_descendant(x),
            tree.last_descendant(x),
            "last_descendant({x})"
        );
        assert_eq!(arena.path_from_root(x), tree.path_from_root(x), "path({x})");
    }
    assert_eq!(arena.preorder(), tree.preorder(), "preorder");
    assert_eq!(arena.to_parents(), tree.to_parents(), "to_parents");
}

/// Every valid parent array of length `n` (each node picks any earlier
/// parent), visited via a mixed-radix counter: `(n-1)!`-ish shapes — 5040
/// at `n = 8`, 5914 over `n = 1..=8`.
fn for_each_parent_array(n: usize, mut f: impl FnMut(&[Option<usize>])) {
    let mut parents: Vec<Option<usize>> = vec![None];
    parents.extend((1..n).map(|_| Some(0)));
    loop {
        f(&parents);
        // Increment the mixed-radix counter: digit i counts 0..i.
        let mut i = n;
        loop {
            if i <= 1 {
                return;
            }
            i -= 1;
            let digit = parents[i].unwrap_or(0) + 1;
            if digit < i {
                parents[i] = Some(digit);
                break;
            }
            parents[i] = Some(0);
        }
    }
}

#[test]
fn exhaustive_small_trees_conform_and_round_trip() {
    let mut arena = TreeArena::new();
    let mut shapes = 0usize;
    for n in 1..=8usize {
        for_each_parent_array(n, |parents| {
            shapes += 1;
            let tree = MergeTree::from_parents(parents).expect("parent < child by construction");
            // Lowering into a reused arena must fully overwrite prior state.
            arena.lower_into(&tree).expect("small trees fit u32 labels");
            assert_conforms(&tree, &arena);
            // raise() inverts lower().
            assert_eq!(arena.raise().expect("arena holds a valid tree"), tree);
            // Growing an arena arrival-by-arrival matches lowering the
            // batch-built tree: push_arrival is lower ∘ push_arrival.
            let mut grown = TreeArena::new();
            grown.reset_singleton();
            for p in parents.iter().skip(1) {
                grown
                    .push_arrival(p.expect("non-root nodes have parents"))
                    .expect("small trees fit u32 labels");
            }
            assert_eq!(grown, arena, "incremental growth diverged at {parents:?}");
        });
    }
    assert_eq!(shapes, 1 + 1 + 2 + 6 + 24 + 120 + 720 + 5040);
}

#[test]
fn u32_overflow_is_a_typed_error() {
    assert_eq!(TreeArena::check_capacity(TreeArena::MAX_NODES), Ok(()));
    let err = TreeArena::check_capacity(TreeArena::MAX_NODES + 1)
        .expect_err("one past MAX_NODES must be rejected");
    assert_eq!(
        err,
        ModelError::NodeLimitExceeded {
            nodes: TreeArena::MAX_NODES + 1
        }
    );
    assert!(!err.to_string().is_empty(), "typed error must display");
}

#[test]
fn push_arrival_rejects_forward_parents_without_growing() {
    let mut arena = TreeArena::new();
    arena.reset_singleton();
    assert_eq!(
        arena.push_arrival(5),
        Err(ModelError::ParentNotEarlier { node: 1, parent: 5 })
    );
    assert_eq!(arena.len(), 1, "a rejected push must not grow the arena");
}

/// Strategy: a random merge tree (every node picks an earlier parent).
fn arb_tree(max_n: usize) -> impl Strategy<Value = MergeTree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut v: Vec<Option<usize>> = vec![None];
            v.extend(ps.into_iter().map(Some));
            MergeTree::from_parents(&v).expect("parent < child by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lower_conforms_on_larger_trees(tree in arb_tree(200)) {
        let arena = TreeArena::lower(&tree).expect("trees this small fit u32 labels");
        assert_conforms(&tree, &arena);
        prop_assert_eq!(arena.raise().expect("arena holds a valid tree"), tree);
    }

    #[test]
    fn lower_into_reuse_is_stateless(a in arb_tree(60), b in arb_tree(60)) {
        // Lowering b over a's columns must equal lowering b fresh.
        let mut reused = TreeArena::lower(&a).expect("fits u32");
        reused.lower_into(&b).expect("fits u32");
        prop_assert_eq!(reused, TreeArena::lower(&b).expect("fits u32"));
    }
}
