//! Property tests for the model layer: invariants that must hold for *any*
//! structurally valid merge tree over any strictly increasing time axis.

use proptest::prelude::*;
use sm_core::{
    buffer, consecutive_slots, lengths, merge_cost, receive_all_lengths, MergeTree,
    ReceiveAllProgram, ReceivingProgram,
};

/// Strategy: a random merge tree (every node picks an earlier parent).
fn arb_tree(max_n: usize) -> impl Strategy<Value = MergeTree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut v: Vec<Option<usize>> = vec![None];
            v.extend(ps.into_iter().map(Some));
            MergeTree::from_parents(&v).expect("parent < child by construction")
        })
    })
}

/// Strategy: strictly increasing i64 times of the given length.
fn arb_times(n: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(1i64..=9, n).prop_map(|gaps| {
        let mut t = 0i64;
        gaps.into_iter()
            .map(|g| {
                t += g;
                t
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn preorder_roundtrip((tree, _) in arb_tree(30).prop_map(|t| (t.clone(), t))) {
        // to_parents/from_parents is the identity.
        let back = MergeTree::from_parents(&tree.to_parents()).unwrap();
        prop_assert_eq!(&tree, &back);
        // Preorder visits every node exactly once.
        let mut seen = tree.preorder();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..tree.len()).collect::<Vec<_>>());
    }

    #[test]
    fn last_descendant_is_subtree_max(tree in arb_tree(30)) {
        for x in 0..tree.len() {
            let z = tree.last_descendant(x);
            prop_assert!(z >= x);
            // z's path to the root passes through x.
            let path = tree.path_from_root(z);
            prop_assert!(path.contains(&x), "z({x}) = {z}, path {path:?}");
        }
    }

    #[test]
    fn lengths_lemma1_identities(tree in arb_tree(25)) {
        let n = tree.len();
        let times = consecutive_slots(n);
        let l = lengths(&tree, &times);
        let w = receive_all_lengths(&tree, &times);
        for x in 1..n {
            let p = tree.parent(x).unwrap() as i64;
            let z = tree.last_descendant(x) as i64;
            // ℓ(x) = 2z − x − p and ω(x) = z − p, on consecutive slots.
            prop_assert_eq!(l[x], 2 * z - x as i64 - p);
            prop_assert_eq!(w[x], z - p);
            // Leaves: ℓ = x − p.
            if tree.children(x).is_empty() {
                prop_assert_eq!(l[x], x as i64 - p);
            }
            // Receive-all never longer than receive-two.
            prop_assert!(w[x] <= l[x]);
        }
    }

    #[test]
    fn merge_cost_translation_invariant(
        tree in arb_tree(20),
        offset in 0i64..1000,
    ) {
        let n = tree.len();
        let base = consecutive_slots(n);
        let shifted: Vec<i64> = base.iter().map(|t| t + offset).collect();
        prop_assert_eq!(merge_cost(&tree, &base), merge_cost(&tree, &shifted));
    }

    #[test]
    fn receiving_programs_cover_when_media_large(tree in arb_tree(18)) {
        // With L ≥ 2n the program always covers 1..=L and obeys receive-two.
        let n = tree.len();
        let times = consecutive_slots(n);
        let media = 2 * n as u64 + 2;
        for c in 0..n {
            let prog = ReceivingProgram::build(&tree, &times, media, c);
            prog.verify(&times, media).unwrap();
            prog.check_receive_two(&times).unwrap();
            prop_assert_eq!(prog.total_parts(), media as i64);
        }
    }

    #[test]
    fn observed_buffer_matches_lemma15(tree in arb_tree(15)) {
        let n = tree.len();
        let times = consecutive_slots(n);
        let media = 2 * n as u64 + 2;
        for c in 0..n {
            prop_assert_eq!(
                buffer::max_buffer_observed(&tree, &times, media, c),
                buffer::required_buffer(&tree, &times, media, c),
                "client {} of {}", c, tree.to_sexpr()
            );
        }
    }

    #[test]
    fn receive_all_programs_cover_and_stay_within_omega(tree in arb_tree(18)) {
        // Lemma 17: the receive-all program covers 1..=L, pulls at most
        // ω(x) parts from each non-root stream, and listens to exactly its
        // path depth + 1 streams.
        let n = tree.len();
        let times = consecutive_slots(n);
        let media = 2 * n as u64 + 2;
        let omega = receive_all_lengths(&tree, &times);
        let mut max_part = vec![0i64; n];
        for c in 0..n {
            let prog = ReceiveAllProgram::build(&tree, &times, media, c);
            prog.verify(&times, media, &tree).unwrap();
            prop_assert_eq!(prog.total_parts(), media as i64);
            prop_assert!(prog.max_concurrent() <= tree.depth(c) + 1);
            for seg in &prog.segments {
                if !seg.is_empty() && seg.stream != 0 {
                    max_part[seg.stream] = max_part[seg.stream].max(seg.last_part);
                }
            }
        }
        // The deepest demand on each stream is exactly its ω length —
        // receive-all streams are as short as Lemma 17 allows.
        for x in 1..n {
            prop_assert_eq!(max_part[x], omega[x], "stream {}", x);
        }
    }

    #[test]
    fn receive_all_buffer_never_negative_and_bounded_by_media(tree in arb_tree(15)) {
        let n = tree.len();
        let times = consecutive_slots(n);
        let media = 2 * n as u64 + 2;
        for c in 0..n {
            let prog = ReceiveAllProgram::build(&tree, &times, media, c);
            let b = prog.required_buffer(&times, media);
            prop_assert!(b >= 0);
            prop_assert!(b <= media as i64);
        }
    }

    #[test]
    fn general_times_respect_parts_accounting(
        (tree, times) in arb_tree(12).prop_flat_map(|t| {
            let n = t.len();
            (Just(t), arb_times(n))
        })
    ) {
        // Max part pulled from each stream equals its Lemma-1 length, for
        // arbitrary (not just consecutive) times — if the media is long
        // enough for the program to be feasible.
        let n = tree.len();
        let span = times[n - 1] - times[0];
        let media = (4 * span + 4) as u64;
        let l = lengths(&tree, &times);
        let mut max_part = vec![0i64; n];
        for c in 0..n {
            let prog = ReceivingProgram::build(&tree, &times, media, c);
            prog.verify(&times, media).unwrap();
            for seg in &prog.segments {
                if !seg.is_empty() && seg.stream != 0 {
                    max_part[seg.stream] = max_part[seg.stream].max(seg.last_part);
                }
            }
        }
        for x in 1..n {
            prop_assert_eq!(max_part[x], l[x], "stream {}", x);
        }
    }
}
