#![forbid(unsafe_code)]
//! `sm-lint` — the workspace's own static-analysis pass.
//!
//! The serving stack's safety rules used to live only in CHANGES.md and
//! reviewer memory: no panic surface in the ingest hot paths, the PR-2
//! "widening-only `as` casts" audit, no lock acquisition inside
//! [`parallel_map`]/[`pipeline`] closures, all thread creation confined to
//! `sm-core`, no silently discarded `Result`s. This crate mechanizes them
//! as lexical rules over a hand-rolled Rust [`lexer`] (no `syn` — the
//! build environment is offline and this crate is dependency-free), run as
//! `cargo run -p sm-lint -- --workspace` and as its own CI leg.
//!
//! # Waivers
//!
//! Every rule violation must either be fixed or carry an explicit inline
//! waiver on (or immediately above) the offending line:
//!
//! ```text
//! // sm-lint: allow(narrowing-cast) — node count < 2^32, checked at entry
//! ```
//!
//! The reason is mandatory, waivers that suppress nothing are themselves
//! findings, and the tool prints the live waiver count per rule — debt
//! stays visible instead of invisible. Doc comments never enact waivers,
//! so documentation (like this page) can quote the grammar freely.
//!
//! # Scope model
//!
//! Rules see only *non-test library code*: files under a `tests/`,
//! `benches/`, or `examples/` directory are skipped wholesale, and within
//! a library file every item annotated `#[test]` / `#[cfg(test)]` (plus
//! everything lexically inside it) is masked out. `third_party/` vendored
//! stubs and generated `target/` trees are never scanned.
//!
//! [`parallel_map`]: ../sm_core/fn.parallel_map.html
//! [`pipeline`]: ../sm_core/fn.pipeline.html

pub mod lexer;
pub mod rules;

use lexer::{lex, Lexed, TokenKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// Ids of every shipped rule, in catalog order. `tests/docs_sync.rs` (in
/// the facade crate) pins ARCHITECTURE.md's rule catalog against this list.
pub const RULE_IDS: [&str; 5] = [
    "no-panic-surface",
    "narrowing-cast",
    "lock-discipline",
    "no-stray-threads",
    "swallowed-results",
];

/// Engine-level pseudo-rule id for waiver hygiene problems (malformed
/// waiver, unknown rule id, waiver that suppresses nothing).
pub const WAIVER_RULE: &str = "waiver";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run when unwaived.
    Deny,
    /// Printed, counted, never fails the run.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        })
    }
}

/// One rule violation, located and annotated.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `true` when an inline waiver covers this finding.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: {}[{}] {}",
            self.path, self.line, self.severity, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// A parsed `// sm-lint: allow(<rule>) — <reason>` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub path: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it suppresses: its own for trailing comments,
    /// the next code line for standalone ones.
    pub target_line: u32,
    pub rule: String,
    pub reason: String,
    /// Set when the waiver suppressed at least one finding.
    pub used: bool,
}

/// A lexed source file plus the line-level test mask rules consult.
pub struct SourceFile<'a> {
    pub path: String,
    pub lexed: Lexed<'a>,
    lines: Vec<&'a str>,
    test_mask: Vec<bool>,
}

impl<'a> SourceFile<'a> {
    /// `path` must be workspace-relative with `/` separators — rule
    /// scoping matches on it textually.
    pub fn new(path: &str, src: &'a str) -> Self {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let test_mask = test_line_mask(&lexed, lines.len());
        Self {
            path: path.to_string(),
            lexed,
            lines,
            test_mask,
        }
    }

    /// `true` when `line` (1-based) is inside a `#[test]` / `#[cfg(test)]`
    /// item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_mask
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// A lint rule: an id, a severity, a path scope, and a token-level check.
pub trait Rule {
    fn id(&self) -> &'static str;
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    /// Whether this rule runs on `path` (workspace-relative, `/`-separated).
    fn applies(&self, path: &str) -> bool;
    /// Returns `(line, message)` pairs; the engine attaches snippets and
    /// resolves waivers.
    fn check(&self, file: &SourceFile<'_>) -> Vec<(u32, String)>;
}

/// `true` when any path segment marks test-only code.
pub fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

/// `true` for library code: under a crate's `src/` (or the facade root's).
pub fn is_library_path(path: &str) -> bool {
    !is_test_path(path) && (path.starts_with("src/") || path.contains("/src/"))
}

/// Marks every line covered by a test-gated item: `#[test]`, `#[bench]`,
/// or a `#[cfg(…)]` whose arguments mention `test` un-negated (so
/// `#[cfg(not(test))]` stays live code, and `#[cfg_attr(test, …)]` — an
/// attribute that is itself conditional, not a conditional item — does
/// not mask anything).
fn test_line_mask(lexed: &Lexed<'_>, n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
        {
            // Collect the attribute's tokens up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if toks[j].kind == TokenKind::Ident {
                            idents.push(toks[j].text);
                        }
                    }
                }
                j += 1;
            }
            let is_test_marker = (idents.contains(&"test") || idents.contains(&"bench"))
                && !idents.contains(&"not")
                && idents.first() != Some(&"cfg_attr");
            if is_test_marker {
                let start_line = toks[i].line;
                let end_line = item_end_line(toks, j);
                for line in start_line..=end_line {
                    if let Some(slot) = mask.get_mut(line as usize - 1) {
                        *slot = true;
                    }
                }
                // Resume *after* the attribute; the item body is walked
                // again but re-marking already-true lines is harmless and
                // inner `#[test]` attributes resolve to subsets.
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// Line on which the item starting at token index `start` ends: at the
/// matching brace of its first `{`, or at the first top-level `;`,
/// whichever the item reaches first. Leading further attributes are
/// skipped. Bracket depth covers `{`/`(`/`[` so `fn f(x: [u8; 3])` does
/// not end at the array's semicolon.
fn item_end_line(toks: &[lexer::Token<'_>], start: usize) -> u32 {
    let mut i = start;
    // Skip stacked attributes between the marker and the item.
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        let mut depth = 0u32;
        i += 1;
        while i < toks.len() {
            match toks[i].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut depth = 0i64;
    let mut opened_brace = false;
    while i < toks.len() {
        match toks[i].text {
            "{" => {
                opened_brace = depth == 0 || opened_brace;
                depth += 1;
            }
            "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 && opened_brace && toks[i].text == "}" {
                    return toks[i].line;
                }
            }
            ";" if depth == 0 => return toks[i].line,
            _ => {}
        }
        i += 1;
    }
    toks.last().map(|t| t.line).unwrap_or(1)
}

/// Result of linting one file.
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
}

/// Parses waiver comments out of a file's line comments. Malformed
/// waivers (missing rule, unknown rule id, missing reason) surface as
/// engine findings so they cannot silently suppress nothing.
fn collect_waivers(file: &SourceFile<'_>, problems: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &file.lexed.comments {
        if c.is_doc {
            continue;
        }
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix("sm-lint:") else {
            continue;
        };
        let mut problem = |message: String| {
            problems.push(Finding {
                path: file.path.clone(),
                line: c.line,
                rule: WAIVER_RULE,
                severity: Severity::Deny,
                message,
                snippet: file.snippet(c.line),
                waived: false,
            });
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            problem(format!(
                "malformed waiver: expected `sm-lint: allow(<rule>) — <reason>`, got `{body}`"
            ));
            continue;
        };
        let (rule, tail) = args;
        let rule = rule.trim();
        if !RULE_IDS.contains(&rule) {
            problem(format!(
                "waiver names unknown rule `{rule}` (known: {})",
                RULE_IDS.join(", ")
            ));
            continue;
        }
        let reason = tail
            .trim_start()
            .trim_start_matches(['—', '-', ':', '–'])
            .trim();
        if reason.is_empty() {
            problem(format!(
                "waiver for `{rule}` is missing its reason — debt must be explained inline"
            ));
            continue;
        }
        let target_line = if c.is_trailing {
            c.line
        } else {
            // A standalone waiver annotates the next code line (skipping
            // blanks and further comments).
            file.lexed
                .tokens
                .iter()
                .find(|t| t.line > c.line)
                .map(|t| t.line)
                .unwrap_or(c.line)
        };
        waivers.push(Waiver {
            path: file.path.clone(),
            line: c.line,
            target_line,
            rule: rule.to_string(),
            reason: reason.to_string(),
            used: false,
        });
    }
    waivers
}

/// Lints one in-memory source file against `rules`. Files where no rule
/// applies return an empty report without waiver processing (fixture
/// files with deliberately malformed waivers live under `tests/`).
pub fn lint_source(path: &str, src: &str, rules: &[Box<dyn Rule>]) -> FileReport {
    let active: Vec<&dyn Rule> = rules
        .iter()
        .map(|r| r.as_ref())
        .filter(|r| r.applies(path))
        .collect();
    if active.is_empty() {
        return FileReport {
            findings: Vec::new(),
            waivers: Vec::new(),
        };
    }
    let file = SourceFile::new(path, src);
    let mut findings: Vec<Finding> = Vec::new();
    let mut problems: Vec<Finding> = Vec::new();
    let mut waivers = collect_waivers(&file, &mut problems);
    for rule in active {
        let mut raw = rule.check(&file);
        // Rules may visit overlapping regions (nested closures); report
        // each (line, message) once.
        raw.sort();
        raw.dedup();
        for (line, message) in raw {
            let mut waived = false;
            if let Some(w) = waivers
                .iter_mut()
                .find(|w| w.target_line == line && w.rule == rule.id())
            {
                w.used = true;
                waived = true;
            }
            findings.push(Finding {
                path: file.path.clone(),
                line,
                rule: rule.id(),
                severity: rule.severity(),
                message,
                snippet: file.snippet(line),
                waived,
            });
        }
    }
    for w in &waivers {
        if !w.used {
            problems.push(Finding {
                path: w.path.clone(),
                line: w.line,
                rule: WAIVER_RULE,
                severity: Severity::Deny,
                message: format!(
                    "waiver for `{}` suppresses nothing — remove it or move it to the finding",
                    w.rule
                ),
                snippet: file.snippet(w.line),
                waived: false,
            });
        }
    }
    findings.append(&mut problems);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileReport { findings, waivers }
}

/// A whole-workspace run.
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the run: unwaived, deny-severity.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| !f.waived && f.severity == Severity::Deny)
    }

    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Human-readable summary: per-rule waiver counts, then the verdict.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let unwaived = self.unwaived().count();
        let waived = self.findings.iter().filter(|f| f.waived).count();
        let _ = writeln!(
            out,
            "sm-lint: {} files scanned, {} finding(s) unwaived, {} waived",
            self.files_scanned, unwaived, waived
        );
        for rule in RULE_IDS {
            let n = self.waivers.iter().filter(|w| w.rule == rule).count();
            if n > 0 {
                let _ = writeln!(out, "  waivers[{rule}]: {n}");
            }
        }
        out
    }
}

/// Walks `root` and lints every non-test library file with the default
/// rule set. `third_party/`, `target/`, and dot-directories are skipped.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let rules = rules::default_rules();
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut report = Report {
        findings: Vec::new(),
        waivers: Vec::new(),
        files_scanned: 0,
    };
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let mut file_report = lint_source(&rel, &src, &rules);
        report.files_scanned += 1;
        report.findings.append(&mut file_report.findings);
        report.waivers.append(&mut file_report.waivers);
    }
    Ok(report)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || matches!(&*name, "target" | "third_party") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod_and_test_fns() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        for line in 2..=6 {
            assert!(f.is_test_line(line), "line {line} should be test");
        }
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_stay_live() {
        let src = "#[cfg(not(test))]\nfn live() {}\n#[cfg_attr(test, derive(Debug))]\nstruct S;\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        for line in 1..=4 {
            assert!(!f.is_test_line(line), "line {line} wrongly masked");
        }
    }

    #[test]
    fn test_attr_on_semicolon_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::fmt::Debug;\nfn live(x: [u8; 3]) {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn waiver_grammar_requires_rule_and_reason() {
        let rules = rules::default_rules();
        // Trailing waiver with reason: finding suppressed, waiver used.
        let ok = "pub fn f(x: usize) -> u32 {\n    x as u32 // sm-lint: allow(narrowing-cast) — bounded by caller\n}\n";
        let r = lint_source("crates/x/src/lib.rs", ok, &rules);
        assert!(r.findings.iter().all(|f| f.waived), "{:?}", r.findings);
        assert_eq!(r.waivers.len(), 1);
        assert!(r.waivers[0].used);
        assert_eq!(r.waivers[0].reason, "bounded by caller");

        // Standalone waiver annotates the next code line.
        let standalone = "pub fn f(x: usize) -> u32 {\n    // sm-lint: allow(narrowing-cast) — bounded by caller\n    x as u32\n}\n";
        let r = lint_source("crates/x/src/lib.rs", standalone, &rules);
        assert!(r.findings.iter().all(|f| f.waived), "{:?}", r.findings);

        // Missing reason is itself a deny finding.
        let bad =
            "pub fn f(x: usize) -> u32 {\n    x as u32 // sm-lint: allow(narrowing-cast)\n}\n";
        let r = lint_source("crates/x/src/lib.rs", bad, &rules);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == WAIVER_RULE && f.message.contains("missing its reason")));

        // Unknown rule id is rejected.
        let unknown = "// sm-lint: allow(no-such-rule) — whatever\npub fn f() {}\n";
        let r = lint_source("crates/x/src/lib.rs", unknown, &rules);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == WAIVER_RULE && f.message.contains("unknown rule")));
    }

    #[test]
    fn unused_waivers_are_findings() {
        let src = "// sm-lint: allow(narrowing-cast) — nothing here narrows\npub fn f() {}\n";
        let r = lint_source("crates/x/src/lib.rs", src, &rules::default_rules());
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == WAIVER_RULE && f.message.contains("suppresses nothing")));
    }

    #[test]
    fn doc_comments_do_not_enact_waivers() {
        let src = "/// sm-lint: allow(narrowing-cast) — quoted in docs\npub fn f(x: usize) -> u32 {\n    x as u32\n}\n";
        let r = lint_source("crates/x/src/lib.rs", src, &rules::default_rules());
        assert!(r.waivers.is_empty());
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "narrowing-cast" && !f.waived));
    }

    #[test]
    fn files_with_no_applicable_rule_are_skipped_entirely() {
        // A fixture-style file full of malformed waivers under tests/
        // must not produce engine findings.
        let src = "// sm-lint: allow(broken\nfn f() { x.unwrap(); }\n";
        let r = lint_source(
            "crates/lint/tests/fixtures/x.rs",
            src,
            &rules::default_rules(),
        );
        assert!(r.findings.is_empty());
    }
}
