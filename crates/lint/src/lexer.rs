//! A hand-rolled, dependency-free Rust lexer: just enough of the language
//! to walk real source as a token stream without ever mistaking the inside
//! of a string, character literal, raw string, or (nested) block comment
//! for code. `sm-lint` deliberately does not parse — every shipped rule is
//! a scoped token-pattern match — so the lexer is the single place where
//! textual Rust gets disambiguated, and its edge cases (lifetimes vs char
//! literals, `r#ident` vs `r#"…"#`, hashes in raw strings, `b"…"` and
//! `br#"…"#` prefixes) are each pinned by a unit test below that a naive
//! scanner would fail.
//!
//! The stream also carries every `//` line comment (with an
//! `is_trailing` flag), because the waiver syntax lives in comments; doc
//! comments (`///`, `//!`) are excluded from waiver consideration so
//! documentation can *mention* the waiver grammar without enacting it.

/// One lexical token. `text` borrows from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `as`, `let`, `_`), including the
    /// unescaped name of a raw identifier (`r#fn` lexes as `Ident("fn")`).
    Ident,
    /// `'a`, `'static`, `'_` — a quote that opens a lifetime, not a char.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'` — character and byte literals.
    Char,
    /// Any string-shaped literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br##"…"##`, `c"…"`. The rules never look inside; one kind suffices.
    Str,
    /// Numeric literal, suffix included (`0x1f`, `1_000u64`, `2.5e-3`).
    Number,
    /// A single punctuation character (`.`, `(`, `!`, …). Multi-character
    /// operators arrive as consecutive tokens; rules match sequences.
    Punct,
}

/// A `//` comment captured during lexing (block comments are skipped: the
/// waiver grammar is line-comment only, so a waiver cannot hide mid-line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment<'a> {
    /// Comment body after the `//` (untrimmed).
    pub text: &'a str,
    pub line: u32,
    /// `true` when code precedes the comment on its line (a trailing
    /// comment annotates its own line; a standalone one, the next).
    pub is_trailing: bool,
    /// `true` for `///` and `//!` doc comments.
    pub is_doc: bool,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<LineComment<'a>>,
}

pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_had_token: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a token has already been emitted on the current line
    /// (drives `LineComment::is_trailing`).
    line_had_token: bool,
    out: Lexed<'a>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_had_token = false;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
        self.line_had_token = true;
    }

    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => self.raw_or_ident(),
                b'b' | b'c' => {
                    if !self.string_prefix() {
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.emit(TokenKind::Ident, start, line);
                    }
                }
                b'"' => self.string(),
                b'\'' => self.quote(),
                _ if is_ident_start(b) => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    // One byte of punctuation — or one UTF-8 char, so a
                    // stray `…` in a macro body cannot split a code point.
                    self.bump();
                    while self.pos < self.bytes.len() && (self.peek(0) & 0xC0) == 0x80 {
                        self.bump();
                    }
                    self.emit(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let is_trailing = self.line_had_token;
        self.bump_n(2); // `//`
        let is_doc = matches!(self.peek(0), b'/' | b'!');
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(LineComment {
            text: &self.src[start..self.pos],
            line,
            is_trailing,
            is_doc,
        });
    }

    /// Block comments nest in Rust: `/* outer /* inner */ still comment */`.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// At `r"`, `r#"…"#`, or `r#ident`. Raw strings close only on a quote
    /// followed by the same number of hashes that opened them.
    fn raw_or_ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(1 + hashes) == b'"' {
            self.bump_n(1 + hashes + 1); // `r`, hashes, opening quote
            self.raw_body(hashes);
            self.emit(TokenKind::Str, start, line);
        } else if hashes == 1 && is_ident_start(self.peek(2)) {
            // Raw identifier `r#match`: emit the bare name so rules see
            // the same token for `r#unwrap` and `unwrap`.
            self.bump_n(2);
            let name_start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: &self.src[name_start..self.pos],
                line,
            });
            self.line_had_token = true;
        } else {
            // Plain identifier starting with `r` handled by the main loop
            // is unreachable here (`r` is followed by `"` or `#`); treat a
            // malformed `r#` as punctuation and move on.
            self.bump_n(1);
            self.emit(TokenKind::Ident, start, line);
        }
    }

    /// Consumes a raw-string body after its opening quote.
    fn raw_body(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut closing = 0usize;
                while closing < hashes && self.peek(1 + closing) == b'#' {
                    closing += 1;
                }
                if closing == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Handles `b"…"`, `b'…'`, `br"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`
    /// prefixes. Returns `true` when a literal was consumed; `false` means
    /// the `b`/`c` starts an ordinary identifier and the main loop should
    /// lex it.
    fn string_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let second = self.peek(1);
        if second == b'"' {
            self.bump();
            self.string_from(start, line);
            true
        } else if self.peek(0) == b'b' && second == b'\'' {
            self.bump();
            self.char_from(start, line);
            true
        } else if second == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') {
            let mut hashes = 0usize;
            while self.peek(2 + hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(2 + hashes) != b'"' {
                return false; // `br#x` — not a literal; lex as ident
            }
            self.bump_n(2 + hashes + 1);
            self.raw_body(hashes);
            self.emit(TokenKind::Str, start, line);
            true
        } else {
            false
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.string_from(start, line);
    }

    /// Consumes `"…"` with escapes, starting at the opening quote.
    fn string_from(&mut self, start: usize, line: u32) {
        self.bump(); // opening `"`
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.emit(TokenKind::Str, start, line);
    }

    /// At a `'`: a character literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a
    /// lifetime (`'a`, `'static`, `'_`). The naive-scanner trap: both start
    /// identically, and only the presence of a closing quote decides.
    fn quote(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.char_from(start, line);
    }

    /// At a `'` (with `start` possibly one byte earlier, at a `b` prefix):
    /// consumes a char/byte literal or a lifetime.
    fn char_from(&mut self, start: usize, line: u32) {
        self.bump(); // `'`
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume escape, then to closing quote.
            self.bump_n(2);
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            self.emit(TokenKind::Char, start, line);
        } else if is_ident_start(self.peek(0)) {
            // `'a…`: lifetime unless a quote immediately closes one
            // ident-char later (`'a'` is a char; `'ab'` is not valid Rust,
            // and `'a'` inside generics cannot occur — `<'a>` closes with
            // `>`). Look ahead: single ident char + `'` ⇒ char literal.
            let mut len = 0usize;
            while is_ident_continue(self.peek(len)) {
                len += 1;
            }
            if len == 1 && self.peek(1) == b'\'' {
                self.bump_n(2);
                self.emit(TokenKind::Char, start, line);
            } else {
                self.bump_n(len);
                self.emit(TokenKind::Lifetime, start, line);
            }
        } else if self.peek(0) != 0 {
            // Non-ASCII or punctuation char literal: `'∞'`, `'.'`.
            self.bump();
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            self.emit(TokenKind::Char, start, line);
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the literal; `1..n` does not (the range
                // dots lex as punctuation).
                self.bump();
            } else if (b == b'+' || b == b'-') && matches!(self.bytes[self.pos - 1], b'e' | b'E') {
                // Exponent sign inside `2.5e-3`.
                self.bump();
            } else {
                break;
            }
        }
        self.emit(TokenKind::Number, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        // A naive scanner stops at the first `"` and then lexes
        // `.unwrap()` as code; the hash-counted closer must win.
        let src = r####"let s = r#"not ".unwrap()" yet "# ; done"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!idents(src).contains(&"unwrap".to_string()));
        assert!(idents(src).contains(&"done".to_string()));
        // Double-hash strings may contain a single-hash closer.
        let deep = r####"r##"still " # "# going"## after"####;
        assert!(idents(deep) == vec!["after"]);
    }

    #[test]
    fn nested_block_comments_need_depth_counting() {
        let src = "before /* outer /* inner */ still.unwrap() */ after";
        assert_eq!(idents(src), vec!["before", "after"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'a` must not open a char literal and swallow `>` and beyond.
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'q'; let z = '\\n'; }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert!(idents(src).contains(&"str".to_string()));
        // `'static` and `'_` are lifetimes too; `'∞'` is a char.
        let more = "&'static str; &'_ u8; let inf = '∞';";
        let toks = kinds(more);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'∞'"));
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        // `r#unwrap` must surface as the ident `unwrap` (rules see through
        // the raw prefix), and `r#match` as `match` — not as a raw string.
        assert_eq!(idents("r#unwrap(); r#match"), vec!["unwrap", "match"]);
    }

    #[test]
    fn byte_strings_and_byte_chars_are_literals() {
        let src = r##"let a = b"panic!"; let b = br#" .unwrap() "#; let c = b'x'; rest"##;
        assert!(!idents(src).contains(&"unwrap".to_string()));
        assert!(!idents(src).contains(&"panic".to_string()));
        assert!(idents(src).contains(&"rest".to_string()));
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "b'x'"));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let src = r#"let s = "he said \".unwrap()\" loudly"; tail"#;
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
    }

    #[test]
    fn comments_record_position_and_docness() {
        let src = "let x = 1; // trailing note\n// standalone\n/// doc\nlet y = 2;\n";
        let lexed = lex(src);
        let c = &lexed.comments;
        assert_eq!(c.len(), 3);
        assert!(c[0].is_trailing && !c[0].is_doc && c[0].line == 1);
        assert!(!c[1].is_trailing && !c[1].is_doc && c[1].line == 2);
        assert!(c[2].is_doc);
    }

    #[test]
    fn numbers_keep_suffixes_and_do_not_eat_ranges() {
        let toks = kinds("0..10u64; 1_000i32; 0x1f; 2.5e-3f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10u64", "1_000i32", "0x1f", "2.5e-3f64"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "alpha\n/* two\nlines */\nr#\"raw\nstring\"#\nomega";
        let lexed = lex(src);
        let omega = lexed.tokens.last().unwrap();
        assert_eq!((omega.text, omega.line), ("omega", 6));
    }
}
