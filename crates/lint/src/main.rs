//! `sm-lint` CLI: `cargo run -p sm-lint -- --workspace`.
//!
//! Exit code 0 when every deny-severity finding is waived (with a
//! reason); 1 otherwise. Waiver counts are always printed so suppressed
//! debt stays visible in CI logs.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: sm-lint [--workspace] [--root <dir>] [--list-rules] [--verbose]\n\
     \n\
     --workspace   lint the enclosing cargo workspace (default)\n\
     --root <dir>  lint <dir> instead of the detected workspace root\n\
     --list-rules  print the rule catalog and exit\n\
     --verbose     also print waived findings and waiver reasons"
}

/// Nearest ancestor of the current directory whose `Cargo.toml` declares
/// `[workspace]`; falls back to the compile-time workspace root so the
/// binary also works when invoked from outside the tree.
fn detect_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        let mut dir = cwd.as_path();
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
            match dir.parent() {
                Some(parent) => dir = parent,
                None => break,
            }
        }
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--list-rules" => {
                for id in sm_lint::RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(detect_root);
    let report = match sm_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sm-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for finding in &report.findings {
        if finding.waived && !verbose {
            continue;
        }
        let tag = if finding.waived { " (waived)" } else { "" };
        println!("{finding}{tag}\n");
    }
    if verbose {
        for w in &report.waivers {
            println!("waiver {}:{} [{}] — {}", w.path, w.line, w.rule, w.reason);
        }
    }
    print!("{}", report.summary());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
