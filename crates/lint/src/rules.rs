//! The shipped rule catalog. Each rule encodes one of the repo's actual
//! hot-path contracts (see ARCHITECTURE.md → "sm-lint" for the catalog
//! with rationale); all are deliberately *lexical* — they match scoped
//! token patterns, not types — so what they can and cannot see is spelled
//! out per rule. Adding a rule = implement [`Rule`], add it to
//! [`default_rules`] and [`crate::RULE_IDS`], document it, and give it
//! one failing and one passing fixture under `tests/fixtures/`.

use crate::lexer::{Token, TokenKind};
use crate::{is_library_path, is_test_path, Rule, SourceFile};

/// The five shipped rules, in catalog order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicSurface),
        Box::new(NarrowingCast),
        Box::new(LockDiscipline),
        Box::new(NoStrayThreads),
        Box::new(SwallowedResults),
    ]
}

fn text<'a>(toks: &'a [Token<'_>], i: usize) -> &'a str {
    toks.get(i).map(|t| t.text).unwrap_or("")
}

/// Text of the token `back` positions before `i`, or `""` off the front.
fn text_before<'a>(toks: &'a [Token<'_>], i: usize, back: usize) -> &'a str {
    i.checked_sub(back).map(|j| text(toks, j)).unwrap_or("")
}

/// **no-panic-surface** — the PR-6 guarantee "no unwrap/expect in the
/// loop", machine-checked: `.unwrap()` / `.expect()` (and their `_err`
/// variants) plus the `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` / `assert!`-family macros are forbidden in the
/// non-test code of the serving hot paths — `sm-serve`, the `sm-sim`
/// engines, and `sm_core::parallel`. `debug_assert*` is deliberately
/// exempt: it compiles out of the release builds that serve traffic.
pub struct NoPanicSurface;

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

impl Rule for NoPanicSurface {
    fn id(&self) -> &'static str {
        "no-panic-surface"
    }

    fn applies(&self, path: &str) -> bool {
        !is_test_path(path)
            && (path.starts_with("crates/serve/src/")
                || path.starts_with("crates/sim/src/engine")
                || path == "crates/core/src/parallel.rs")
    }

    fn check(&self, file: &SourceFile<'_>) -> Vec<(u32, String)> {
        let toks = &file.lexed.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
                continue;
            }
            if PANIC_METHODS.contains(&t.text)
                && text_before(toks, i, 1) == "."
                && text(toks, i + 1) == "("
            {
                out.push((
                    t.line,
                    format!(".{}() is panic surface in a serving hot path", t.text),
                ));
            } else if PANIC_MACROS.contains(&t.text) && text(toks, i + 1) == "!" {
                out.push((
                    t.line,
                    format!("{}! is panic surface in a serving hot path", t.text),
                ));
            }
        }
        out
    }
}

/// **narrowing-cast** — the PR-2 cast audit, mechanized: in non-test
/// library code, `as` casts to a type that can silently lose value
/// (`u8`/`u16`/`u32`/`i8`/`i16`/`i32`/`f32`/`isize`/`char`) must be
/// provably widening or carry a waiver. "Provably widening" is decided
/// lexically: the cast source is an integer literal whose value (or
/// suffixed type) fits the target. Casts to `u64`/`i64`/`u128`/`i128`/
/// `f64`/`usize` are widening-by-convention on the project's 64-bit
/// targets — exactly the line the manual audit drew — and pass unflagged.
pub struct NarrowingCast;

const SUSPECT_TARGETS: [&str; 9] = [
    "u8", "u16", "u32", "i8", "i16", "i32", "f32", "isize", "char",
];

/// Greatest value representable in `target` losslessly from an unsigned
/// integer literal.
fn target_max(target: &str) -> u128 {
    match target {
        "u8" => u8::MAX as u128,
        "u16" => u16::MAX as u128,
        "u32" => u32::MAX as u128,
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        // f32 has a 24-bit significand: integers beyond 2^24 start rounding.
        "f32" => 1 << 24,
        "isize" => i64::MAX as u128,
        "char" => 0xFF, // `<lit> as char` is only valid from u8 range
        _ => u128::MAX,
    }
}

/// Splits `10_000u64` into value and suffix; returns `None` for literals
/// this check does not model (floats, overlong values).
fn literal_value(text: &str) -> Option<(u128, &str)> {
    let digits_end = if let Some(rest) = text.strip_prefix("0x") {
        2 + rest
            .find(|c: char| !c.is_ascii_hexdigit() && c != '_')
            .unwrap_or(rest.len())
    } else if let Some(rest) = text.strip_prefix("0b").or_else(|| text.strip_prefix("0o")) {
        2 + rest
            .find(|c: char| !c.is_ascii_digit() && c != '_')
            .unwrap_or(rest.len())
    } else {
        text.find(|c: char| !c.is_ascii_digit() && c != '_')
            .unwrap_or(text.len())
    };
    let (num, suffix) = text.split_at(digits_end);
    if suffix.starts_with(['.', 'e', 'E']) || suffix.starts_with("f32") || suffix.starts_with("f64")
    {
        return None; // float literal
    }
    let cleaned: String = num.chars().filter(|c| *c != '_').collect();
    let value = if let Some(hex) = cleaned.strip_prefix("0x") {
        u128::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = cleaned.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()?
    } else if let Some(oct) = cleaned.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()?
    } else {
        cleaned.parse().ok()?
    };
    Some((value, suffix))
}

/// `true` when a cast from the literal-suffix type `source` to `target`
/// can never lose value.
fn suffix_widens(source: &str, target: &str) -> bool {
    let bits = |t: &str| -> Option<(u32, bool)> {
        Some(match t {
            "u8" => (8, false),
            "u16" => (16, false),
            "u32" => (32, false),
            "i8" => (8, true),
            "i16" => (16, true),
            "i32" => (32, true),
            _ => return None,
        })
    };
    let (sb, ss) = match bits(source) {
        Some(v) => v,
        None => return false,
    };
    match target {
        "f32" => sb <= 16, // ≤ 16-bit integers fit f32's 24-bit significand
        t => {
            let (tb, ts) = match bits(t) {
                Some(v) => v,
                None => return false,
            };
            match (ss, ts) {
                (false, false) | (true, true) => sb <= tb,
                (false, true) => sb < tb,
                (true, false) => false,
            }
        }
    }
}

impl Rule for NarrowingCast {
    fn id(&self) -> &'static str {
        "narrowing-cast"
    }

    fn applies(&self, path: &str) -> bool {
        is_library_path(path)
    }

    fn check(&self, file: &SourceFile<'_>) -> Vec<(u32, String)> {
        let toks = &file.lexed.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "as" || file.is_test_line(t.line) {
                continue;
            }
            let target = text(toks, i + 1);
            if !SUSPECT_TARGETS.contains(&target) {
                continue;
            }
            let Some(prev) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
                continue;
            };
            if prev.kind == TokenKind::Number {
                if let Some((value, suffix)) = literal_value(prev.text) {
                    let provable = if suffix.is_empty() {
                        value <= target_max(target)
                    } else {
                        suffix_widens(suffix, target) || value <= target_max(target)
                    };
                    if provable {
                        continue;
                    }
                }
            }
            out.push((
                t.line,
                format!("`as {target}` may narrow — prove the range or waive with a reason"),
            ));
        }
        out
    }
}

/// **lock-discipline** — the PR-3/4 nesting-guard hazard, mechanized: no
/// `.lock()` or Condvar `.wait*()` lexically inside a closure passed to
/// `parallel_map` / `pipeline` (a worker blocking on a lock serializes
/// the shard or deadlocks against the channel), and no `parallel_map` /
/// `pipeline` call nested inside another's argument list (the inner call
/// runs guard-degraded — sequential/inline — which is almost never what
/// the author meant). Lexical scope: only call sites whose closures are
/// written inline are seen; work factored into a named function is the
/// reviewer's job, and the rule says so in its finding text.
pub struct LockDiscipline;

const GUARD_ENTRY_POINTS: [&str; 2] = ["parallel_map", "pipeline"];
const BLOCKING_CALLS: [&str; 4] = ["lock", "wait", "wait_while", "wait_timeout"];

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn applies(&self, path: &str) -> bool {
        is_library_path(path)
    }

    fn check(&self, file: &SourceFile<'_>) -> Vec<(u32, String)> {
        let toks = &file.lexed.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || !GUARD_ENTRY_POINTS.contains(&t.text)
                || file.is_test_line(t.line)
                || text(toks, i + 1) != "("
            {
                continue;
            }
            // Walk the balanced argument region of this call.
            let mut depth = 1i64;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                match toks[j].text {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                if depth == 0 {
                    break;
                }
                let tj = &toks[j];
                if tj.kind == TokenKind::Ident {
                    if BLOCKING_CALLS.contains(&tj.text)
                        && text_before(toks, j, 1) == "."
                        && text(toks, j + 1) == "("
                    {
                        out.push((
                            tj.line,
                            format!(
                                ".{}() inside a `{}` argument: workers must not block on \
                                 locks or condvars",
                                tj.text, t.text
                            ),
                        ));
                    } else if GUARD_ENTRY_POINTS.contains(&tj.text) && text(toks, j + 1) == "(" {
                        out.push((
                            tj.line,
                            format!(
                                "`{}` nested inside `{}`: the nesting guard degrades the inner \
                                 call to sequential — hoist it out or waive deliberately",
                                tj.text, t.text
                            ),
                        ));
                    }
                }
                j += 1;
            }
        }
        out
    }
}

/// **no-stray-threads** — all concurrency flows through `sm-core`'s
/// primitives: `std::thread::spawn` / `thread::scope` /
/// `thread::Builder` are forbidden in non-test library code outside
/// `crates/core`, so the nesting guard and the pinned-equivalence
/// proptests keep seeing every thread the workspace creates.
pub struct NoStrayThreads;

impl Rule for NoStrayThreads {
    fn id(&self) -> &'static str {
        "no-stray-threads"
    }

    fn applies(&self, path: &str) -> bool {
        is_library_path(path) && !path.starts_with("crates/core/src")
    }

    fn check(&self, file: &SourceFile<'_>) -> Vec<(u32, String)> {
        let toks = &file.lexed.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "thread" || file.is_test_line(t.line) {
                continue;
            }
            if text(toks, i + 1) == ":" && text(toks, i + 2) == ":" {
                let callee = text(toks, i + 3);
                if matches!(callee, "spawn" | "scope" | "Builder") {
                    out.push((
                        t.line,
                        format!(
                            "thread::{callee} outside sm-core — route concurrency through \
                             sm_core::parallel_map / sm_core::pipeline"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// **swallowed-results** — `let _ = …` in non-test library code discards
/// a value that is usually a `Result` (the lexer cannot see types; the
/// pattern is the contract). The one sanctioned discard is
/// `let _ = write!/writeln!(…)` into an in-memory buffer — `fmt::Write`
/// to a `String` cannot fail and the render layer leans on it — so those
/// two macros are exempt by design.
pub struct SwallowedResults;

impl Rule for SwallowedResults {
    fn id(&self) -> &'static str {
        "swallowed-results"
    }

    fn applies(&self, path: &str) -> bool {
        is_library_path(path)
    }

    fn check(&self, file: &SourceFile<'_>) -> Vec<(u32, String)> {
        let toks = &file.lexed.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "let" || file.is_test_line(t.line) {
                continue;
            }
            if text(toks, i + 1) != "_" || text(toks, i + 2) != "=" {
                continue;
            }
            // `let _ ==`? Not a binding; and `=` followed by `>` cannot
            // occur after `let _`.
            let head = text(toks, i + 3);
            if matches!(head, "write" | "writeln") && text(toks, i + 4) == "!" {
                continue;
            }
            out.push((
                t.line,
                "`let _ =` swallows the call's Result — handle it, bubble it, or waive with \
                 a reason"
                    .to_string(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_values_parse_with_radix_and_underscores() {
        assert_eq!(literal_value("255"), Some((255, "")));
        assert_eq!(literal_value("0xff"), Some((255, "")));
        assert_eq!(literal_value("1_000u64"), Some((1000, "u64")));
        assert_eq!(literal_value("0b1010"), Some((10, "")));
        assert_eq!(literal_value("2.5"), None);
        assert_eq!(literal_value("1e9"), None);
    }

    #[test]
    fn suffix_widening_table() {
        assert!(suffix_widens("u8", "u32"));
        assert!(suffix_widens("u8", "i16"));
        assert!(!suffix_widens("u8", "i8"));
        assert!(!suffix_widens("i8", "u32"));
        assert!(suffix_widens("u16", "f32"));
        assert!(!suffix_widens("u32", "f32"));
        assert!(!suffix_widens("u64", "u32"));
    }
}
