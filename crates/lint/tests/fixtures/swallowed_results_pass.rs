//@ path: crates/server/src/fixture.rs
// fmt::Write into a String cannot fail: the sanctioned discard. Named
// bindings are not discards.
use std::fmt::Write;

pub fn render(rows: &[u64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rows: {}", rows.len());
    for r in rows {
        let _ = write!(out, "{r} ");
    }
    let trimmed = out.trim_end().to_string();
    trimmed
}
