//@ path: crates/server/src/fixture.rs
// `let _ =` discards are presumed to be swallowed Results.

pub fn swallow() {
    let _ = std::fs::remove_file("stale.lock"); //~ deny(swallowed-results)
    let _ = fallible(); //~ deny(swallowed-results)
}

fn fallible() -> Result<(), ()> {
    Ok(())
}
