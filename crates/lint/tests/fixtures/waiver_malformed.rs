//@ path: crates/workload/src/fixture.rs
// A waiver without a reason is rejected AND does not suppress, and a
// waiver naming an unknown rule is rejected.

pub fn f(x: u64) -> u32 {
    x as u32 // sm-lint: allow(narrowing-cast)
    //~^ deny(narrowing-cast)
    //~^^ deny(waiver)
}

pub fn g(y: u64) -> u64 {
    // sm-lint: allow(no-such-rule) — typo'd rule id
    //~^ deny(waiver)
    y + 1
}
