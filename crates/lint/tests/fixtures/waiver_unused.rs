//@ path: crates/workload/src/fixture.rs
// A waiver that suppresses nothing is itself a finding: stale debt
// annotations must not accumulate.

// sm-lint: allow(narrowing-cast) — nothing below narrows
//~^ deny(waiver)
pub fn nothing() {}
