//@ path: crates/serve/src/fixture.rs
// Hot-path panic surface: every construct below must be flagged.

pub fn ingest(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); //~ deny(no-panic-surface)
    let b = r.expect("boom"); //~ deny(no-panic-surface)
    if a > b {
        panic!("a > b"); //~ deny(no-panic-surface)
    }
    match a {
        0 => unreachable!(), //~ deny(no-panic-surface)
        _ => {}
    }
    assert!(a <= b); //~ deny(no-panic-surface)
    a + b
}
