//@ path: crates/workload/src/fixture.rs
// Casts whose source the lexer cannot bound must be waived or rewritten.

pub fn narrow(a: u64, b: usize, c: i64, d: f64) -> (u32, u8, i32, f32, isize) {
    (
        a as u32,   //~ deny(narrowing-cast)
        b as u8,    //~ deny(narrowing-cast)
        c as i32,   //~ deny(narrowing-cast)
        d as f32,   //~ deny(narrowing-cast)
        b as isize, //~ deny(narrowing-cast)
    )
}
