//@ path: crates/core/src/fixture.rs
// Thread creation is sm-core's job: the rule does not apply here.

pub fn confined(items: &[u32]) -> u32 {
    let mut total = 0;
    std::thread::scope(|s| {
        s.spawn(|| {});
        total = items.iter().sum();
    });
    total
}
