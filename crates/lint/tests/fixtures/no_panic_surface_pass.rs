//@ path: crates/serve/src/fixture.rs
// The sanctioned alternatives: fallible plumbing, debug_assert (compiles
// out of release), and test-masked code are all invisible to the rule.

pub fn ingest(x: Option<u32>) -> Result<u32, &'static str> {
    let v = x.ok_or("missing")?;
    debug_assert!(v < 1_000_000);
    Ok(v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::ingest(Some(3)).unwrap(), 3);
    }
}
