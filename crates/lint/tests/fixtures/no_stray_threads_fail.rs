//@ path: crates/sim/src/fixture.rs
// Thread creation outside sm-core escapes the nesting guard.

pub fn stray() {
    std::thread::spawn(|| {}); //~ deny(no-stray-threads)
    let builder = std::thread::Builder::new(); //~ deny(no-stray-threads)
    drop(builder);
    std::thread::scope(|_s| {}); //~ deny(no-stray-threads)
}
