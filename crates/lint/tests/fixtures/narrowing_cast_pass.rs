//@ path: crates/workload/src/fixture.rs
// Widening-by-convention targets (u64/i64/u128/i128/f64/usize) and
// literals that provably fit pass without a waiver.

pub fn widen(a: u32, b: u8, c: i32) -> (u64, usize, i64, f64, u128) {
    (a as u64, b as usize, c as i64, a as f64, a as u128)
}

pub fn literals() -> (u8, u32, i16, f32) {
    (255 as u8, 10_000 as u32, 7u8 as i16, 1024u16 as f32)
}
