//@ path: crates/workload/src/fixture.rs
// Both waiver positions: trailing on the finding line, standalone above
// it. Either way the finding is reported but waived.

pub fn packed(a: u64, b: u64) -> (u32, u32) {
    let hi = a as u32; // sm-lint: allow(narrowing-cast) — a is masked to 32 bits upstream
    //~^ waived(narrowing-cast)
    // sm-lint: allow(narrowing-cast) — b counts items, < 2^32 by construction
    let lo = b as u32;
    //~^ waived(narrowing-cast)
    (hi, lo)
}
