//@ path: crates/serve/src/fixture.rs
// Everything lexically inside #[cfg(test)] / #[test] items is invisible
// to every rule, even in a hot-path crate.

pub fn live(x: Option<u32>) -> Option<u32> {
    x.map(|v| v + 1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_freely() {
        let v: u64 = 1 << 40;
        let narrow = v as u32;
        assert_eq!(narrow, 0);
        assert_eq!(super::live(Some(0)).unwrap(), 1);
        let _ = std::fs::remove_file("x");
        std::thread::spawn(|| {});
    }
}
