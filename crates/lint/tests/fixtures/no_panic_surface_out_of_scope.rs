//@ path: crates/cli/src/main.rs
// The rule scopes to the serving hot paths; CLI code may unwrap.

pub fn parse(arg: Option<&str>) -> u32 {
    arg.unwrap().parse().unwrap()
}
