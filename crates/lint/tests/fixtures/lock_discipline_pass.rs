//@ path: crates/experiments/src/fixture.rs
// Read shared state before fanning out; keep the closure pure.
use std::sync::Mutex;

pub fn good(items: &[u32], shared: &Mutex<u64>) -> Vec<u64> {
    let base = *shared.lock().unwrap();
    parallel_map(items, |x| base + u64::from(*x) * 2)
}
