//@ path: crates/experiments/src/fixture.rs
// Workers must not block on locks, and guard entry points must not nest.
use std::sync::Mutex;

pub fn bad(items: &[u32], shared: &Mutex<u64>) -> Vec<u64> {
    parallel_map(items, |x| {
        let mut g = shared.lock().unwrap(); //~ deny(lock-discipline)
        *g += u64::from(*x);
        *g
    })
}

pub fn nested(items: &[u32]) -> Vec<Vec<u32>> {
    parallel_map(items, |x| {
        parallel_map(&[*x], |y| *y) //~ deny(lock-discipline)
    })
}
