//! UI-style fixture suite: every file under `tests/fixtures/` declares a
//! virtual workspace path (`//@ path: <path>`) and inline expectation
//! markers, and is linted with the shipped rule set. The findings must
//! match the declared set *exactly* — no extras, no misses — so each
//! fixture doubles as a failing or passing example of its rule.
//!
//! Marker grammar (trailing on any line):
//!
//! ```text
//! //~ deny(<rule>)     an unwaived finding on this line
//! //~ waived(<rule>)   a finding on this line suppressed by a waiver
//! //~^ …               same, but one line up (one line per `^`)
//! ```

use sm_lint::lint_source;
use sm_lint::rules::default_rules;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

/// `(line, rule, waived)` triple used for both expected and actual sides.
type Expectation = (u32, String, bool);

fn parse_directives(name: &str, src: &str) -> (String, Vec<Expectation>) {
    let mut path = None;
    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if let Some(rest) = line.trim().strip_prefix("//@ path:") {
            path = Some(rest.trim().to_string());
        }
        if let Some(pos) = line.find("//~") {
            let rest = &line[pos + 3..];
            let up = rest.chars().take_while(|&c| c == '^').count();
            let spec = rest[up..].trim();
            let (kind, tail) = spec
                .split_once('(')
                .unwrap_or_else(|| panic!("{name}:{lineno}: marker needs (rule)"));
            let rule = tail.trim_end_matches(')').trim().to_string();
            let waived = match kind.trim() {
                "deny" => false,
                "waived" => true,
                other => panic!("{name}:{lineno}: unknown marker kind `{other}`"),
            };
            let target = lineno
                .checked_sub(up as u32)
                .unwrap_or_else(|| panic!("{name}:{lineno}: marker points above the file"));
            expected.push((target, rule, waived));
        }
    }
    (
        path.unwrap_or_else(|| panic!("{name}: fixture missing `//@ path:` directive")),
        expected,
    )
}

#[test]
fn fixtures_match_their_expectations() {
    let rules = default_rules();
    let mut failures = Vec::new();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(fixtures_dir())
        .expect("tests/fixtures must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for fixture in entries {
        let name = fixture
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = std::fs::read_to_string(&fixture).expect("readable fixture");
        let (virtual_path, mut expected) = parse_directives(&name, &src);
        let report = lint_source(&virtual_path, &src, &rules);
        let mut actual: Vec<Expectation> = report
            .findings
            .iter()
            .map(|f| (f.line, f.rule.to_string(), f.waived))
            .collect();
        expected.sort();
        actual.sort();
        if expected != actual {
            failures.push(format!(
                "{name} (as {virtual_path}):\n  expected: {expected:?}\n  actual:   {actual:?}"
            ));
        }
        checked += 1;
    }
    assert!(
        checked >= 10,
        "fixture suite went missing ({checked} files)"
    );
    assert!(
        failures.is_empty(),
        "fixture expectations diverged:\n{}",
        failures.join("\n")
    );
}

/// Every shipped rule carries at least one failing and one passing
/// fixture, by naming convention — the contract `rules.rs` documents for
/// adding a rule.
#[test]
fn every_rule_has_fail_and_pass_fixtures() {
    let dir = fixtures_dir();
    for rule in sm_lint::RULE_IDS {
        let snake = rule.replace('-', "_");
        for kind in ["fail", "pass"] {
            let p = dir.join(format!("{snake}_{kind}.rs"));
            assert!(
                p.exists(),
                "rule `{rule}` is missing its {kind} fixture at {}",
                p.display()
            );
        }
    }
}

/// The waiver engine's behaviors have dedicated fixtures too (used,
/// unused, malformed) — pinned here so they are not quietly deleted.
#[test]
fn waiver_behavior_fixtures_exist() {
    let dir = fixtures_dir();
    for f in [
        "waivers_used.rs",
        "waiver_unused.rs",
        "waiver_malformed.rs",
        "test_mask.rs",
    ] {
        assert!(dir.join(f).exists(), "missing fixture {f}");
    }
}
