//! Deep-chain merge workloads — the adversarial shape for per-client
//! evaluation cost.
//!
//! Balanced (Delay Guaranteed / dyadic) merge trees give every client a
//! *logarithmic* root path, so per-client receiving programs are short. A
//! **chain** is the opposite extreme: client `k` merges through all `k` of
//! its predecessors, its receiving program has `k + 1` segments, and any
//! evaluator that is quadratic in segments blows up — the workload that
//! motivated the event engine's `O(segments log segments)` endpoint sweep.
//!
//! Chains are not just adversarial, they are *feasible*: with consecutive
//! arrivals, Lemma 1 gives chain node `x` (0-based, chain length `c`) the
//! stream length `2(c − 1 − x) + 1`, and client `k`'s program takes parts
//! `[2(k − j), 2(k − j) + 1]` from ancestor `j ≥ 1` and parts `2k..=L` from
//! the root — every deadline is met exactly (zero slack) as long as
//! `L ≥ 2(c − 1)`. [`max_feasible_chain`] is that bound; the generator
//! tiles arrivals with chains of exactly that length.

use sm_core::{consecutive_slots, MergeForest, MergeTree};

/// Longest chain feasible for media length `media_len` under consecutive
/// arrivals: `c = L/2 + 1`, from the root-segment condition `L ≥ 2(c − 1)`.
pub fn max_feasible_chain(media_len: u64) -> usize {
    (media_len / 2) as usize + 1
}

/// A forest of maximal-depth feasible merge chains over `n` consecutive
/// arrivals: every tree is a chain of [`max_feasible_chain`]`(media_len)`
/// arrivals (the last tree takes the remainder), paired with the matching
/// `consecutive_slots` arrival times.
///
/// The result always simulates cleanly, making it a drop-in stress shape
/// for benches and the equivalence suite.
///
/// # Panics
/// Panics if `n == 0`.
pub fn deep_chain_forest(n: usize, media_len: u64) -> (MergeForest, Vec<i64>) {
    assert!(n > 0, "need at least one arrival");
    let chain = max_feasible_chain(media_len);
    let mut trees = Vec::with_capacity(n.div_ceil(chain));
    let mut left = n;
    while left > 0 {
        let k = left.min(chain);
        trees.push(MergeTree::chain(k));
        left -= k;
    }
    let forest = MergeForest::from_trees(trees).expect("n > 0 arrivals");
    (forest, consecutive_slots(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_arrivals_into_maximal_chains() {
        let (forest, times) = deep_chain_forest(130, 100);
        // L = 100 → chains of 51: two full chains plus a 28-node remainder.
        assert_eq!(forest.sizes(), vec![51, 51, 28]);
        assert_eq!(times.len(), 130);
        assert_eq!(times, consecutive_slots(130));
    }

    #[test]
    fn max_feasible_chain_bound() {
        assert_eq!(max_feasible_chain(0), 1);
        assert_eq!(max_feasible_chain(1), 1);
        assert_eq!(max_feasible_chain(2), 2);
        assert_eq!(max_feasible_chain(100), 51);
        assert_eq!(max_feasible_chain(101), 51);
    }

    #[test]
    fn deep_chains_simulate_cleanly_with_zero_slack() {
        for media in [2u64, 9, 40, 101] {
            let n = 3 * max_feasible_chain(media) + 1;
            let (forest, times) = deep_chain_forest(n, media);
            let report = sm_sim::simulate(&forest, &times, media)
                .unwrap_or_else(|e| panic!("L = {media}: {e}"));
            assert_eq!(report.clients.len(), n);
            for cr in &report.clients {
                assert!(cr.max_concurrent <= 2);
                // Chain programs are exactly tight: every non-root client's
                // first part from each ancestor arrives just in time.
                assert_eq!(cr.min_slack, 0, "client {} (L = {media})", cr.client);
            }
        }
    }

    #[test]
    fn one_longer_chain_is_infeasible() {
        // The L ≥ 2(c − 1) bound is exact: one more node and the root
        // segment of the last client starts past the media end.
        let media = 40u64;
        let c = max_feasible_chain(media) + 1;
        let forest = MergeForest::single(MergeTree::chain(c));
        let times = consecutive_slots(c);
        assert!(sm_sim::simulate(&forest, &times, media).is_err());
    }
}
