//! A two-state Markov-modulated Poisson process (on/off bursts) — the
//! traffic shape that motivates the paper's §5 hybrid proposal: intensities
//! alternate between "heavier than the delay window" and "much lighter".

use crate::arrivals::ArrivalProcess;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Two-phase bursty arrivals: exponential gaps whose mean switches between
/// a *burst* phase and a *lull* phase; phase durations are exponential too.
#[derive(Debug, Clone)]
pub struct BurstyProcess {
    /// Mean inter-arrival gap during bursts.
    pub burst_gap: f64,
    /// Mean inter-arrival gap during lulls.
    pub lull_gap: f64,
    /// Mean duration of a burst phase.
    pub burst_len: f64,
    /// Mean duration of a lull phase.
    pub lull_len: f64,
    rng: SmallRng,
}

impl BurstyProcess {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics unless all four parameters are positive.
    pub fn new(burst_gap: f64, lull_gap: f64, burst_len: f64, lull_len: f64, seed: u64) -> Self {
        assert!(
            burst_gap > 0.0 && lull_gap > 0.0 && burst_len > 0.0 && lull_len > 0.0,
            "all bursty-process parameters must be positive"
        );
        Self {
            burst_gap,
            lull_gap,
            burst_len,
            lull_len,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.random();
        -(1.0_f64 - u).ln() * mean
    }

    /// Long-run mean inter-arrival gap (harmonic mixture weighted by phase
    /// occupancy).
    pub fn effective_mean_gap(&self) -> f64 {
        let p_burst = self.burst_len / (self.burst_len + self.lull_len);
        let rate = p_burst / self.burst_gap + (1.0 - p_burst) / self.lull_gap;
        1.0 / rate
    }
}

impl ArrivalProcess for BurstyProcess {
    fn generate(&mut self, horizon: f64) -> Vec<f64> {
        // Exact MMPP construction via competing exponential clocks: in each
        // phase, race the next-arrival clock against the phase-switch
        // clock; by memorylessness the arrival clock may be re-drawn after
        // a switch.
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut in_burst = true;
        let mut phase_end = self.exp(self.burst_len);
        while t < horizon {
            let gap_mean = if in_burst {
                self.burst_gap
            } else {
                self.lull_gap
            };
            let candidate = t + self.exp(gap_mean);
            if candidate <= phase_end {
                t = candidate;
                if t > horizon {
                    break;
                }
                if out.last().is_some_and(|&last| t <= last) {
                    continue;
                }
                out.push(t);
            } else {
                // Phase switch fires first: jump to it, drop the arrival
                // candidate (memorylessness), draw the next phase length.
                t = phase_end;
                in_burst = !in_burst;
                let dur = if in_burst {
                    self.exp(self.burst_len)
                } else {
                    self.exp(self.lull_len)
                };
                phase_end += dur;
            }
        }
        out
    }

    fn mean_interarrival(&self) -> f64 {
        self.effective_mean_gap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(seed: u64) -> BurstyProcess {
        // Bursts: 10 arrivals/unit for ~50 units; lulls: 0.05/unit for ~50.
        BurstyProcess::new(0.1, 20.0, 50.0, 50.0, seed)
    }

    #[test]
    fn reproducible_per_seed() {
        let a = make(9).generate(500.0);
        let b = make(9).generate(500.0);
        let c = make(10).generate(500.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn strictly_increasing_in_range() {
        let ts = make(3).generate(1000.0);
        assert!(!ts.is_empty());
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ts.iter().all(|&t| t > 0.0 && t <= 1000.0));
    }

    #[test]
    fn burstier_than_poisson() {
        // Coefficient of variation of gaps must exceed 1 (Poisson = 1).
        let ts = make(7).generate(20_000.0);
        let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.5, "cv = {cv}");
    }

    #[test]
    fn effective_rate_roughly_matches() {
        let p = make(1);
        let expected_gap = p.effective_mean_gap();
        let ts = make(1).generate(50_000.0);
        let measured_gap = 50_000.0 / ts.len() as f64;
        assert!(
            (measured_gap / expected_gap - 1.0).abs() < 0.35,
            "measured {measured_gap}, expected {expected_gap}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_parameters() {
        let _ = BurstyProcess::new(0.0, 1.0, 1.0, 1.0, 0);
    }
}
