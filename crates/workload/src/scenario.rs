//! Named experiment scenarios: the concrete configurations the paper's
//! empirical section and our examples use, in one place.

/// A fully specified simulation scenario in *slot* units (1 slot = the
/// guaranteed start-up delay).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// Media length in slots (`L`).
    pub media_slots: u64,
    /// Simulation horizon in slots.
    pub horizon_slots: f64,
    /// Mean inter-arrival gap in slots (the paper's λ, rescaled).
    pub mean_gap_slots: f64,
}

impl Scenario {
    /// λ as a percentage of the media length (the paper's x-axis).
    pub fn lambda_pct_of_media(&self) -> f64 {
        100.0 * self.mean_gap_slots / self.media_slots as f64
    }

    /// Expected number of arrivals over the horizon.
    pub fn expected_arrivals(&self) -> f64 {
        self.horizon_slots / self.mean_gap_slots
    }
}

/// The paper's §4.2 base setup: delay = 1% of the media (L = 100), horizon
/// 100 media lengths, intensity given as % of media length.
pub fn paper_section42(lambda_pct: f64) -> Scenario {
    Scenario {
        name: "paper §4.2",
        media_slots: 100,
        horizon_slots: 100.0 * 100.0,
        mean_gap_slots: lambda_pct / 100.0 * 100.0,
    }
}

/// The paper's illustrative movie: 2 hours with a 15-minute delay (L = 8),
/// arrivals every half delay on average, one day of service.
pub fn movie_night() -> Scenario {
    Scenario {
        name: "2h movie, 15min delay",
        media_slots: 8,
        horizon_slots: 24.0 * 60.0 / 15.0,
        mean_gap_slots: 0.5,
    }
}

/// A stress scenario: very tight delay relative to the media.
pub fn tight_delay() -> Scenario {
    Scenario {
        name: "0.1% delay",
        media_slots: 1000,
        horizon_slots: 20_000.0,
        mean_gap_slots: 0.2,
    }
}

/// The flash-crowd scenario: steady background traffic with a premiere
/// spike one media length into the horizon. Pair the returned scenario with
/// [`crate::FlashCrowd`] via [`flash_crowd_process`] — the spike multiplies
/// the base rate by 50 for half a media length, the load shape the
/// event-driven simulator is built to absorb.
pub fn flash_crowd() -> Scenario {
    Scenario {
        name: "flash crowd (×50 premiere spike)",
        media_slots: 100,
        horizon_slots: 100.0 * 100.0,
        mean_gap_slots: 2.0,
    }
}

/// The deep-chain scenario: one arrival per slot, merged into
/// maximal-depth feasible chains instead of balanced trees — the
/// pathological shape for per-client evaluation cost. Pair with
/// [`crate::deep_chain_forest`] via [`deep_chain_forest_for`]; at `L = 100`
/// every tree is a 51-deep chain.
pub fn deep_chain() -> Scenario {
    Scenario {
        name: "deep merge chains (depth L/2 + 1)",
        media_slots: 100,
        horizon_slots: 100.0 * 100.0,
        mean_gap_slots: 1.0,
    }
}

/// The chain forest and arrival times realizing [`deep_chain`] over `n`
/// arrivals.
pub fn deep_chain_forest_for(s: &Scenario, n: usize) -> (sm_core::MergeForest, Vec<i64>) {
    crate::deep_chain_forest(n, s.media_slots)
}

/// The seeded [`crate::FlashCrowd`] process matching [`flash_crowd`]: the
/// spike starts at one media length and lasts half a media length.
pub fn flash_crowd_process(seed: u64) -> crate::FlashCrowd {
    let s = flash_crowd();
    crate::FlashCrowd::new(
        s.mean_gap_slots,
        s.media_slots as f64,
        s.media_slots as f64 / 2.0,
        50.0,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_units() {
        let s = paper_section42(1.0);
        assert_eq!(s.media_slots, 100);
        assert_eq!(s.horizon_slots, 10_000.0);
        assert_eq!(s.mean_gap_slots, 1.0);
        assert!((s.lambda_pct_of_media() - 1.0).abs() < 1e-12);
        assert_eq!(s.expected_arrivals(), 10_000.0);
    }

    #[test]
    fn movie_night_units() {
        let s = movie_night();
        assert_eq!(s.media_slots, 8);
        assert_eq!(s.horizon_slots, 96.0);
        assert!(s.expected_arrivals() > 100.0);
    }

    #[test]
    fn flash_crowd_scenario_and_process_agree() {
        use crate::ArrivalProcess;
        let s = flash_crowd();
        let mut p = flash_crowd_process(5);
        assert_eq!(p.mean_interarrival(), s.mean_gap_slots);
        let ts = p.generate(s.horizon_slots);
        // The spike window [L, 1.5L) is far denser than steady state.
        let in_spike = ts.iter().filter(|&&t| (100.0..150.0).contains(&t)).count() as f64;
        let steady = ts.iter().filter(|&&t| (500.0..550.0).contains(&t)).count() as f64;
        assert!(in_spike > 5.0 * steady.max(1.0));
    }

    #[test]
    fn deep_chain_scenario_realizes_maximal_chains() {
        let s = deep_chain();
        let (forest, times) = deep_chain_forest_for(&s, 102);
        assert_eq!(forest.sizes(), vec![51, 51]);
        assert_eq!(times.len(), 102);
    }

    #[test]
    fn lambda_scaling() {
        for pct in [0.05, 0.5, 1.0, 5.0] {
            let s = paper_section42(pct);
            assert!((s.lambda_pct_of_media() - pct).abs() < 1e-9);
        }
    }
}
