//! Aggregation over repeated randomized runs (Poisson experiments average
//! several seeds; the summary carries mean and dispersion).

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let std_dev = if n >= 2 {
            let ss: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
            (ss / (n as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev,
            min,
            max,
        }
    }

    /// Half-width of a ~95% normal confidence interval for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - 1.2909944487358056).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 4.0));
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }
}
