//! Workload generation for the empirical section (§4.2).
//!
//! The paper's experiments use two client arrival patterns over a horizon of
//! 100 media lengths: **constant rate** (fixed inter-arrival gap λ) and
//! **Poisson** (exponential gaps with mean λ), with λ swept from ~0% to 5%
//! of the media length. [`arrivals`] implements both as seeded, reproducible
//! processes; [`stats`] provides the aggregation used when averaging Poisson
//! runs over seeds.

pub mod arrivals;
pub mod bursty;
pub mod diurnal;
pub mod flash_crowd;
pub mod scenario;
pub mod stats;

pub use arrivals::{ArrivalProcess, ConstantRate, PoissonProcess};
pub use bursty::BurstyProcess;
pub use diurnal::DiurnalProcess;
pub use flash_crowd::FlashCrowd;
pub use scenario::Scenario;
pub use stats::Summary;
