#![forbid(unsafe_code)]
//! Workload generation for the empirical section (§4.2).
//!
//! The paper's experiments use two client arrival patterns over a horizon of
//! 100 media lengths: **constant rate** (fixed inter-arrival gap λ) and
//! **Poisson** (exponential gaps with mean λ), with λ swept from ~0% to 5%
//! of the media length. [`arrivals`] implements both as seeded, reproducible
//! processes; [`stats`] provides the aggregation used when averaging Poisson
//! runs over seeds. Beyond the paper's patterns, [`bursty`], [`diurnal`],
//! and [`flash_crowd`] stress the arrival *process*, while [`deep_chain`]
//! stresses the merge *structure* (maximal-depth feasible chains, the
//! pathological case for per-client evaluation).

pub mod arrivals;
pub mod bursty;
pub mod deep_chain;
pub mod diurnal;
pub mod flash_crowd;
pub mod scenario;
pub mod stats;

pub use arrivals::{ArrivalProcess, ConstantRate, PoissonProcess};
pub use bursty::BurstyProcess;
pub use deep_chain::{deep_chain_forest, max_feasible_chain};
pub use diurnal::DiurnalProcess;
pub use flash_crowd::FlashCrowd;
pub use scenario::Scenario;
pub use stats::Summary;
