//! A diurnal (day-shaped) non-homogeneous Poisson process.
//!
//! VoD demand follows a daily cycle: a quiet trough in the early hours and
//! a prime-time peak in the evening. The §5 discussion — switch policies or
//! re-provision delays as load changes — is really about this shape, so the
//! extension experiments need it as a workload. The process is a
//! non-homogeneous Poisson process with rate
//!
//! ```text
//! λ(t) = base_rate · (1 + swing · sin(2π·(t − phase)/period))
//! ```
//!
//! (`0 ≤ swing < 1`, so the rate stays positive), sampled exactly by
//! Lewis–Shedler **thinning**: candidate points are drawn from a homogeneous
//! process at the peak rate `λ_max = base·(1+swing)` and kept with
//! probability `λ(t)/λ_max`.

use crate::arrivals::ArrivalProcess;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::f64::consts::TAU;

/// Sinusoidal-rate Poisson arrivals.
#[derive(Debug, Clone)]
pub struct DiurnalProcess {
    /// Mean arrivals per time unit, averaged over a full period.
    pub base_rate: f64,
    /// Relative amplitude of the daily swing, in `[0, 1)`.
    pub swing: f64,
    /// Cycle length (e.g. 1440 for minutes-per-day).
    pub period: f64,
    /// Phase offset: `λ` peaks a quarter period after `phase`.
    pub phase: f64,
    rng: SmallRng,
}

impl DiurnalProcess {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics unless `base_rate > 0`, `0 ≤ swing < 1` and `period > 0`.
    pub fn new(base_rate: f64, swing: f64, period: f64, phase: f64, seed: u64) -> Self {
        assert!(base_rate > 0.0, "base rate must be positive");
        assert!((0.0..1.0).contains(&swing), "swing must lie in [0, 1)");
        assert!(period > 0.0, "period must be positive");
        Self {
            base_rate,
            swing,
            period,
            phase,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.base_rate * (1.0 + self.swing * (TAU * (t - self.phase) / self.period).sin())
    }

    fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.random();
        -(1.0_f64 - u).ln() * mean
    }
}

impl ArrivalProcess for DiurnalProcess {
    fn mean_interarrival(&self) -> f64 {
        // The sinusoid integrates to zero over a period, so the long-run
        // mean rate is the base rate.
        1.0 / self.base_rate
    }

    fn generate(&mut self, horizon: f64) -> Vec<f64> {
        let rate_max = self.base_rate * (1.0 + self.swing);
        let mut out = Vec::with_capacity((horizon * self.base_rate) as usize + 16);
        let mut t = 0.0f64;
        loop {
            t += self.exp(1.0 / rate_max);
            if t > horizon {
                break;
            }
            let keep: f64 = self.rng.random();
            if keep * rate_max <= self.rate_at(t) {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_by_phase(arrivals: &[f64], period: f64, bins: usize) -> Vec<usize> {
        let mut counts = vec![0usize; bins];
        for &t in arrivals {
            let frac = (t % period) / period;
            counts[((frac * bins as f64) as usize).min(bins - 1)] += 1;
        }
        counts
    }

    #[test]
    fn mean_rate_matches_base_rate() {
        let mut p = DiurnalProcess::new(2.0, 0.8, 100.0, 0.0, 7);
        let horizon = 50_000.0;
        let arrivals = p.generate(horizon);
        let rate = arrivals.len() as f64 / horizon;
        assert!((rate - 2.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn peak_quarter_sees_more_than_trough_quarter() {
        let mut p = DiurnalProcess::new(1.0, 0.9, 1000.0, 0.0, 11);
        let arrivals = p.generate(100_000.0);
        let counts = counts_by_phase(&arrivals, 1000.0, 4);
        // sin peaks in the first quarter and troughs in the third.
        assert!(
            counts[0] as f64 > 2.0 * counts[2] as f64,
            "peak {} vs trough {}",
            counts[0],
            counts[2]
        );
    }

    #[test]
    fn zero_swing_is_homogeneous_poisson() {
        let mut p = DiurnalProcess::new(1.5, 0.0, 100.0, 0.0, 3);
        let arrivals = p.generate(40_000.0);
        let counts = counts_by_phase(&arrivals, 100.0, 4);
        let mean = arrivals.len() as f64 / 4.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - mean).abs() < 0.05 * mean,
                "bin {i}: {c} vs {mean}"
            );
        }
    }

    #[test]
    fn reproducible_by_seed_and_strictly_increasing() {
        let a = DiurnalProcess::new(1.0, 0.5, 200.0, 30.0, 42).generate(5_000.0);
        let b = DiurnalProcess::new(1.0, 0.5, 200.0, 30.0, 42).generate(5_000.0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&t| t > 0.0 && t <= 5_000.0));
    }

    #[test]
    fn phase_shifts_the_peak() {
        let base = DiurnalProcess::new(1.0, 0.9, 1000.0, 0.0, 5).generate(100_000.0);
        let shifted = DiurnalProcess::new(1.0, 0.9, 1000.0, 500.0, 5).generate(100_000.0);
        let cb = counts_by_phase(&base, 1000.0, 4);
        let cs = counts_by_phase(&shifted, 1000.0, 4);
        // Shifting by half a period swaps peak and trough quarters.
        assert!(cb[0] > cb[2]);
        assert!(cs[2] > cs[0]);
    }

    #[test]
    #[should_panic]
    fn swing_of_one_rejected() {
        let _ = DiurnalProcess::new(1.0, 1.0, 100.0, 0.0, 1);
    }
}
