//! Flash-crowd arrivals: a baseline Poisson stream with a sudden,
//! short-lived rate spike — the "everyone tunes in at the premiere" shape
//! that stresses a media-on-demand server far harder than any stationary
//! process, and the workload the event-driven simulator exists to absorb.

use crate::arrivals::ArrivalProcess;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Poisson arrivals whose rate is multiplied by `burst_factor` during the
/// window `[burst_start, burst_start + burst_len)`.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Mean inter-arrival gap outside the spike.
    pub base_gap: f64,
    /// When the spike begins.
    pub burst_start: f64,
    /// How long the spike lasts.
    pub burst_len: f64,
    /// Rate multiplier during the spike (≥ 1: a crowd, not a lull).
    pub burst_factor: f64,
    rng: SmallRng,
}

impl FlashCrowd {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics unless `base_gap > 0`, `burst_len > 0`, `burst_factor >= 1`
    /// and `burst_start >= 0`.
    pub fn new(
        base_gap: f64,
        burst_start: f64,
        burst_len: f64,
        burst_factor: f64,
        seed: u64,
    ) -> Self {
        assert!(base_gap > 0.0, "base inter-arrival gap must be positive");
        assert!(burst_len > 0.0, "burst length must be positive");
        assert!(burst_factor >= 1.0, "a flash crowd multiplies the rate");
        assert!(burst_start >= 0.0, "burst must start within the horizon");
        Self {
            base_gap,
            burst_start,
            burst_len,
            burst_factor,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn rate_at(&self, t: f64) -> f64 {
        let base = 1.0 / self.base_gap;
        if t >= self.burst_start && t < self.burst_start + self.burst_len {
            base * self.burst_factor
        } else {
            base
        }
    }

    /// Peak instantaneous rate (arrivals per time unit, inside the spike).
    pub fn peak_rate(&self) -> f64 {
        self.burst_factor / self.base_gap
    }
}

impl ArrivalProcess for FlashCrowd {
    fn generate(&mut self, horizon: f64) -> Vec<f64> {
        // Ogata thinning against the peak rate: exact for a piecewise-
        // constant intensity, and trivially reproducible from the seed.
        let lambda_max = self.peak_rate();
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = self.rng.random();
            t += -(1.0_f64 - u).ln() / lambda_max;
            if t > horizon {
                break;
            }
            let accept: f64 = self.rng.random();
            if accept * lambda_max >= self.rate_at(t) {
                continue;
            }
            if out.last().is_some_and(|&last| t <= last) {
                continue;
            }
            out.push(t);
        }
        out
    }

    fn mean_interarrival(&self) -> f64 {
        self.base_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(ts: &[f64], lo: f64, hi: f64) -> usize {
        ts.iter().filter(|&&t| t >= lo && t < hi).count()
    }

    #[test]
    fn spike_concentrates_arrivals() {
        // Base gap 1, ×20 during [400, 450): the spike window must be far
        // denser than an equally long quiet window.
        let mut p = FlashCrowd::new(1.0, 400.0, 50.0, 20.0, 7);
        let ts = p.generate(1_000.0);
        let quiet = count_in(&ts, 100.0, 150.0);
        let burst = count_in(&ts, 400.0, 450.0);
        assert!(
            burst > 5 * quiet,
            "burst {burst} should dwarf quiet {quiet}"
        );
        // Rates concentrate: ~50 arrivals quiet, ~1000 in the spike.
        assert!((30..=75).contains(&quiet), "quiet window count {quiet}");
        assert!((800..=1200).contains(&burst), "burst window count {burst}");
    }

    #[test]
    fn reproducible_per_seed() {
        let a = FlashCrowd::new(0.5, 100.0, 20.0, 10.0, 3).generate(500.0);
        let b = FlashCrowd::new(0.5, 100.0, 20.0, 10.0, 3).generate(500.0);
        let c = FlashCrowd::new(0.5, 100.0, 20.0, 10.0, 4).generate(500.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn strictly_increasing_within_horizon() {
        let ts = FlashCrowd::new(0.2, 50.0, 10.0, 30.0, 11).generate(200.0);
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ts.iter().all(|&t| t > 0.0 && t <= 200.0));
    }

    #[test]
    fn factor_one_is_plain_poisson_rate() {
        let ts = FlashCrowd::new(0.1, 10.0, 5.0, 1.0, 9).generate(5_000.0);
        let expected = 5_000.0 / 0.1;
        let got = ts.len() as f64;
        assert!(
            (got - expected).abs() < 0.05 * expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    #[should_panic]
    fn sub_unit_factor_rejected() {
        let _ = FlashCrowd::new(1.0, 0.0, 1.0, 0.5, 0);
    }
}
