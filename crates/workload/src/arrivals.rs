//! Arrival processes.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A process that generates client arrival times over `(0, horizon]`.
pub trait ArrivalProcess {
    /// Strictly increasing arrival times within `(0, horizon]`.
    fn generate(&mut self, horizon: f64) -> Vec<f64>;

    /// Mean inter-arrival gap (the paper's λ).
    fn mean_interarrival(&self) -> f64;
}

/// Constant-rate arrivals: one client every `interval` time units, starting
/// at `interval` (so arrival times are `interval, 2·interval, …`).
#[derive(Debug, Clone, Copy)]
pub struct ConstantRate {
    /// Fixed gap between consecutive arrivals.
    pub interval: f64,
}

impl ConstantRate {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics if `interval <= 0`.
    pub fn new(interval: f64) -> Self {
        assert!(interval > 0.0, "inter-arrival interval must be positive");
        Self { interval }
    }
}

impl ArrivalProcess for ConstantRate {
    fn generate(&mut self, horizon: f64) -> Vec<f64> {
        let n = (horizon / self.interval).floor() as usize;
        (1..=n).map(|k| k as f64 * self.interval).collect()
    }

    fn mean_interarrival(&self) -> f64 {
        self.interval
    }
}

/// Poisson arrivals: i.i.d. exponential gaps with mean `mean_interarrival`,
/// driven by a seeded [`SmallRng`] for reproducibility.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    mean: f64,
    rng: SmallRng,
}

impl PoissonProcess {
    /// Creates the process with an explicit seed.
    ///
    /// # Panics
    /// Panics if `mean_interarrival <= 0`.
    pub fn new(mean_interarrival: f64, seed: u64) -> Self {
        assert!(
            mean_interarrival > 0.0,
            "mean inter-arrival must be positive"
        );
        Self {
            mean: mean_interarrival,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn next_gap(&mut self) -> f64 {
        // Inverse-CDF exponential sampling; 1−u ∈ (0, 1] avoids ln(0).
        let u: f64 = self.rng.random();
        -(1.0_f64 - u).ln() * self.mean
    }
}

impl ArrivalProcess for PoissonProcess {
    fn generate(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity((horizon / self.mean) as usize + 16);
        let mut t = 0.0;
        loop {
            t += self.next_gap();
            if t > horizon {
                break;
            }
            // Guard against pathological zero gaps at f64 resolution.
            if let Some(&last) = out.last() {
                if t <= last {
                    continue;
                }
            }
            out.push(t);
        }
        out
    }

    fn mean_interarrival(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_count_and_spacing() {
        let mut p = ConstantRate::new(0.5);
        let ts = p.generate(10.0);
        assert_eq!(ts.len(), 20);
        assert_eq!(ts[0], 0.5);
        for w in ts.windows(2) {
            assert!((w[1] - w[0] - 0.5).abs() < 1e-12);
        }
        assert!(*ts.last().unwrap() <= 10.0);
    }

    #[test]
    fn constant_rate_is_deterministic() {
        let a = ConstantRate::new(0.37).generate(50.0);
        let b = ConstantRate::new(0.37).generate(50.0);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_is_reproducible_per_seed() {
        let a = PoissonProcess::new(0.2, 42).generate(100.0);
        let b = PoissonProcess::new(0.2, 42).generate(100.0);
        let c = PoissonProcess::new(0.2, 43).generate(100.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        // Over a long horizon the empirical rate concentrates around 1/λ.
        let mean = 0.05;
        let horizon = 10_000.0;
        let ts = PoissonProcess::new(mean, 7).generate(horizon);
        let expected = horizon / mean;
        let got = ts.len() as f64;
        assert!(
            (got - expected).abs() < 0.05 * expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn poisson_times_strictly_increasing_and_in_range() {
        let ts = PoissonProcess::new(0.01, 3).generate(100.0);
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ts.iter().all(|&t| t > 0.0 && t <= 100.0));
    }

    #[test]
    fn exponential_gaps_have_right_dispersion() {
        // For an exponential distribution the variance equals the squared
        // mean; check the coefficient of variation is ~1 (vs 0 for the
        // constant-rate process).
        let ts = PoissonProcess::new(0.1, 11).generate(5_000.0);
        let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv = {cv}");
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        let _ = ConstantRate::new(0.0);
    }
}
