//! The receive-all model (§3.4): clients may receive *any* number of streams
//! simultaneously.
//!
//! Stream lengths shrink to `ω(x) = z(x) − p(x)` (Lemma 17) and the optimal
//! merge cost obeys a powers-of-two closed form (Eq. (20)):
//!
//! ```text
//! Mω(n) = (k+1)·n − 2^{k+1} + 1    for 2^k ≤ n ≤ 2^{k+1},
//! ```
//!
//! achieved by balanced binary splits (`h = ⌊n/2⌋` or `⌈n/2⌉`). The
//! surprising punchline (Theorems 19/20): receive-all saves only a factor
//! `log_φ 2 ≈ 1.44` over receive-two.

use crate::closed_form::ClosedForm;
use sm_core::{MergeForest, MergeTree};

/// `Mω(n)` by the closed form of Eq. (20). `Mω(0) = Mω(1) = 0`.
pub fn merge_cost(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let k = 63 - n.leading_zeros() as u64; // floor(log2 n)
    (k + 1) * n - (1u64 << (k + 1)) + 1
}

/// `Mω(1..=n)` by the DP recurrence (Eq. (19)):
/// `Mω(n) = min_h {Mω(h) + Mω(n−h)} + n − 1` — the `O(n²)` baseline.
pub fn merge_cost_table_dp(n: usize) -> Vec<u64> {
    let mut m = vec![0u64; n + 1];
    for i in 2..=n {
        m[i] = (1..i)
            .map(|h| m[h] + m[i - h])
            .min()
            .expect("i >= 2 has a split")
            + (i - 1) as u64;
    }
    m
}

/// The optimal last-merge splits in the receive-all model.
///
/// The paper states the split is optimal "if and only if `h = ⌊n/2⌋` or
/// `⌈n/2⌉`"; the *if* direction (all their induction needs) holds, but the
/// *only-if* does not — e.g. `n = 6` admits the optimal splits `{2, 3, 4}`
/// since `Mω(2)+Mω(4) = Mω(3)+Mω(3) = 6`. Tests pin down both facts.
pub fn optimal_splits_dp(n: usize) -> Vec<usize> {
    assert!(n >= 2);
    let m = merge_cost_table_dp(n);
    let best = m[n];
    (1..n)
        .filter(|&h| m[h] + m[n - h] + (n - 1) as u64 == best)
        .collect()
}

/// An optimal receive-all merge tree: balanced binary splits at `⌈n/2⌉`
/// (taking the larger split mirrors `r(i) = max I(i)` in the receive-two
/// builder).
pub fn optimal_merge_tree(n: usize) -> MergeTree {
    assert!(n >= 1);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    fill(&mut parents, 0, n);
    MergeTree::from_parents(&parents).expect("balanced construction is valid")
}

fn fill(parents: &mut [Option<usize>], start: usize, n: usize) {
    if n <= 1 {
        return;
    }
    let split = n.div_ceil(2);
    fill(parents, start, split);
    fill(parents, start + split, n - split);
    parents[start + split] = Some(start);
}

/// `Fω(L, n, s)` (Eq. (22)): `s·L + r·Mω(p+1) + (s−r)·Mω(p)`.
pub fn full_cost_given_s(media_len: u64, n: u64, s: u64) -> u64 {
    assert!(s >= 1 && s <= n);
    let p = n / s;
    let r = n - p * s;
    s * media_len + r * merge_cost(p + 1) + (s - r) * merge_cost(p)
}

/// `Fω(L, n)`: exact optimal receive-all full cost.
///
/// Within a run of constant `p = ⌊n/s⌋` the cost is linear in `s`, so the
/// minimum over each run is at an endpoint; enumerating the `O(√n)` distinct
/// runs gives the exact optimum quickly (no Theorem-12 analogue is stated in
/// the paper for this model).
pub fn optimal_full_cost(media_len: u64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let s0 = n.div_ceil(media_len);
    let mut best = u64::MAX;
    let mut s = s0.max(1);
    while s <= n {
        let p = n / s;
        // Largest s' with ⌊n/s'⌋ == p.
        let run_end = (n / p).min(n);
        for cand in [s, run_end] {
            if cand >= s0 && cand <= n && feasible(media_len, n, cand) {
                best = best.min(full_cost_given_s(media_len, n, cand));
            }
        }
        s = run_end + 1;
    }
    best
}

fn feasible(media_len: u64, n: u64, s: u64) -> bool {
    let p = n / s;
    let r = n - p * s;
    let max_size = if r > 0 { p + 1 } else { p };
    max_size <= media_len
}

/// Builds an optimal receive-all forest: balanced sizes, balanced trees.
pub fn optimal_forest(media_len: u64, n: usize) -> (MergeForest, u64) {
    assert!(n >= 1);
    let s0 = (n as u64).div_ceil(media_len);
    // Recover an optimal s by the same run enumeration as optimal_full_cost.
    let best_cost = optimal_full_cost(media_len, n as u64);
    let mut s_opt = None;
    let mut s = s0.max(1);
    while s <= n as u64 {
        let p = n as u64 / s;
        let run_end = (n as u64 / p).min(n as u64);
        for cand in [s, run_end] {
            if cand >= s0
                && feasible(media_len, n as u64, cand)
                && full_cost_given_s(media_len, n as u64, cand) == best_cost
            {
                s_opt = Some(cand);
            }
        }
        if s_opt.is_some() {
            break;
        }
        s = run_end + 1;
    }
    let s = s_opt.expect("optimal s exists");
    let p = n as u64 / s;
    let r = n as u64 - p * s;
    let mut trees = Vec::with_capacity(s as usize);
    for _ in 0..r {
        trees.push(optimal_merge_tree((p + 1) as usize));
    }
    for _ in 0..(s - r) {
        trees.push(optimal_merge_tree(p as usize));
    }
    (MergeForest::from_trees(trees).expect("s >= 1"), best_cost)
}

/// The merge-cost ratio `M(n)/Mω(n)` of Theorem 19 (→ `log_φ 2 ≈ 1.44`).
pub fn merge_cost_ratio(cf: &ClosedForm, n: u64) -> f64 {
    cf.merge_cost(n) as f64 / merge_cost(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, receive_all_merge_cost};

    #[test]
    fn paper_table_of_momega() {
        // §3.4: n = 1..16 -> 0 1 3 5 8 11 14 17 21 25 29 33 37 41 45 49.
        let expect = [0u64, 1, 3, 5, 8, 11, 14, 17, 21, 25, 29, 33, 37, 41, 45, 49];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(merge_cost(i as u64 + 1), e, "Mω({})", i + 1);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index parallels the math
    fn closed_form_matches_dp() {
        let dp = merge_cost_table_dp(400);
        for n in 1..=400usize {
            assert_eq!(merge_cost(n as u64), dp[n], "Mω({n})");
        }
    }

    #[test]
    fn redundancy_at_powers_of_two() {
        // At n = 2^k both bracket choices agree.
        for k in 1..30u64 {
            let n = 1u64 << k;
            let a = (k + 1) * n - (1 << (k + 1)) + 1;
            let b = k * n - (1 << k) + 1;
            assert_eq!(a, b);
            assert_eq!(merge_cost(n), a);
        }
    }

    #[test]
    fn halves_are_always_optimal_splits() {
        // The "if" direction of the paper's claim: ⌊n/2⌋ and ⌈n/2⌉ always
        // achieve the optimum (this is what the balanced builder relies on).
        for n in 2..=120usize {
            let splits = optimal_splits_dp(n);
            assert!(splits.contains(&(n / 2)), "n = {n}: {splits:?}");
            assert!(splits.contains(&n.div_ceil(2)), "n = {n}: {splits:?}");
        }
    }

    #[test]
    fn paper_only_if_claim_is_an_overclaim() {
        // Documented deviation: at n = 6 the optimal split set is {2,3,4},
        // not just {3} — Mω(2)+Mω(4) = Mω(3)+Mω(3) = 6.
        assert_eq!(optimal_splits_dp(6), vec![2, 3, 4]);
    }

    #[test]
    fn balanced_tree_achieves_closed_form() {
        for n in 1..=200usize {
            let t = optimal_merge_tree(n);
            let times = consecutive_slots(n);
            assert_eq!(
                receive_all_merge_cost(&t, &times) as u64,
                merge_cost(n as u64),
                "n = {n}"
            );
            assert!(t.has_preorder_property());
        }
    }

    #[test]
    fn theorem19_ratio_converges() {
        let cf = ClosedForm::new();
        let limit = sm_fib::golden::receive_two_over_receive_all_limit();
        let r = merge_cost_ratio(&cf, 100_000_000);
        assert!((r - limit).abs() < 0.05, "ratio {r}, limit {limit}");
        // And the asymptotic envelope of Eq. (21): Mω(n) = n·log2(n) + O(n).
        let n = 1u64 << 26;
        let m = merge_cost(n) as f64;
        let nlog = n as f64 * (n as f64).log2();
        assert!((m - nlog).abs() <= 2.0 * n as f64);
    }

    #[test]
    fn full_cost_never_exceeds_receive_two() {
        let cf = ClosedForm::new();
        for media_len in [4u64, 10, 15, 30] {
            for n in 1..=120u64 {
                let two = crate::forest::optimal_full_cost_with(&cf, media_len, n);
                let all = optimal_full_cost(media_len, n);
                assert!(all <= two, "L = {media_len}, n = {n}: {all} > {two}");
            }
        }
    }

    #[test]
    fn optimal_full_cost_matches_linear_scan() {
        for media_len in [2u64, 5, 13, 27] {
            for n in 1..=150u64 {
                let s0 = n.div_ceil(media_len);
                let brute = (s0.max(1)..=n)
                    .filter(|&s| feasible(media_len, n, s))
                    .map(|s| full_cost_given_s(media_len, n, s))
                    .min()
                    .unwrap();
                assert_eq!(
                    optimal_full_cost(media_len, n),
                    brute,
                    "L = {media_len}, n = {n}"
                );
            }
        }
    }

    #[test]
    fn forest_costs_match_model() {
        for (media_len, n) in [(15u64, 8usize), (10, 64), (6, 40)] {
            let (forest, cost) = optimal_forest(media_len, n);
            let times = consecutive_slots(n);
            let model: i64 = sm_core::cost::receive_all_full_cost(&forest, &times, media_len);
            assert_eq!(model as u64, cost, "L = {media_len}, n = {n}");
        }
    }

    #[test]
    fn theorem20_full_cost_ratio() {
        // F(L,n)/Fω(L,n) approaches log_φ 2 from below as L → ∞ (with
        // n ≫ L). The Θ(n) terms make convergence O(1/log L): assert the
        // ratio climbs monotonically toward the limit and lands within 0.15
        // at L = 10⁵.
        let cf = ClosedForm::new();
        let limit = sm_fib::golden::receive_two_over_receive_all_limit();
        let mut prev = 0.0f64;
        for media_len in [100u64, 1_000, 10_000, 100_000] {
            let n = media_len * 300;
            let two = crate::forest::optimal_full_cost_with(&cf, media_len, n) as f64;
            let all = optimal_full_cost(media_len, n) as f64;
            let ratio = two / all;
            assert!(
                ratio > prev,
                "L = {media_len}: ratio {ratio} not increasing"
            );
            assert!(ratio < limit + 0.01, "L = {media_len}: ratio {ratio}");
            prev = ratio;
        }
        assert!(
            (prev - limit).abs() < 0.15,
            "final ratio {prev}, limit {limit}"
        );
    }
}
