//! Asymptotic envelopes from the paper (Theorems 8, 13, 14, 19, 20),
//! exposed as plain functions so tests, benches and experiment annotations
//! can compare measured costs against the predicted growth.

use crate::closed_form::ClosedForm;
use crate::receive_all;
use sm_fib::log_phi;

/// Theorem 8 upper envelope: `M(n) ≤ n·log_φ n` (Eq. (9), for n ≥ 1).
pub fn theorem8_upper(n: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    n as f64 * log_phi(n as f64)
}

/// Theorem 8 lower envelope: `M(n) ≥ n·log_φ n − c·n` with `c = φ² + 1`
/// (Eq. (10)).
pub fn theorem8_lower(n: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let c = sm_fib::PHI * sm_fib::PHI + 1.0;
    n as f64 * log_phi(n as f64) - c * n as f64
}

/// Theorem 13 principal term: `F(L,n) = n·log_φ L + Θ(n)`.
pub fn theorem13_principal(media_len: u64, n: u64) -> f64 {
    if media_len <= 1 {
        return n as f64;
    }
    n as f64 * log_phi(media_len as f64)
}

/// Theorem 14: the advantage of stream merging over plain batching is
/// `Θ(L / log L)`; this returns the measured ratio `n·L / F(L,n)`.
pub fn batching_gain(cf: &ClosedForm, media_len: u64, n: u64) -> f64 {
    let batching = (n as u128 * media_len as u128) as f64;
    let merging = crate::forest::optimal_full_cost_with(cf, media_len, n) as f64;
    batching / merging
}

/// Theorem 14 predicted order of growth: `L / log_φ L`.
pub fn batching_gain_predicted(media_len: u64) -> f64 {
    if media_len <= 2 {
        return 1.0;
    }
    media_len as f64 / log_phi(media_len as f64)
}

/// Theorems 19/20 measured merge-cost ratio `M(n)/Mω(n)`.
pub fn receive_model_ratio(cf: &ClosedForm, n: u64) -> f64 {
    receive_all::merge_cost_ratio(cf, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem8_envelopes_hold() {
        let cf = ClosedForm::new();
        for exp in 1..=12u32 {
            let n = 7u64.pow(exp).min(10_000_000_000);
            let m = cf.merge_cost(n) as f64;
            assert!(m <= theorem8_upper(n) + 1e-6, "n = {n}");
            assert!(m >= theorem8_lower(n) - 1e-6, "n = {n}");
        }
    }

    #[test]
    fn theorem13_principal_tracks_measured() {
        let cf = ClosedForm::new();
        for media_len in [50u64, 200, 1000] {
            let n = media_len * 1000;
            let f = crate::forest::optimal_full_cost_with(&cf, media_len, n) as f64;
            let p = theorem13_principal(media_len, n);
            assert!((f / p - 1.0).abs() < 0.5, "L = {media_len}: {} vs {}", f, p);
        }
    }

    #[test]
    fn batching_gain_grows_like_l_over_log_l() {
        let cf = ClosedForm::new();
        let mut prev_ratio = 0.0;
        for media_len in [10u64, 100, 1000, 10_000] {
            let n = media_len * 100;
            let gain = batching_gain(&cf, media_len, n);
            let predicted = batching_gain_predicted(media_len);
            let ratio = gain / predicted;
            // The constant is implementation-defined but must stabilise.
            assert!((0.3..3.0).contains(&ratio), "L = {media_len}: {ratio}");
            assert!(gain > prev_ratio, "gain must grow with L");
            prev_ratio = gain;
        }
    }

    #[test]
    fn batching_never_beats_merging() {
        let cf = ClosedForm::new();
        for media_len in [2u64, 5, 20, 100] {
            for n in [1u64, 10, 100, 1000] {
                assert!(batching_gain(&cf, media_len, n) >= 1.0 - 1e-12);
            }
        }
    }
}
