//! Closed forms of Theorem 3: the Fibonacci merge-cost formula and the
//! last-merge intervals `I(n)`.
//!
//! With `n = F_k + m` (canonical `k`: the largest with `F_k ≤ n`, so
//! `0 ≤ m < F_{k−1}`):
//!
//! ```text
//! M(n) = (k−1)·n − F_{k+2} + 2
//!
//!          ⎧ [F_{k−1},     F_{k−1} + m]   if 0       ≤ m ≤ F_{k−3}
//! I(n) =   ⎨ [F_{k−2} + m, F_{k−1} + m]   if F_{k−3} ≤ m ≤ F_{k−2}
//!          ⎩ [F_{k−2} + m, F_k        ]   if F_{k−2} ≤ m ≤ F_{k−1}
//! ```
//!
//! The interval cases overlap at their boundaries (the paper's "redundancy");
//! any representation yields the same interval, which the tests confirm
//! against the `O(n²)` DP.

use sm_fib::FibTable;

/// Reusable context carrying the Fibonacci table (allocate once, query many).
#[derive(Debug, Clone, Default)]
pub struct ClosedForm {
    table: FibTable,
}

impl ClosedForm {
    /// Builds the context (cheap: one 94-entry table).
    pub fn new() -> Self {
        Self {
            table: FibTable::new(),
        }
    }

    /// Access to the underlying Fibonacci table.
    pub fn fib(&self) -> &FibTable {
        &self.table
    }

    /// `M(n)`: the optimal merge cost for `n` consecutive arrivals
    /// (Eq. (6)). `M(0) = M(1) = 0`.
    pub fn merge_cost(&self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let k = self.table.largest_index_le(n);
        let val = (k as i128 - 1) * n as i128 - self.table.get(k + 2) as i128 + 2;
        debug_assert!(val >= 0, "M({n}) must be nonnegative");
        val as u64
    }

    /// The marginal cost `M(n+1) − M(n)` (Observation 5): equals `k − 1`
    /// for `F_k ≤ n < F_{k+1}`.
    pub fn merge_cost_increment(&self, n: u64) -> u64 {
        assert!(n >= 1);
        // The canonical (largest) k satisfies F_k <= n < F_{k+1}, exactly
        // the bracket Observation 5 needs.
        let k = self.table.largest_index_le(n);
        (k - 1) as u64
    }

    /// `I(n)`: the inclusive interval `[lo, hi]` of arrivals that can merge
    /// last into the root of an optimal merge tree (Theorem 3).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn last_merge_interval(&self, n: u64) -> (u64, u64) {
        assert!(n >= 2, "I(n) is defined for n >= 2");
        let (k, m) = self.table.decompose(n);
        debug_assert!(k >= 3);
        let f = |i: usize| self.table.get(i);
        if m <= f(k - 3) {
            (f(k - 1), f(k - 1) + m)
        } else if m <= f(k - 2) {
            (f(k - 2) + m, f(k - 1) + m)
        } else {
            (f(k - 2) + m, f(k))
        }
    }

    /// `r(n) = max I(n)`: the split used by the `O(n)` tree construction
    /// (Theorem 7). `r(1) = 0` by convention.
    pub fn max_last_merge(&self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        self.last_merge_interval(n).1
    }

    /// The table `r(1), …, r(n)` via the paper's O(n) recurrence
    /// (proof of Theorem 7):
    ///
    /// ```text
    /// r(1) = 0, r(2) = 1,
    /// r(i) = r(i−1) + 1   if F_k < i ≤ F_k + F_{k−2}
    ///      = r(i−1)       if F_k + F_{k−2} < i ≤ F_{k+1}
    /// ```
    pub fn max_last_merge_table(&self, n: usize) -> Vec<u64> {
        let mut r = vec![0u64; n + 1];
        if n >= 2 {
            r[2] = 1;
        }
        // Maintain k with F_k < i <= F_{k+1}.
        let mut k = 3usize; // for i = 3: F_3 = 2 < 3 <= F_4 = 3
        for i in 3..=n {
            while (i as u64) > self.table.get(k + 1) {
                k += 1;
            }
            let bump = (i as u64) <= self.table.get(k) + self.table.get(k - 2);
            r[i] = r[i - 1] + u64::from(bump);
        }
        r
    }
}

/// Convenience: `M(n)` with a throwaway context.
pub fn merge_cost(n: u64) -> u64 {
    ClosedForm::new().merge_cost(n)
}

/// Convenience: `I(n)` with a throwaway context.
pub fn last_merge_interval(n: u64) -> (u64, u64) {
    ClosedForm::new().last_merge_interval(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;

    #[test]
    fn matches_paper_table() {
        let cf = ClosedForm::new();
        let expect = [0u64, 1, 3, 6, 9, 13, 17, 21, 26, 31, 36, 41, 46, 52, 58, 64];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(cf.merge_cost(i as u64 + 1), e, "M({})", i + 1);
        }
    }

    #[test]
    fn matches_dp_up_to_500() {
        let cf = ClosedForm::new();
        let table = dp::merge_cost_table(500);
        for n in 1..=500u64 {
            assert_eq!(cf.merge_cost(n), table[n as usize], "M({n})");
        }
    }

    #[test]
    fn redundant_at_fibonacci_boundaries() {
        // If n = F_k then (k−1)n − F_{k+2} + 2 = (k−2)n − F_{k+1} + 2.
        let cf = ClosedForm::new();
        for k in 3..40usize {
            let n = cf.fib().get(k);
            let a = (k as i128 - 1) * n as i128 - cf.fib().get(k + 2) as i128 + 2;
            let b = (k as i128 - 2) * n as i128 - cf.fib().get(k + 1) as i128 + 2;
            assert_eq!(a, b, "k = {k}");
            assert_eq!(cf.merge_cost(n) as i128, a);
        }
    }

    #[test]
    fn interval_matches_dp_up_to_300() {
        let cf = ClosedForm::new();
        for n in 2..=300usize {
            let set = dp::last_merge_set(n);
            let (lo, hi) = cf.last_merge_interval(n as u64);
            assert_eq!(lo, set[0] as u64, "I({n}) lo");
            assert_eq!(hi, *set.last().unwrap() as u64, "I({n}) hi");
            assert_eq!(hi - lo + 1, set.len() as u64, "I({n}) size");
        }
    }

    #[test]
    fn fig8_representative_rows() {
        // Fig. 8 shows I(n) for 2..=55; spot-check rows across all three
        // interval regimes (I1 at m small, I2 mid, I3 large) around F_9=34:
        let cf = ClosedForm::new();
        // n=34=F_9, m=0: I = {F_8} = {21}.
        assert_eq!(cf.last_merge_interval(34), (21, 21));
        // n=36, m=2 <= F_6=8: I1 = [21, 23].
        assert_eq!(cf.last_merge_interval(36), (21, 23));
        // n=42=F_9+8, m=8=F_6 boundary of I1/I2: [21, 29].
        assert_eq!(cf.last_merge_interval(42), (21, 29));
        // n=45, m=11, F_6=8 < 11 <= F_7=13: I2 = [13+11, 21+11] = [24, 32].
        assert_eq!(cf.last_merge_interval(45), (24, 32));
        // n=50, m=16, F_7=13 < 16 <= F_8=21: I3 = [13+16, F_9] = [29, 34].
        assert_eq!(cf.last_merge_interval(50), (29, 34));
        // n=55=F_10, m=0: {F_9} = {34}.
        assert_eq!(cf.last_merge_interval(55), (34, 34));
    }

    #[test]
    fn unique_last_merge_exactly_at_fibonacci_n() {
        let cf = ClosedForm::new();
        for n in 2..=1000u64 {
            let (lo, hi) = cf.last_merge_interval(n);
            if sm_fib::is_fibonacci(n) {
                assert_eq!(lo, hi, "I({n}) should be a single point");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index parallels the math
    fn r_table_matches_interval_maximum() {
        let cf = ClosedForm::new();
        let r = cf.max_last_merge_table(2000);
        assert_eq!(r[1], 0);
        for n in 2..=2000usize {
            assert_eq!(r[n], cf.max_last_merge(n as u64), "r({n})");
        }
    }

    #[test]
    fn increments_match_observation5() {
        let cf = ClosedForm::new();
        for n in 1..=2000u64 {
            assert_eq!(
                cf.merge_cost(n + 1) - cf.merge_cost(n),
                cf.merge_cost_increment(n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn increments_are_nondecreasing() {
        // Convexity-ish property behind inequality (12) of Lemma 9.
        let cf = ClosedForm::new();
        let mut prev = 0;
        for n in 1..=5000u64 {
            let inc = cf.merge_cost_increment(n);
            assert!(inc >= prev);
            prev = inc;
        }
    }

    #[test]
    fn large_n_agrees_with_theorem8_envelope() {
        // n·log_φ(n) − c·n ≤ M(n) ≤ n·log_φ(n) with c = φ² + 1 (Thm 8).
        let cf = ClosedForm::new();
        let c = sm_fib::PHI * sm_fib::PHI + 1.0;
        for &n in &[100u64, 1_000, 10_000, 1_000_000, 100_000_000] {
            let m = cf.merge_cost(n) as f64;
            let nlog = n as f64 * sm_fib::log_phi(n as f64);
            assert!(m <= nlog + 1e-6, "upper bound at n = {n}");
            assert!(m >= nlog - c * n as f64 - 1e-6, "lower bound at n = {n}");
        }
    }
}
