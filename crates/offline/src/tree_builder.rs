//! `O(n)` construction of an optimal merge tree (Theorem 7).
//!
//! The procedure: with `r(i) = max I(i)` precomputed by the linear
//! recurrence, an optimal tree for the interval `[i, j]` is the optimal tree
//! for `[i, i + r − 1]` (which contains the root) with the optimal tree for
//! `[i + r, j]` attached as an extra last child of the root, where
//! `r = r(j − i + 1)`.

use crate::closed_form::ClosedForm;
use sm_core::MergeTree;

/// Builds an optimal merge tree for `n` consecutive arrivals in `O(n)`.
///
/// For Fibonacci `n` this is *the* unique optimal tree (the Fibonacci merge
/// tree of Fig. 7); otherwise it is the optimal tree selecting the largest
/// optimal split at every level.
///
/// # Panics
/// Panics if `n == 0`.
pub fn optimal_merge_tree(n: usize) -> MergeTree {
    assert!(n >= 1, "a merge tree needs at least one arrival");
    let cf = ClosedForm::new();
    optimal_merge_tree_with(&cf, n)
}

/// As [`optimal_merge_tree`], reusing a [`ClosedForm`] context.
pub fn optimal_merge_tree_with(cf: &ClosedForm, n: usize) -> MergeTree {
    assert!(n >= 1);
    let r = cf.max_last_merge_table(n);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    fill(&mut parents, 0, n, &r);
    MergeTree::from_parents(&parents).expect("construction is structurally valid")
}

/// The unique optimal tree for `n = F_k` arrivals — the *Fibonacci merge
/// tree* (Fig. 7): its last root child splits the arrivals `F_{k−1}` /
/// `F_{k−2}`.
///
/// # Panics
/// Panics if `n` is not a Fibonacci number ≥ 1.
pub fn fibonacci_merge_tree(n: usize) -> MergeTree {
    assert!(
        sm_fib::is_fibonacci(n as u64) && n >= 1,
        "{n} is not a positive Fibonacci number"
    );
    optimal_merge_tree(n)
}

fn fill(parents: &mut [Option<usize>], start: usize, n: usize, r: &[u64]) {
    if n <= 1 {
        return;
    }
    let split = r[n] as usize;
    debug_assert!((1..n).contains(&split), "r({n}) = {split} out of range");
    fill(parents, start, split, r);
    fill(parents, start + split, n - split, r);
    parents[start + split] = Some(start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::merge_cost as m_closed;
    use crate::dp;
    use sm_core::{consecutive_slots, merge_cost, validate_tree, ValidationOptions};

    #[test]
    fn costs_match_closed_form_up_to_400() {
        for n in 1..=400usize {
            let t = optimal_merge_tree(n);
            assert_eq!(t.len(), n);
            let times = consecutive_slots(n);
            assert_eq!(merge_cost(&t, &times) as u64, m_closed(n as u64), "n = {n}");
        }
    }

    #[test]
    fn trees_match_dp_construction() {
        // Both constructions take the max optimal split, so they agree
        // node for node.
        for n in 1..=80usize {
            let fast = optimal_merge_tree(n);
            let slow = dp::optimal_tree_dp(n);
            assert_eq!(fast, slow, "n = {n}");
        }
    }

    #[test]
    fn preorder_property_always_holds() {
        for n in 1..=200usize {
            assert!(optimal_merge_tree(n).has_preorder_property(), "n = {n}");
        }
    }

    #[test]
    fn fig7_fibonacci_trees() {
        assert_eq!(fibonacci_merge_tree(3).to_sexpr(), "(0 (1) (2))");
        assert_eq!(fibonacci_merge_tree(5).to_sexpr(), "(0 (1) (2) (3 (4)))");
        assert_eq!(
            fibonacci_merge_tree(8).to_sexpr(),
            "(0 (1) (2) (3 (4)) (5 (6) (7)))"
        );
        // Costs from the figure caption: 3, 9, 21, 46.
        for (n, c) in [(3usize, 3u64), (5, 9), (8, 21), (13, 46)] {
            let t = fibonacci_merge_tree(n);
            let times = consecutive_slots(n);
            assert_eq!(merge_cost(&t, &times) as u64, c, "n = {n}");
        }
    }

    #[test]
    fn fibonacci_tree_recursive_structure() {
        // The right-most subtree of the F_k tree is the F_{k−2} tree; the
        // rest is the F_{k−1} tree (paper, after Fig. 7).
        let t13 = fibonacci_merge_tree(13);
        let last_child = *t13.children(0).last().unwrap() as usize;
        assert_eq!(last_child, 8); // split at F_6 = 8
        let t8 = fibonacci_merge_tree(8);
        // Nodes 0..8 of t13 form t8 (same parents).
        for i in 0..8 {
            assert_eq!(t13.parent(i), t8.parent(i), "node {i}");
        }
    }

    #[test]
    #[should_panic]
    fn fibonacci_tree_rejects_non_fibonacci() {
        let _ = fibonacci_merge_tree(6);
    }

    #[test]
    fn trees_are_feasible_when_l_large_enough() {
        // A non-root length is at most 2(n−1)−1, so L = 2n always validates.
        // (L = n does NOT suffice for a single tree — e.g. ℓ(F) = 9 > 8 in
        // Fig. 3 — which is exactly why Theorem 12 uses trees of ~F_h < L
        // arrivals; forest::tests checks that tighter property.)
        for n in 1..=100usize {
            let t = optimal_merge_tree(n);
            let times = consecutive_slots(n);
            validate_tree(&t, &times, 2 * n as u64, ValidationOptions::default())
                .unwrap_or_else(|e| panic!("n = {n}: {e}"));
        }
    }

    #[test]
    fn large_tree_builds_quickly_and_costs_right() {
        let n = 1_000_000usize;
        let t = optimal_merge_tree(n);
        let times = consecutive_slots(n);
        assert_eq!(merge_cost(&t, &times) as u64, m_closed(n as u64));
    }
}
