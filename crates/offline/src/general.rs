//! Optimal stream merging for *general* arrival sequences — the machinery of
//! Bar-Noy & Ladner \[6\] that this paper's delay-guaranteed `O(n)` result
//! improves upon, and the strongest available baseline for the on-line
//! comparisons: given the actual (possibly irregular) arrivals, what would a
//! clairvoyant server have paid?
//!
//! The interval DP: `cost(i, j)` = optimal merge cost of a tree over
//! arrivals `i..=j` rooted at `i`; conditioning on the last child `h` of the
//! root (Lemma 2):
//!
//! ```text
//! cost(i, j) = min_{i < h ≤ j} cost(i, h−1) + cost(h, j) + (2·t_j − t_h − t_i)
//! ```
//!
//! Naively `O(n³)`; with the Knuth-style monotonicity of the optimal split
//! (the quadrangle-inequality argument underlying \[6\]'s `O(n²)` bound) the
//! tables fill in `O(n²)`. Both are implemented; tests cross-check them.

use sm_core::{MergeForest, MergeTree, TimeScalar};

/// Result of the general-arrivals tree DP.
#[derive(Debug, Clone)]
pub struct GeneralTreeSolution<T> {
    /// Optimal merge cost over all arrivals as one tree rooted at the first.
    pub cost: T,
    /// The optimal tree.
    pub tree: MergeTree,
}

/// Optimal merge tree over arbitrary arrival times, `O(n³)` reference
/// implementation.
///
/// # Panics
/// Panics if `times` is empty or not strictly increasing.
pub fn optimal_tree_naive<T: TimeScalar>(times: &[T]) -> GeneralTreeSolution<T> {
    solve(times, false)
}

/// Optimal merge tree over arbitrary arrival times with Knuth-style split
/// monotonicity, `O(n²)`.
///
/// # Panics
/// Panics if `times` is empty or not strictly increasing.
pub fn optimal_tree<T: TimeScalar>(times: &[T]) -> GeneralTreeSolution<T> {
    solve(times, true)
}

fn solve<T: TimeScalar>(times: &[T], knuth: bool) -> GeneralTreeSolution<T> {
    let n = times.len();
    assert!(n >= 1, "need at least one arrival");
    assert!(
        sm_core::time::is_strictly_increasing(times),
        "arrival times must be strictly increasing"
    );
    // cost[i][j] and split[i][j] for 0 <= i <= j < n, stored row-major in
    // flattened vecs indexed by i*n + j.
    let idx = |i: usize, j: usize| i * n + j;
    let mut cost: Vec<Option<T>> = vec![None; n * n];
    let mut split: Vec<usize> = vec![0; n * n];
    for i in 0..n {
        cost[idx(i, i)] = Some(T::zero());
    }
    // Fill by increasing interval length.
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            // Knuth bounds: split is monotone in both interval endpoints.
            let (lo, hi) = if knuth && len > 2 {
                let lo = split[idx(i, j - 1)].max(i + 1);
                let hi = if i < n - 1 && i < j {
                    split[idx(i + 1, j)].min(j).max(lo)
                } else {
                    j
                };
                (lo, hi)
            } else {
                (i + 1, j)
            };
            let mut best: Option<T> = None;
            let mut best_h = lo;
            for h in lo..=hi {
                let c = cost[idx(i, h - 1)].expect("subproblem filled")
                    + cost[idx(h, j)].expect("subproblem filled")
                    + (times[j] - times[h])
                    + (times[j] - times[i]);
                // Ties go to the larger split, mirroring r(i) = max I(i).
                if best.is_none_or(|b| c <= b) {
                    best = Some(c);
                    best_h = h;
                }
            }
            cost[idx(i, j)] = best;
            split[idx(i, j)] = best_h;
        }
    }
    let mut parents: Vec<Option<usize>> = vec![None; n];
    build(&mut parents, &split, n, 0, n - 1);
    GeneralTreeSolution {
        cost: cost[idx(0, n - 1)].expect("root problem solved"),
        tree: MergeTree::from_parents(&parents).expect("DP tree is valid"),
    }
}

fn build(parents: &mut [Option<usize>], split: &[usize], n: usize, i: usize, j: usize) {
    if i == j {
        return;
    }
    let h = split[i * n + j];
    parents[h] = Some(i);
    build(parents, split, n, i, h - 1);
    build(parents, split, n, h, j);
}

/// Optimal *forest* (full cost) for general arrivals: a prefix DP over the
/// interval-tree DP, honouring the feasibility constraint
/// `t_j − t_i ≤ L − 1` per tree.
///
/// The feasibility constraint makes the interval DP **banded**: `cost(i, j)`
/// is only ever needed when arrivals `i..=j` fit one tree, i.e.
/// `t_j − t_i ≤ L − 1`, and every sub-interval of a feasible interval is
/// feasible. The tables are therefore stored ragged per row
/// (`O(Σ band_i)` memory instead of `O(n²)`), which keeps dense workloads —
/// e.g. ten thousand occupied slots with `L = 100` — at about `n·L` table
/// entries. The Knuth split window survives banding unchanged because both
/// of its source cells `(i, j−1)` and `(i+1, j)` lie within their rows'
/// bands whenever `(i, j)` does.
///
/// Returns `(forest, total_cost)`.
///
/// # Panics
/// Panics if `times` is empty, unsorted, or some suffix cannot be covered
/// (cannot happen: a singleton tree is always feasible).
pub fn optimal_forest<T: TimeScalar>(times: &[T], media_len: u64) -> (MergeForest, T) {
    let n = times.len();
    assert!(n >= 1);
    let media = T::from_slots(media_len);
    let one = T::from_slots(1);
    // jmax[i]: last arrival that fits in one tree with root i.
    let mut jmax = vec![0usize; n];
    {
        let mut j = 0usize;
        for i in 0..n {
            if j < i {
                j = i;
            }
            while j + 1 < n && (times[j + 1] - times[i]) + one <= media {
                j += 1;
            }
            jmax[i] = j;
        }
    }
    // Ragged banded tables: row i holds columns i..=jmax[i].
    let mut row_offset = vec![0usize; n + 1];
    for i in 0..n {
        row_offset[i + 1] = row_offset[i] + (jmax[i] - i + 1);
    }
    let total = row_offset[n];
    let mut cost: Vec<T> = vec![T::zero(); total]; // diagonal cost(i,i) = 0
    let mut split: Vec<usize> = vec![0; total];
    let at = |i: usize, j: usize| row_offset[i] + (j - i);
    let max_band = (0..n).map(|i| jmax[i] - i + 1).max().unwrap_or(1);
    for len in 2..=max_band {
        for i in 0..n {
            let j = i + len - 1;
            if j >= n || j > jmax[i] {
                continue;
            }
            let lo = if len > 2 {
                split[at(i, j - 1)].max(i + 1)
            } else {
                i + 1
            };
            let hi = if len > 2 {
                split[at(i + 1, j)].min(j).max(lo)
            } else {
                j
            };
            let mut best: Option<T> = None;
            let mut best_h = lo;
            for h in lo..=hi {
                let c = cost[at(i, h - 1)]
                    + cost[at(h, j)]
                    + (times[j] - times[h])
                    + (times[j] - times[i]);
                if best.is_none_or(|b| c <= b) {
                    best = Some(c);
                    best_h = h;
                }
            }
            cost[at(i, j)] = best.expect("non-empty split window");
            split[at(i, j)] = best_h;
        }
    }
    // Prefix DP: g[j] = optimal cost of serving arrivals 0..j (exclusive).
    let mut g: Vec<Option<T>> = vec![None; n + 1];
    let mut choice: Vec<usize> = vec![0; n + 1];
    g[0] = Some(T::zero());
    for j in 1..=n {
        let mut best: Option<T> = None;
        let mut best_i = j - 1;
        for i in (0..j).rev() {
            // Tree over arrivals i..=j−1 rooted at i; feasible iff
            // span ≤ L − 1.
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be infeasible
            if !((times[j - 1] - times[i]) + one <= media) {
                break; // earlier i only increases the span
            }
            if let Some(gprev) = g[i] {
                let total = gprev + media + cost[at(i, j - 1)];
                if best.is_none_or(|b| total < b) {
                    best = Some(total);
                    best_i = i;
                }
            }
        }
        g[j] = best;
        choice[j] = best_i;
    }
    // Reconstruct tree boundaries right to left.
    let mut bounds = Vec::new();
    let mut j = n;
    while j > 0 {
        let i = choice[j];
        bounds.push((i, j));
        j = i;
    }
    bounds.reverse();
    let mut trees = Vec::with_capacity(bounds.len());
    for &(i, j) in &bounds {
        let m = j - i;
        let mut parents: Vec<Option<usize>> = vec![None; m];
        build_offset(&mut parents, &split, &row_offset, i, i, j - 1);
        trees.push(MergeTree::from_parents(&parents).expect("valid tree"));
    }
    (
        MergeForest::from_trees(trees).expect("at least one tree"),
        g[n].expect("full sequence coverable"),
    )
}

fn build_offset(
    parents: &mut [Option<usize>],
    split: &[usize],
    row_offset: &[usize],
    base: usize,
    i: usize,
    j: usize,
) {
    if i == j {
        return;
    }
    let h = split[row_offset[i] + (j - i)];
    parents[h - base] = Some(i - base);
    build_offset(parents, split, row_offset, base, i, h - 1);
    build_offset(parents, split, row_offset, base, h, j);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::ClosedForm;
    use sm_core::{consecutive_slots, full_cost, merge_cost as model_merge_cost};

    #[test]
    fn degenerates_to_delay_guaranteed_closed_form() {
        let cf = ClosedForm::new();
        for n in 1..=80usize {
            let times = consecutive_slots(n);
            let sol = optimal_tree(&times);
            assert_eq!(sol.cost as u64, cf.merge_cost(n as u64), "n = {n}");
        }
    }

    #[test]
    fn knuth_matches_naive_on_consecutive() {
        for n in 1..=40usize {
            let times = consecutive_slots(n);
            let fast = optimal_tree(&times);
            let slow = optimal_tree_naive(&times);
            assert_eq!(fast.cost, slow.cost, "n = {n}");
        }
    }

    #[test]
    fn knuth_matches_naive_on_irregular_times() {
        // Deterministic pseudo-random gaps (LCG) — no rand dependency here.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 7 + 1
        };
        for trial in 0..30 {
            let n = 2 + (trial % 17);
            let mut t = 0i64;
            let times: Vec<i64> = (0..n)
                .map(|_| {
                    t += next() as i64;
                    t
                })
                .collect();
            let fast = optimal_tree(&times);
            let slow = optimal_tree_naive(&times);
            assert_eq!(fast.cost, slow.cost, "times = {times:?}");
            assert_eq!(
                model_merge_cost(&fast.tree, &times),
                fast.cost,
                "tree cost mismatch for {times:?}"
            );
        }
    }

    #[test]
    fn tree_cost_equals_model_evaluation() {
        let times: Vec<i64> = vec![0, 1, 4, 6, 7, 10, 15];
        let sol = optimal_tree(&times);
        assert_eq!(model_merge_cost(&sol.tree, &times), sol.cost);
        assert!(sol.tree.has_preorder_property());
    }

    #[test]
    fn forest_matches_theorem12_on_consecutive_arrivals() {
        // The general forest DP must agree with the delay-guaranteed
        // optimum on consecutive arrivals.
        for (media_len, n) in [(4u64, 16usize), (15, 8), (15, 14), (7, 30)] {
            let times = consecutive_slots(n);
            let (forest, cost) = optimal_forest(&times, media_len);
            let expected = crate::forest::optimal_full_cost(media_len, n as u64);
            assert_eq!(cost as u64, expected, "L = {media_len}, n = {n}");
            assert_eq!(full_cost(&forest, &times, media_len), cost);
        }
    }

    #[test]
    fn forest_respects_span_feasibility() {
        let times: Vec<i64> = vec![0, 1, 2, 50, 51, 120];
        let (forest, _) = optimal_forest(&times, 10);
        for (range, tree) in forest.iter_with_ranges() {
            let slice = &times[range];
            let span = slice[tree.last_arrival()] - slice[0];
            assert!(span <= 9);
        }
    }

    #[test]
    fn sparse_arrivals_prefer_separate_streams() {
        // Arrivals farther apart than the media never merge.
        let times: Vec<i64> = vec![0, 100, 200];
        let (forest, cost) = optimal_forest(&times, 10);
        assert_eq!(forest.num_trees(), 3);
        assert_eq!(cost, 30);
    }

    #[test]
    fn continuous_times_work() {
        let times: Vec<f64> = vec![0.0, 0.7, 1.1, 2.4, 3.9];
        let sol = optimal_tree(&times);
        let model = model_merge_cost(&sol.tree, &times);
        assert!((sol.cost - model).abs() < 1e-9);
        let (_, fcost) = optimal_forest(&times, 6);
        assert!(fcost > 0.0);
    }

    #[test]
    fn banded_forest_matches_unbanded_reference() {
        // Brute-force reference: prefix DP over `optimal_tree_naive` on
        // every feasible sub-interval.
        fn reference(times: &[i64], media_len: u64) -> i64 {
            let n = times.len();
            let media = media_len as i64;
            let mut g = vec![i64::MAX; n + 1];
            g[0] = 0;
            for j in 1..=n {
                for i in 0..j {
                    if times[j - 1] - times[i] + 1 > media || g[i] == i64::MAX {
                        continue;
                    }
                    let tree = optimal_tree_naive(&times[i..j]);
                    g[j] = g[j].min(g[i] + media + tree.cost);
                }
            }
            g[n]
        }
        let mut state = 0xDEADBEEFu64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..25 {
            let n = 2 + (trial % 12) as usize;
            let mut t = 0i64;
            let times: Vec<i64> = (0..n)
                .map(|_| {
                    t += next(9) as i64 + 1;
                    t
                })
                .collect();
            let media = 4 + next(20);
            let (forest, cost) = optimal_forest(&times, media);
            assert_eq!(cost, reference(&times, media), "times {times:?}, L {media}");
            assert_eq!(full_cost(&forest, &times, media), cost);
        }
    }

    #[test]
    fn banded_forest_scales_to_dense_horizons() {
        // The banded DP on 5000 occupied slots with L = 100: feasible memory
        // (≈ n·L entries) and agreement with the closed form.
        let n = 5000usize;
        let times = consecutive_slots(n);
        let (_, cost) = optimal_forest(&times, 100);
        assert_eq!(cost as u64, crate::forest::optimal_full_cost(100, n as u64));
    }

    #[test]
    fn single_arrival_trivial() {
        let sol = optimal_tree(&[42i64]);
        assert_eq!(sol.cost, 0);
        assert_eq!(sol.tree.len(), 1);
        let (forest, cost) = optimal_forest(&[42i64], 5);
        assert_eq!(forest.num_trees(), 1);
        assert_eq!(cost, 5);
    }
}
