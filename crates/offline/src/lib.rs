#![forbid(unsafe_code)]
//! Optimal off-line algorithms for delay-guaranteed stream merging
//! (paper §3) plus the general-arrivals machinery of \[6\] used as a baseline.
//!
//! The centerpiece results reproduced here:
//!
//! * **Eq. (5)/(6), Theorem 3** — the optimal merge cost for `n` consecutive
//!   arrivals has the Fibonacci closed form
//!   `M(n) = (k−1)·n − F_{k+2} + 2` for `F_k ≤ n ≤ F_{k+1}`
//!   ([`closed_form::merge_cost`]), with the optimal last-merge arrivals
//!   forming the interval `I(n)` ([`closed_form::last_merge_interval`]).
//! * **Theorem 7** — an optimal merge tree is constructible in `O(n)` via
//!   the `r(i) = max I(i)` recurrence ([`tree_builder`]).
//! * **Lemma 9 / Theorems 10, 12** — the optimal merge *forest* balances
//!   tree sizes, and the optimal number of full streams is `⌊n/F_h⌋` or
//!   `⌊n/F_h⌋+1` where `F_{h+1} < L+2 ≤ F_{h+2}` ([`forest`]).
//! * **Theorem 16** — the bounded-buffer variant ([`forest`], cap on tree
//!   size derived from Lemma 15).
//! * **§3.4** — the receive-all model: `Mω(n) = (k+1)n − 2^{k+1} + 1` for
//!   `2^k ≤ n ≤ 2^{k+1}`, and the `log_φ 2 ≈ 1.44` gap of Theorems 19/20
//!   ([`receive_all`]).
//! * **Theorems 8, 13, 14** — asymptotic bounds ([`bounds`]).
//!
//! [`dp`] holds the `O(n²)` dynamic programs the closed forms are verified
//! against, and [`general`] the interval DP of \[6\] for *arbitrary* arrival
//! times (the `O(n²)` algorithm this paper's `O(n)` result improves upon).

pub mod bounds;
pub mod closed_form;
pub mod dp;
pub mod forest;
pub mod general;
pub mod receive_all;
pub mod tree_builder;

pub use closed_form::{last_merge_interval, merge_cost, ClosedForm};
pub use forest::{optimal_forest, optimal_full_cost, optimal_s, OptimalForestPlan};
pub use tree_builder::optimal_merge_tree;
