//! `O(n²)` dynamic programs for the delay-guaranteed merge cost — the
//! baseline implied by the general solution of \[6\] (Eq. (5) of the paper):
//!
//! ```text
//! M(1) = 0,   M(n) = min_{1 ≤ h ≤ n−1} { M(h) + M(n−h) + 2n − h − 2 }
//! ```
//!
//! where `h` is the arrival that merges *last* into the root. These routines
//! exist to certify the closed forms (`closed_form`, `tree_builder`) and to
//! quantify the paper's `O(n²) → O(n)` improvement in the benches.

use sm_core::MergeTree;

/// `M(1..=n)` by the recurrence of Eq. (5). `table[i]` is `M(i)`;
/// `table[0]` is 0 by convention.
pub fn merge_cost_table(n: usize) -> Vec<u64> {
    let mut m = vec![0u64; n + 1];
    for i in 2..=n {
        m[i] = (1..i)
            .map(|h| m[h] + m[i - h] + (2 * i - h - 2) as u64)
            .min()
            .expect("i >= 2 has at least one split");
    }
    m
}

/// `I(n)`: the set of arrivals that can be the last merge into the root of
/// an *optimal* tree (Eq. (8)), computed by brute force from the DP table.
///
/// Returns the set as a sorted `Vec` (the paper proves it is an interval;
/// tests assert contiguity rather than assuming it).
///
/// # Panics
/// Panics if `n < 2` (a single arrival has no last merge).
pub fn last_merge_set(n: usize) -> Vec<usize> {
    assert!(n >= 2, "I(n) is defined for n >= 2");
    let m = merge_cost_table(n);
    let best = m[n];
    (1..n)
        .filter(|&h| m[h] + m[n - h] + (2 * n - h - 2) as u64 == best)
        .collect()
}

/// An optimal merge tree for `n` consecutive arrivals extracted from the DP
/// (always choosing the largest optimal split, mirroring
/// `tree_builder::optimal_merge_tree`'s use of `r(i) = max I(i)`).
///
/// `O(n²)` time — use `tree_builder::optimal_merge_tree` for the paper's
/// `O(n)` construction; this one certifies it.
pub fn optimal_tree_dp(n: usize) -> MergeTree {
    assert!(n >= 1);
    let m = merge_cost_table(n);
    // best_split[i] = max argmin_h for i arrivals.
    let mut best_split = vec![0usize; n + 1];
    for i in 2..=n {
        let mut best = u64::MAX;
        let mut arg = 1;
        for h in 1..i {
            let c = m[h] + m[i - h] + (2 * i - h - 2) as u64;
            if c <= best {
                best = c;
                arg = h;
            }
        }
        best_split[i] = arg;
    }
    let mut parents: Vec<Option<usize>> = vec![None; n];
    fill(&mut parents, 0, n, &best_split);
    MergeTree::from_parents(&parents).expect("DP construction is structurally valid")
}

fn fill(parents: &mut [Option<usize>], start: usize, n: usize, best_split: &[usize]) {
    if n <= 1 {
        return;
    }
    let h = best_split[n];
    fill(parents, start, h, best_split);
    fill(parents, start + h, n - h, best_split);
    parents[start + h] = Some(start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, merge_cost};

    #[test]
    fn paper_table_of_mn() {
        // §3.1: n = 1..16 -> 0 1 3 6 9 13 17 21 26 31 36 41 46 52 58 64.
        let expect = [
            0u64, 0, 1, 3, 6, 9, 13, 17, 21, 26, 31, 36, 41, 46, 52, 58, 64,
        ];
        let table = merge_cost_table(16);
        assert_eq!(table, expect);
    }

    #[test]
    fn last_merge_sets_small() {
        // Fig. 8 first rows: I(2)={1}, I(3)={2}, I(4)={2,3}, I(5)={3},
        // I(6)={3,4}, I(7)={4,5}, I(8)={5}.
        assert_eq!(last_merge_set(2), vec![1]);
        assert_eq!(last_merge_set(3), vec![2]);
        assert_eq!(last_merge_set(4), vec![2, 3]);
        assert_eq!(last_merge_set(5), vec![3]);
        assert_eq!(last_merge_set(6), vec![3, 4]);
        assert_eq!(last_merge_set(7), vec![4, 5]);
        assert_eq!(last_merge_set(8), vec![5]);
    }

    #[test]
    fn last_merge_sets_are_intervals() {
        // Theorem 3 asserts I(n) is an interval; the DP should agree.
        for n in 2..=200 {
            let set = last_merge_set(n);
            for w in set.windows(2) {
                assert_eq!(w[1], w[0] + 1, "I({n}) is not contiguous: {set:?}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index parallels the math
    fn dp_tree_cost_matches_table() {
        let table = merge_cost_table(60);
        for n in 1..=60 {
            let tree = optimal_tree_dp(n);
            assert_eq!(tree.len(), n);
            assert!(tree.has_preorder_property(), "n = {n}");
            let times = consecutive_slots(n);
            assert_eq!(merge_cost(&tree, &times) as u64, table[n], "n = {n}");
        }
    }

    #[test]
    fn fibonacci_tree_for_8_matches_fig4() {
        let t = optimal_tree_dp(8);
        assert_eq!(t.to_sexpr(), "(0 (1) (2) (3 (4)) (5 (6) (7)))");
    }

    #[test]
    fn dp_trees_for_fig7_sizes_are_fibonacci_trees() {
        // Fig. 7: merge costs of the unique optimal trees for n = 3,5,8,13
        // are 3, 9, 21, 46.
        let costs = [(3usize, 3u64), (5, 9), (8, 21), (13, 46)];
        let table = merge_cost_table(13);
        for (n, c) in costs {
            assert_eq!(table[n], c, "M({n})");
        }
    }

    #[test]
    #[should_panic]
    fn last_merge_set_rejects_n1() {
        let _ = last_merge_set(1);
    }
}
