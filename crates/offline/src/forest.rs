//! Optimal merge forests: full cost `F(L,n,s)`, the optimal number of full
//! streams, and the `O(L+n)` forest construction (Lemma 9, Theorems 10 and
//! 12), plus the bounded-buffer variant of §3.3 (Theorem 16).
//!
//! Lemma 9: with `s` full streams and `n = p·s + r` (`0 ≤ r < s`),
//!
//! ```text
//! F(L, n, s) = s·L + r·M(p+1) + (s−r)·M(p)
//! ```
//!
//! — an optimal forest balances tree sizes to `p` and `p+1`. Theorem 12: the
//! minimizing `s` is `s₁ = ⌊n/F_h⌋` or `s₁+1`, where `F_{h+1} < L+2 ≤
//! F_{h+2}` (clamped below by `s₀ = ⌈n/L⌉`).

use crate::closed_form::ClosedForm;
use crate::tree_builder::optimal_merge_tree_with;
use sm_core::{MergeForest, MergeTree};

/// A computed optimal (or constrained-optimal) forest plan.
#[derive(Debug, Clone)]
pub struct OptimalForestPlan {
    /// The forest itself (trees of `p`+1 arrivals first, then `p`).
    pub forest: MergeForest,
    /// Number of full streams `s`.
    pub s: u64,
    /// Full cost `F(L, n, s)` in slot-units.
    pub cost: u64,
}

/// `F(L, n, s)` by Lemma 9. Purely arithmetic — does not check that tree
/// sizes fit the media (`p ≤ L`); see [`s_is_feasible`].
pub fn full_cost_given_s(cf: &ClosedForm, media_len: u64, n: u64, s: u64) -> u64 {
    assert!(s >= 1 && s <= n, "need 1 <= s <= n (got s = {s}, n = {n})");
    let p = n / s;
    let r = n - p * s;
    s * media_len + r * cf.merge_cost(p + 1) + (s - r) * cf.merge_cost(p)
}

/// Whether `s` full streams yield feasible trees: every tree must satisfy
/// `span ≤ L − 1`, i.e. size ≤ `L`.
pub fn s_is_feasible(media_len: u64, n: u64, s: u64) -> bool {
    if s < 1 || s > n {
        return false;
    }
    let p = n / s;
    let r = n - p * s;
    let max_size = if r > 0 { p + 1 } else { p };
    max_size <= media_len
}

/// `s₀ = ⌈n/L⌉`: the minimum possible number of full streams.
pub fn min_streams(media_len: u64, n: u64) -> u64 {
    n.div_ceil(media_len)
}

/// Theorem 12: the optimal number of full streams for `n` arrivals and
/// media length `L`.
///
/// # Panics
/// Panics if `n == 0` or `media_len == 0`.
pub fn optimal_s(cf: &ClosedForm, media_len: u64, n: u64) -> u64 {
    assert!(n >= 1 && media_len >= 1);
    let h = cf.fib().theorem12_h(media_len);
    let fh = cf.fib().get(h);
    let s0 = min_streams(media_len, n);
    let s1 = n / fh;
    if s0 > s1 {
        // Theorem 12's proof shows s0 = s1 + 1 in this case.
        debug_assert_eq!(s0, s1 + 1);
        return s0;
    }
    let s1 = s1.max(1);
    if s1 >= n {
        return n;
    }
    let f_a = full_cost_given_s(cf, media_len, n, s1);
    let f_b = full_cost_given_s(cf, media_len, n, s1 + 1);
    // The paper's rule: "if the former value is smaller, then s1 minimizes
    // F(L,n,s), otherwise s1+1 does" — ties go to s1+1 (more, smaller trees).
    if f_a < f_b {
        s1
    } else {
        s1 + 1
    }
}

/// `F(L, n)`: the optimal full cost (Theorem 12 + Lemma 9), `O(1)` after
/// table setup.
pub fn optimal_full_cost_with(cf: &ClosedForm, media_len: u64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    full_cost_given_s(cf, media_len, n, optimal_s(cf, media_len, n))
}

/// Convenience wrapper around [`optimal_full_cost_with`].
pub fn optimal_full_cost(media_len: u64, n: u64) -> u64 {
    optimal_full_cost_with(&ClosedForm::new(), media_len, n)
}

/// Builds an optimal merge forest for `n` consecutive arrivals (Theorem 10):
/// `r` trees of `p+1` arrivals followed by `s−r` trees of `p` arrivals,
/// each an optimal merge tree.
pub fn optimal_forest(media_len: u64, n: usize) -> OptimalForestPlan {
    let cf = ClosedForm::new();
    let s = optimal_s(&cf, media_len, n as u64);
    forest_with_s(&cf, media_len, n, s)
}

/// Builds the balanced forest for a *given* `s` (the placement step of
/// Theorem 10).
pub fn forest_with_s(cf: &ClosedForm, media_len: u64, n: usize, s: u64) -> OptimalForestPlan {
    assert!(s >= 1 && s <= n as u64);
    let p = n as u64 / s;
    let r = n as u64 - p * s;
    let big = if r > 0 {
        Some(optimal_merge_tree_with(cf, (p + 1) as usize))
    } else {
        None
    };
    let small = if s - r > 0 {
        Some(optimal_merge_tree_with(cf, p as usize))
    } else {
        None
    };
    let mut trees: Vec<MergeTree> = Vec::with_capacity(s as usize);
    for _ in 0..r {
        trees.push(big.clone().expect("r > 0 implies big tree"));
    }
    for _ in 0..(s - r) {
        trees.push(small.clone().expect("s > r implies small tree"));
    }
    let forest = MergeForest::from_trees(trees).expect("s >= 1 trees");
    let cost = full_cost_given_s(cf, media_len, n as u64, s);
    OptimalForestPlan { forest, s, cost }
}

/// Brute-force optimum over all feasible `s` — `O(n)` reference for tests.
pub fn brute_force_optimal_s(cf: &ClosedForm, media_len: u64, n: u64) -> (u64, u64) {
    assert!(n >= 1);
    let mut best = (u64::MAX, 0u64);
    for s in 1..=n {
        if !s_is_feasible(media_len, n, s) {
            continue;
        }
        let f = full_cost_given_s(cf, media_len, n, s);
        if f < best.0 {
            best = (f, s);
        }
    }
    (best.1, best.0)
}

// ---------------------------------------------------------------------------
// Bounded buffers (§3.3, Theorem 16)
// ---------------------------------------------------------------------------

/// The maximum tree size permitted by a client buffer bound `B`.
///
/// Lemma 15: a client at distance `d` from its root needs `min(d, L−d)`
/// parts. With consecutive arrivals every integer distance `0..size` occurs,
/// so a violating distance exists iff the open range `(B, L−B)` contains an
/// integer, i.e. `2B + 2 ≤ L`; in that case every distance must satisfy
/// `d ≤ B` and trees hold at most `B+1` arrivals. Otherwise (`B ≥ ⌈L/2⌉−1`
/// territory) Lemma 15 already caps every requirement at `⌊L/2⌋ ≤ B` and
/// only the span constraint (size ≤ `L`) remains.
pub fn max_tree_size_for_buffer(media_len: u64, buffer: u64) -> u64 {
    if 2 * buffer + 2 > media_len {
        media_len
    } else {
        buffer + 1
    }
}

/// Theorem 16: optimal full cost when clients can buffer at most `buffer`
/// parts. Returns `(s, cost)`.
///
/// The shape argument of Lemma 11 (non-increasing then non-decreasing in
/// `s`) makes the constrained optimum `max(s_unconstrained, ⌈n/size_cap⌉)`.
pub fn optimal_s_bounded_buffer(
    cf: &ClosedForm,
    media_len: u64,
    n: u64,
    buffer: u64,
) -> (u64, u64) {
    assert!(n >= 1);
    let cap = max_tree_size_for_buffer(media_len, buffer);
    let s_min = n.div_ceil(cap);
    let s_unc = optimal_s(cf, media_len, n);
    let s = s_unc.max(s_min);
    (s, full_cost_given_s(cf, media_len, n, s))
}

/// Builds the bounded-buffer optimal forest (Theorem 16).
pub fn optimal_forest_bounded_buffer(media_len: u64, n: usize, buffer: u64) -> OptimalForestPlan {
    let cf = ClosedForm::new();
    let (s, _) = optimal_s_bounded_buffer(&cf, media_len, n as u64, buffer);
    forest_with_s(&cf, media_len, n, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::{consecutive_slots, full_cost, validate_forest, ValidationOptions};

    fn cf() -> ClosedForm {
        ClosedForm::new()
    }

    #[test]
    fn paper_example_l15_n8() {
        // §2: Fcost = 36 with s = 1.
        let cf = cf();
        assert_eq!(optimal_s(&cf, 15, 8), 1);
        assert_eq!(optimal_full_cost(15, 8), 36);
    }

    #[test]
    fn paper_example_l15_n14() {
        // §2: s = 2, Fcost = 30 + 17 + 17 = 64.
        let cf = cf();
        assert_eq!(optimal_s(&cf, 15, 14), 2);
        assert_eq!(optimal_full_cost(15, 14), 64);
        let plan = optimal_forest(15, 14);
        assert_eq!(plan.forest.sizes(), vec![7, 7]);
    }

    #[test]
    fn paper_example_l4_n16() {
        // §3.2 end: L = 4 -> h = 4, F_h = 3; n = 16 -> s0 = 4, s1 = 5,
        // F(L,n,4) = 40, F(L,n,5) = F(L,n,6) = 38.
        let cf = cf();
        assert_eq!(full_cost_given_s(&cf, 4, 16, 4), 40);
        assert_eq!(full_cost_given_s(&cf, 4, 16, 5), 38);
        assert_eq!(full_cost_given_s(&cf, 4, 16, 6), 38);
        // Both s1 = 5 and s1+1 = 6 are optimal; the paper's procedure (and
        // ours) settles ties in favour of s1+1.
        assert_eq!(optimal_s(&cf, 4, 16), 6);
        assert_eq!(optimal_full_cost(4, 16), 38);
    }

    #[test]
    fn extreme_cases_from_paper() {
        let cf = cf();
        // L = 1: every slot needs its own full stream; F = n.
        for n in 1..=50u64 {
            assert_eq!(optimal_s(&cf, 1, n), n);
            assert_eq!(optimal_full_cost(1, n), n);
        }
        // L = 2, n odd: s = ceil(n/2) is optimal (paper: s0 = s1+1 = n/2
        // rounded up).
        for n in (1..=49u64).step_by(2) {
            assert_eq!(optimal_s(&cf, 2, n), n.div_ceil(2));
        }
    }

    #[test]
    fn theorem12_matches_brute_force() {
        let cf = cf();
        for media_len in 1..=40u64 {
            for n in 1..=120u64 {
                let fast_s = optimal_s(&cf, media_len, n);
                let fast = full_cost_given_s(&cf, media_len, n, fast_s);
                let (_, slow) = brute_force_optimal_s(&cf, media_len, n);
                assert_eq!(fast, slow, "L = {media_len}, n = {n}");
                assert!(
                    s_is_feasible(media_len, n, fast_s),
                    "L = {media_len}, n = {n}, s = {fast_s}"
                );
            }
        }
    }

    #[test]
    fn forest_cost_matches_model_cost() {
        // The analytic Lemma-9 cost must equal the model-level Fcost of the
        // constructed forest.
        for (media_len, n) in [(15u64, 8usize), (15, 14), (4, 16), (10, 100), (8, 55)] {
            let plan = optimal_forest(media_len, n);
            let times = consecutive_slots(n);
            let model_cost = full_cost(&plan.forest, &times, media_len) as u64;
            assert_eq!(model_cost, plan.cost, "L = {media_len}, n = {n}");
        }
    }

    #[test]
    fn forests_validate_feasibility() {
        for (media_len, n) in [(15u64, 8usize), (15, 14), (4, 16), (10, 100), (100, 1000)] {
            let plan = optimal_forest(media_len, n);
            let times = consecutive_slots(n);
            validate_forest(
                &plan.forest,
                &times,
                media_len,
                ValidationOptions {
                    require_preorder: true,
                    buffer_bound: None,
                },
            )
            .unwrap_or_else(|e| panic!("L = {media_len}, n = {n}: {e}"));
        }
    }

    #[test]
    fn feasibility_sweep() {
        // The paper never states explicitly that the Lemma-9 optimum is
        // feasible (lengths ≤ L); sweep a broad (L, n) grid to confirm the
        // chosen s always yields trees whose streams fit the media.
        for media_len in 1..=40u64 {
            for n in 1..=150usize {
                let plan = optimal_forest(media_len, n);
                let times = consecutive_slots(n);
                validate_forest(
                    &plan.forest,
                    &times,
                    media_len,
                    ValidationOptions::default(),
                )
                .unwrap_or_else(|e| panic!("L = {media_len}, n = {n}: {e}"));
            }
        }
    }

    #[test]
    fn balanced_sizes_differ_by_at_most_one() {
        for (media_len, n) in [(15u64, 37usize), (7, 100), (30, 64)] {
            let plan = optimal_forest(media_len, n);
            let sizes = plan.forest.sizes();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "L = {media_len}, n = {n}: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn bounded_buffer_never_cheaper_than_unbounded() {
        let cf = cf();
        for n in 1..=80u64 {
            let unb = optimal_full_cost(20, n);
            for buffer in 1..=10u64 {
                let (_, cost) = optimal_s_bounded_buffer(&cf, 20, n, buffer);
                assert!(cost >= unb, "n = {n}, B = {buffer}");
            }
        }
    }

    #[test]
    fn bounded_buffer_matches_brute_force() {
        let cf = cf();
        for n in 1..=60u64 {
            for buffer in 1..=9u64 {
                let media_len = 20u64;
                let cap = max_tree_size_for_buffer(media_len, buffer);
                // Brute force over s with the size cap.
                let mut best = u64::MAX;
                for s in 1..=n {
                    let p = n / s;
                    let r = n - p * s;
                    let max_size = if r > 0 { p + 1 } else { p };
                    if max_size <= cap {
                        best = best.min(full_cost_given_s(&cf, media_len, n, s));
                    }
                }
                let (_, cost) = optimal_s_bounded_buffer(&cf, media_len, n, buffer);
                assert_eq!(cost, best, "n = {n}, B = {buffer}");
            }
        }
    }

    #[test]
    fn bounded_forest_respects_buffer_bound() {
        for (n, buffer) in [(40usize, 3u64), (55, 5), (23, 2)] {
            let plan = optimal_forest_bounded_buffer(20, n, buffer);
            let times = consecutive_slots(n);
            validate_forest(
                &plan.forest,
                &times,
                20,
                ValidationOptions {
                    require_preorder: false,
                    buffer_bound: Some(buffer),
                },
            )
            .unwrap_or_else(|e| panic!("n = {n}, B = {buffer}: {e}"));
        }
    }

    #[test]
    fn theorem13_envelope() {
        // F(L,n) = n·log_φ(L) + Θ(n): sanity-check the growth for fixed L
        // across decades of n.
        let l = 100u64;
        for &n in &[10_000u64, 100_000, 1_000_000] {
            let f = optimal_full_cost(l, n) as f64;
            let predicted = n as f64 * sm_fib::log_phi(l as f64);
            let ratio = f / predicted;
            assert!(
                (0.5..2.0).contains(&ratio),
                "n = {n}: F = {f}, predicted {predicted}"
            );
        }
    }

    #[test]
    fn single_arrival() {
        let plan = optimal_forest(10, 1);
        assert_eq!(plan.s, 1);
        assert_eq!(plan.cost, 10);
        assert_eq!(optimal_full_cost(10, 0), 0);
    }
}
