//! The multi-title delay-planning serve loop.
//!
//! One producer thread draws an independent Poisson run per title for
//! each pipeline batch and fans them into a single time-ordered stream
//! with [`sm_core::merge_runs`] (ties resolve to the lower title index —
//! deterministic, documented). The consumer owns one
//! [`IncrementalEngine`] and one boxed [`IncrementalPolicy`] per title
//! plus a single shared [`DelayPlanner`], and serves every arrival:
//! overload becomes start-up delay, never rejection.
//!
//! # Delay planning
//!
//! The planner keeps a min-heap of **license chains** — back-to-back
//! timelines of full-length streams. Planning a group at arrival slot
//! `a` first drops chains that ended by `a`; if the budget is saturated
//! it pops the chain that frees earliest and schedules the group at
//! `s = max(a, chain end)`, extending that chain; otherwise `s = a`.
//! Chains never overlap internally, so live full streams never exceed
//! the chain count, which never exceeds the budget. The plan happens
//! *before* the title's policy decides root-or-merge — the same
//! decision boundary at which the retired license gauge declined — so
//! a merge verdict simply ends the popped chain early (safe: its end is
//! at most `s`, below every future arrival slot that opens a group).
//!
//! # Batching
//!
//! Arrivals at slots no later than their title's pending service slot
//! join that group as zero-length streams under its head — everyone who
//! shows up while the stream is still pending rides it, the paper's
//! batching rule. Consequently per-title service slots strictly increase
//! group to group, which is exactly what [`DyadicMerger`] requires of
//! its clock.
//!
//! # The policy-swap seam
//!
//! [`PolicySwap`] replaces a title's policy with a freshly constructed
//! one immediately **before** group number `after_groups` is decided.
//! The fresh policy numbers its decisions from zero; the loop re-bases
//! parent indices by the group count at the swap point, so any policy
//! whose decision stream is a function of its own push history composes
//! transparently. Swapping Delay Guaranteed → Delay Guaranteed at a
//! tree boundary (a multiple of the template's `tree_size()`) is a
//! no-op: the template restarts per tree, so the decision stream — and
//! therefore the whole run — is bit-identical (pinned by test).
//!
//! # Two time bases
//!
//! The shared planner, the delay distributions, and the join rule all
//! live on **real slotted time**. Each title's *engine*, however, runs on
//! the clock its policy is defined on. The dyadic merger is natively
//! continuous-time, so dyadic groups are pushed at their real service
//! slots. The Delay Guaranteed template is slot-*dense* — its contract is
//! "arrival `k` is slot `k`", and its merge lengths are only feasible on
//! that grid — so a Delay Guaranteed title advances its engine one tick
//! per merge group (joiners ride the group's tick), exactly the §4.1 grid
//! its guarantee is stated on. A policy swap switches the title's engine
//! clock with the policy: dense ticks always continue one past the last
//! push, and real service slots are never behind them (service slots
//! strictly increase per group), so engine time stays nondecreasing
//! across any swap in either direction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use sm_core::{merge_runs, pipeline};
use sm_online::{DelayGuaranteedOnline, DyadicConfig, DyadicMerger, IncrementalPolicy};
use sm_server::PlannerMemo;
use sm_sim::{Attach, ClientReport, IncrementalEngine, IncrementalSummary, SimConfig};
use sm_workload::{ArrivalProcess, PoissonProcess};

use crate::{DelayHistogram, DelayStats, LatencyStats, ServeError, MAX_HORIZON};

/// Per-batch seed mixer (splitmix64's odd constant): batch `i` of every
/// title draws from an RNG that is a pure function of `(seed, i, title)`.
const BATCH_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Per-title seed mixer (xxhash's odd prime). Title 0's salt is zero, so
/// a one-title run draws the identical traffic a [`crate::serve`] run
/// draws — the single-title path is the one-title specialization.
const TITLE_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Which built-in on-line merge policy a title runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The §4.1 delay-guaranteed template policy (slot-indexed; ignores
    /// service times).
    DelayGuaranteed,
    /// The dyadic merger with the golden ratio α and β = ½ — the paper's
    /// recommended configuration for Poisson traffic.
    Dyadic,
}

impl PolicyKind {
    fn build(self, media_len: u64) -> Box<dyn IncrementalPolicy> {
        match self {
            Self::DelayGuaranteed => Box::new(DelayGuaranteedOnline::new(media_len)),
            Self::Dyadic => Box::new(DyadicMerger::new(
                DyadicConfig::golden_poisson(),
                media_len as f64,
            )),
        }
    }

    /// Whether the policy's engine clock is the dense template grid (one
    /// tick per merge group) rather than real service slots.
    fn dense_grid(self) -> bool {
        matches!(self, Self::DelayGuaranteed)
    }
}

/// A mid-run policy replacement, applied immediately before the title
/// decides group number `after_groups` (0-based): that group and all
/// later ones are decided by a freshly constructed `to` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySwap {
    /// Group count at which the swap fires; if the run ends earlier the
    /// swap never happens.
    pub after_groups: usize,
    /// The policy that takes over.
    pub to: PolicyKind,
}

/// One title of a multi-title serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TitleConfig {
    /// Media length in slots (`L`); must be at least 1.
    pub media_len: u64,
    /// Mean inter-arrival gap of this title's Poisson workload, in slots.
    pub mean_interarrival: f64,
    /// The on-line merge policy deciding this title's forest.
    pub policy: PolicyKind,
    /// Optional mid-run policy swap through the
    /// [`IncrementalPolicy`] seam.
    pub swap: Option<PolicySwap>,
    /// Optional per-client buffer bound, forwarded to the engine.
    pub buffer_bound: Option<u64>,
}

impl TitleConfig {
    /// A title under the default dyadic policy, no swap, no buffer bound.
    pub fn new(media_len: u64, mean_interarrival: f64) -> Self {
        Self {
            media_len,
            mean_interarrival,
            policy: PolicyKind::Dyadic,
            swap: None,
            buffer_bound: None,
        }
    }
}

/// A multi-title serving run: a catalog of titles behind one shared
/// channel budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiServeConfig {
    /// The catalog; must be non-empty.
    pub titles: Vec<TitleConfig>,
    /// Traffic horizon in slots: every title generates over `(0, horizon]`.
    pub horizon: f64,
    /// Shared channel budget across all titles: at most this many
    /// full-length streams live at once. Arrivals past the budget are
    /// *delayed*, never declined. `None` plans everything at its arrival
    /// slot (zero delay).
    pub budget: Option<usize>,
    /// Workload RNG seed; identical seeds replay identical traffic.
    pub seed: u64,
    /// Producer batch granularity in slots.
    pub batch_slots: f64,
    /// Backpressure depth of the generator→ingest channel (must be ≥ 1).
    pub pipeline_depth: usize,
}

impl MultiServeConfig {
    /// A run over `(0, horizon]` with an unbounded budget and default
    /// pipeline granularity (256-slot batches, depth 4).
    pub fn new(titles: Vec<TitleConfig>, horizon: f64) -> Self {
        Self {
            titles,
            horizon,
            budget: None,
            seed: 7,
            batch_slots: 256.0,
            pipeline_depth: 4,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        let bad = |field, reason| Err(ServeError::Config { field, reason });
        if self.titles.is_empty() {
            return bad("titles", "the catalog needs at least one title");
        }
        for title in &self.titles {
            if title.media_len == 0 {
                return bad("media_len", "every title needs at least 1 slot of media");
            }
            if !(title.mean_interarrival > 0.0 && title.mean_interarrival.is_finite()) {
                return bad("mean_interarrival", "must be finite and positive");
            }
        }
        if !(self.horizon > 0.0 && self.horizon <= MAX_HORIZON) {
            return bad("horizon", "must be finite, positive, and at most 1e15");
        }
        if self.budget == Some(0) {
            return bad("budget", "a bounded budget needs at least 1 channel");
        }
        if !(self.batch_slots >= 1.0 && self.batch_slots.is_finite()) {
            return bad("batch_slots", "must be finite and at least 1");
        }
        if self.pipeline_depth == 0 {
            return bad("pipeline_depth", "must be at least 1");
        }
        Ok(())
    }
}

/// One title's share of a [`MultiServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TitleReport {
    /// The title's media length in slots.
    pub media_len: u64,
    /// Arrivals this title's generator produced.
    pub generated: usize,
    /// Arrivals served for this title (`= generated`; never declines).
    pub served: usize,
    /// Merge groups opened (policy decisions made) for this title.
    pub groups: usize,
    /// The planner memo's steady-state bandwidth peak for this media
    /// length — the per-length analysis [`PlannerMemo`] caches, reported
    /// so the operator can read planned peak next to observed delay.
    pub planned_peak: u32,
    /// Planned start-up delay distribution over this title's arrivals.
    pub delay: DelayStats,
    /// The title engine's whole-run aggregates.
    pub summary: IncrementalSummary,
}

/// What a multi-title serving run did.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiServeReport {
    /// Arrivals generated across all titles.
    pub generated: usize,
    /// Arrivals served across all titles (`= generated`).
    pub served: usize,
    /// Always 0 — the zero-rejection invariant of the delay-planning
    /// contract, kept observable.
    pub rejected: usize,
    /// Planned start-up delay distribution across all titles.
    pub delay: DelayStats,
    /// Per-title breakdowns, in catalog order.
    pub titles: Vec<TitleReport>,
    /// Per-push wall-clock percentiles across all titles.
    pub latency: LatencyStats,
    /// Planner-memo lookups served from cache during this run (per-length
    /// analyses shared across titles and with any earlier runs on the
    /// same memo).
    pub memo_hits: u64,
}

/// The shared-budget scheduler: a min-heap of license-chain end slots.
/// See the module docs for the safety argument.
struct DelayPlanner {
    chains: BinaryHeap<Reverse<i64>>,
    budget: Option<usize>,
}

impl DelayPlanner {
    fn new(budget: Option<usize>) -> Self {
        Self {
            chains: BinaryHeap::new(),
            budget,
        }
    }

    /// Plans the service slot for a group arriving at `slot`: the arrival
    /// slot itself while the budget has room, else the end of the chain
    /// that frees earliest.
    fn plan(&mut self, slot: i64) -> i64 {
        let Some(b) = self.budget else {
            return slot;
        };
        while self.chains.peek().is_some_and(|&Reverse(end)| end <= slot) {
            self.chains.pop();
        }
        let mut s = slot;
        while self.chains.len() >= b {
            if let Some(Reverse(end)) = self.chains.pop() {
                s = s.max(end);
            }
        }
        s
    }

    /// Commits a planned full-length stream ending at `end` (a root
    /// decision): opens or extends a license chain.
    fn commit(&mut self, end: i64) {
        if self.budget.is_some() {
            self.chains.push(Reverse(end));
        }
    }
}

/// A title's pending merge group.
#[derive(Clone, Copy)]
struct Group {
    /// Real service slot: the planner's verdict, the join-rule boundary.
    service_slot: i64,
    /// What the title's engine was pushed with: the service slot for a
    /// real-time policy, the dense-grid tick for a template policy.
    engine_time: i64,
    /// Engine-global index of the group's head.
    head: usize,
}

/// Per-title consumer state.
struct TitleState {
    media_len: u64,
    media: i64,
    engine: IncrementalEngine,
    policy: Box<dyn IncrementalPolicy>,
    /// `true` while the active policy runs on the dense template grid.
    dense_grid: bool,
    swap: Option<PolicySwap>,
    /// Group count at the last swap: fresh policies number decisions from
    /// zero, so parent indices re-base by this offset.
    policy_base: usize,
    /// Last engine push time; dense ticks continue one past it, and a
    /// post-swap real-time policy starts at or above it.
    last_engine_time: i64,
    /// Group index → engine-global index of that group's head.
    slot_reps: Vec<usize>,
    /// Pending group, if any.
    cur: Option<Group>,
    groups: usize,
    generated: usize,
    delays: DelayHistogram,
}

/// Floors a continuous arrival time onto the slot grid. `t` is bounded
/// by the validated horizon, so the saturating `as` cast is exact.
fn slot_of(t: f64) -> i64 {
    t.floor() as i64
}

/// Nanoseconds since `t0`, saturating instead of unwrapping on the
/// (centuries-long) overflow path.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs a multi-title serving session with a private planner memo,
/// discarding per-client reports. See [`serve_multi_with`] for the full
/// form.
///
/// ```
/// use sm_serve::{serve_multi, MultiServeConfig, TitleConfig};
///
/// let config = MultiServeConfig {
///     budget: Some(8),
///     ..MultiServeConfig::new(
///         vec![TitleConfig::new(48, 1.5), TitleConfig::new(96, 3.0)],
///         500.0,
///     )
/// };
/// let report = serve_multi(&config).unwrap();
/// assert_eq!(report.rejected, 0);
/// assert_eq!(report.served, report.generated);
/// ```
pub fn serve_multi(config: &MultiServeConfig) -> Result<MultiServeReport, ServeError> {
    serve_multi_with(config, &PlannerMemo::new(), |_, _| {})
}

/// Runs a multi-title serving session end to end: per-title Poisson runs
/// are drawn on a producer thread, fanned in time-ordered through the
/// bounded pipeline channel, and ingested arrival-at-a-time through the
/// shared delay planner, each title's policy, and each title's engine.
/// `on_report(title, report)` fires for every served client the moment
/// its last part-deadline passes. `memo` supplies (and caches) the
/// per-length planner analyses reported as [`TitleReport::planned_peak`];
/// share one memo across runs to reuse them.
pub fn serve_multi_with<F>(
    config: &MultiServeConfig,
    memo: &PlannerMemo,
    mut on_report: F,
) -> Result<MultiServeReport, ServeError>
where
    F: FnMut(usize, ClientReport),
{
    config.validate()?;
    let hits_before = memo.hits();
    memo.seed_peaks(config.titles.iter().map(|t| t.media_len).collect());

    let mut states = Vec::with_capacity(config.titles.len());
    for title in &config.titles {
        states.push(TitleState {
            media_len: title.media_len,
            media: title.media_len as i64,
            engine: IncrementalEngine::new(
                title.media_len,
                SimConfig {
                    buffer_bound: title.buffer_bound,
                    ..SimConfig::events()
                },
            )?,
            policy: title.policy.build(title.media_len),
            dense_grid: title.policy.dense_grid(),
            swap: title.swap,
            policy_base: 0,
            last_engine_time: -1,
            slot_reps: Vec::new(),
            cur: None,
            groups: 0,
            generated: 0,
            delays: DelayHistogram::default(),
        });
    }

    let mut planner = DelayPlanner::new(config.budget);
    let mut latencies: Vec<u64> = Vec::new();
    let mut generated = 0usize;
    let n_batches = (config.horizon / config.batch_slots).ceil() as usize;
    let (horizon, batch, seed) = (config.horizon, config.batch_slots, config.seed);
    let means: Vec<f64> = config.titles.iter().map(|t| t.mean_interarrival).collect();

    // Workload generation runs on the pipeline's producer thread, at most
    // `pipeline_depth` batches ahead of ingest. Each (title, batch) run is
    // an independent Poisson segment over its sub-horizon; memoryless
    // increments make the concatenation exactly one Poisson process per
    // title, and per-(title, batch) seeding keeps every run a pure
    // function of (seed, batch index, title index).
    pipeline(
        n_batches,
        config.pipeline_depth,
        move |i| -> Result<Vec<(f64, u32)>, ServeError> {
            let offset = i as f64 * batch;
            let span = (horizon - offset).min(batch);
            let runs: Vec<Vec<(f64, u32)>> = means
                .iter()
                .enumerate()
                .map(|(k, &mean)| {
                    let mixed = seed
                        ^ (i as u64).wrapping_mul(BATCH_SALT)
                        ^ (k as u64).wrapping_mul(TITLE_SALT);
                    let mut proc = PoissonProcess::new(mean, mixed);
                    proc.generate(span)
                        .iter()
                        // sm-lint: allow(narrowing-cast) — k indexes the in-memory title catalog, nowhere near 2^32
                        .map(|t| (offset + t, k as u32))
                        .collect()
                })
                .collect();
            Ok(merge_runs(runs, |a, b| a.0 < b.0))
        },
        |_, arrivals| {
            for (t, k) in arrivals {
                generated += 1;
                let slot = slot_of(t);
                let title = k as usize;
                let state = &mut states[title];
                state.generated += 1;
                // The batching rule: arrivals no later than the pending
                // group's service slot ride it as zero-length streams.
                if let Some(group) = state.cur {
                    if slot <= group.service_slot {
                        state.delays.record((group.service_slot - slot) as u64);
                        let t0 = Instant::now();
                        state.engine.push(
                            group.engine_time,
                            Attach::Under(group.head),
                            &mut |r| on_report(title, r),
                        )?;
                        latencies.push(elapsed_ns(t0));
                        continue;
                    }
                }
                // New group: plan its service slot against the shared
                // budget *before* the policy decides — delay is granted
                // exactly where the retired gauge declined.
                let s = planner.plan(slot);
                state.delays.record((s - slot) as u64);
                if let Some(swap) = state.swap.filter(|sw| sw.after_groups == state.groups) {
                    state.policy = swap.to.build(state.media_len);
                    state.dense_grid = swap.to.dense_grid();
                    state.policy_base = state.slot_reps.len();
                    state.swap = None;
                }
                let engine_time = if state.dense_grid {
                    state.last_engine_time + 1
                } else {
                    s
                };
                let decision = state.policy.push(s as f64);
                let attach = match decision.parent {
                    None => {
                        planner.commit(s + state.media);
                        Attach::Root
                    }
                    Some(p) => {
                        let rebased = state.policy_base + p;
                        Attach::Under(*state.slot_reps.get(rebased).ok_or(
                            ServeError::PolicyDesync {
                                node: state.policy_base + decision.node,
                                parent: rebased,
                            },
                        )?)
                    }
                };
                let global = state.engine.arrivals();
                let t0 = Instant::now();
                state
                    .engine
                    .push(engine_time, attach, &mut |r| on_report(title, r))?;
                latencies.push(elapsed_ns(t0));
                state.last_engine_time = engine_time;
                state.slot_reps.push(global);
                state.cur = Some(Group {
                    service_slot: s,
                    engine_time,
                    head: global,
                });
                state.groups += 1;
            }
            Ok(())
        },
    )?;

    let mut titles = Vec::with_capacity(states.len());
    let mut delay_all = DelayHistogram::default();
    let mut served = 0usize;
    for (title, state) in states.into_iter().enumerate() {
        let summary = state.engine.finish(&mut |r| on_report(title, r))?;
        debug_assert_eq!(summary.summary.clients, state.generated);
        served += state.generated;
        delay_all.absorb(&state.delays);
        titles.push(TitleReport {
            media_len: state.media_len,
            generated: state.generated,
            served: state.generated,
            groups: state.groups,
            planned_peak: memo.peak(state.media_len),
            delay: state.delays.stats(),
            summary,
        });
    }
    debug_assert_eq!(served, generated);
    Ok(MultiServeReport {
        generated,
        served,
        rejected: 0,
        delay: delay_all.stats(),
        titles,
        latency: LatencyStats::from_samples(latencies),
        memo_hits: memo.hits().saturating_sub(hits_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titles3() -> Vec<TitleConfig> {
        vec![
            TitleConfig::new(64, 1.5),
            TitleConfig {
                policy: PolicyKind::DelayGuaranteed,
                ..TitleConfig::new(40, 2.0)
            },
            TitleConfig::new(100, 4.0),
        ]
    }

    #[test]
    fn unbounded_multi_run_serves_everything_with_zero_delay() {
        let report = serve_multi(&MultiServeConfig::new(titles3(), 800.0)).unwrap();
        assert_eq!(report.rejected, 0);
        assert_eq!(report.served, report.generated);
        assert_eq!(report.delay, DelayStats::default());
        assert_eq!(report.titles.len(), 3);
        let sum: usize = report.titles.iter().map(|t| t.generated).sum();
        assert_eq!(sum, report.generated);
        for title in &report.titles {
            assert_eq!(title.served, title.generated);
            assert_eq!(title.summary.summary.clients, title.generated);
            assert!(title.groups > 0 && title.groups <= title.generated);
            assert!(title.planned_peak > 0, "memo analysis must be reported");
        }
        assert_eq!(report.memo_hits, 3, "one cached peak lookup per title");
    }

    #[test]
    fn shared_budget_delays_but_never_declines() {
        let config = MultiServeConfig {
            budget: Some(2),
            ..MultiServeConfig::new(titles3(), 800.0)
        };
        let report = serve_multi(&config).unwrap();
        assert_eq!(report.rejected, 0, "delay replaces rejection");
        assert_eq!(report.served, report.generated);
        assert!(
            report.delay.max_slots > 0,
            "three titles over two channels must queue"
        );
        let per_title_max = report.titles.iter().map(|t| t.delay.max_slots).max();
        assert_eq!(per_title_max, Some(report.delay.max_slots));
    }

    #[test]
    fn multi_replays_are_deterministic() {
        let config = MultiServeConfig {
            budget: Some(3),
            ..MultiServeConfig::new(titles3(), 600.0)
        };
        let a = serve_multi(&config).unwrap();
        let b = serve_multi(&config).unwrap();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delay, b.delay);
        for (ta, tb) in a.titles.iter().zip(&b.titles) {
            assert_eq!(ta.summary, tb.summary);
            assert_eq!(ta.delay, tb.delay);
        }
    }

    #[test]
    fn title_zero_draws_the_single_title_traffic() {
        // The one-title multi run and the single-title facade draw the
        // same Poisson process and serve the same forest.
        let single = crate::serve(&crate::ServeConfig::new(64, 500.0, 2.0)).unwrap();
        let multi = serve_multi(&MultiServeConfig::new(
            vec![TitleConfig::new(64, 2.0)],
            500.0,
        ))
        .unwrap();
        assert_eq!(multi.generated, single.generated);
        assert_eq!(multi.titles[0].summary, single.summary);
    }

    #[test]
    fn per_title_reports_stream_with_their_title_index() {
        let mut seen = [0usize; 3];
        let report = serve_multi_with(
            &MultiServeConfig::new(titles3(), 400.0),
            &PlannerMemo::new(),
            |title, _| seen[title] += 1,
        )
        .unwrap();
        for (title, &count) in seen.iter().enumerate() {
            assert_eq!(count, report.titles[title].served);
        }
    }

    #[test]
    fn shared_memo_reuses_per_length_analyses_across_runs() {
        let memo = PlannerMemo::new();
        let config = MultiServeConfig::new(titles3(), 300.0);
        let first = serve_multi_with(&config, &memo, |_, _| {}).unwrap();
        let misses_after_first = memo.misses();
        let second = serve_multi_with(&config, &memo, |_, _| {}).unwrap();
        assert_eq!(first.memo_hits, 3, "one cached peak lookup per title");
        assert_eq!(second.memo_hits, 3);
        assert_eq!(
            memo.misses(),
            misses_after_first,
            "the second run must re-analyze nothing: every length is cached"
        );
        assert_eq!(memo.distinct_lengths(), 3);
    }

    #[test]
    fn empty_catalog_is_rejected() {
        match serve_multi(&MultiServeConfig::new(vec![], 100.0)) {
            Err(ServeError::Config { field, .. }) => assert_eq!(field, "titles"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn planner_extends_the_earliest_freeing_chain() {
        let mut p = DelayPlanner::new(Some(2));
        assert_eq!(p.plan(0), 0);
        p.commit(10);
        assert_eq!(p.plan(1), 1);
        p.commit(14);
        // Budget saturated: the next group waits for the chain ending 10.
        assert_eq!(p.plan(2), 10);
        p.commit(20);
        // Slot 15: the chain ending 14 expired on its own; room is free.
        assert_eq!(p.plan(15), 15);
        p.commit(25);
        // Unbounded planner never waits and tracks nothing.
        let mut free = DelayPlanner::new(None);
        free.commit(9);
        assert_eq!(free.plan(3), 3);
        assert!(free.chains.is_empty());
    }
}
