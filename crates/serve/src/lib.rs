#![forbid(unsafe_code)]
//! The serving layer: a push-based, never-declining ingest loop over
//! per-title incremental engines behind one shared channel budget.
//!
//! Where `sm-sim` answers "what does this forest cost?" for a workload
//! that already happened, this crate runs the serving side as it would
//! run in production: arrivals are *generated on a separate thread*, flow
//! through the bounded [`sm_core::pipeline`] channel (so workload
//! generation is backpressured by ingest, never the other way around),
//! and hit the server one at a time.
//!
//! # The serving-layer contract
//!
//! ```text
//!  producer thread                        ingest (caller's thread)
//!  ┌──────────────────────────┐           ┌───────────────────────────────┐
//!  │ per-title Poisson batch  │  bounded  │ for each (time, title):       │
//!  │ runs, k-way merged by    │  channel  │   1. join the title's pending │
//!  │ sm_core::merge_runs      ├──────────▶│      group, or                │
//!  │ (time, then title index) │           │   2. plan a service slot      │
//!  └──────────────────────────┘           │      against the shared       │
//!                                         │      budget (delay, never     │
//!                                         │      decline),                │
//!                                         │   3. consult the title's      │
//!                                         │      IncrementalPolicy,       │
//!                                         │   4. push into the title's    │
//!                                         │      IncrementalEngine        │
//!                                         └───────────────────────────────┘
//! ```
//!
//! The paper's §5 server **never declines a request**: under a fixed
//! channel budget it plans a *start-up delay* for each arrival instead.
//! This crate implements exactly that regime — the earlier license-gating
//! loop (admit or decline against a `max_active` gauge) is gone, and
//! overload now shows up as added start-up delay against the guarantee,
//! never as a rejection. Three invariants define the contract:
//!
//! 1. **Zero rejections.** Every generated arrival is served;
//!    [`ServeReport::rejected`] and [`MultiServeReport::rejected`] are
//!    structurally zero and kept in the reports as the observable form of
//!    the invariant.
//! 2. **Budget safety.** With [`ServeConfig::budget`] (or
//!    [`MultiServeConfig::budget`]) set to `b`, at most `b` full-length
//!    streams are live at any instant, across *all* titles. The planner
//!    tracks one min-heap of **license chains** — disjoint timelines of
//!    full streams scheduled back to back. A new full stream either
//!    claims a free chain slot or extends the chain that frees earliest
//!    (its start is delayed to that chain's end), so chains never
//!    overlap internally and their count never exceeds `b`; live full
//!    streams ≤ chains ≤ `b`. As under the prior gauge, truncated merge
//!    streams ride the margin: the budget prices full-length streams,
//!    the dominating cost.
//! 3. **Delay before policy.** The service slot is planned *before* the
//!    title's merge policy decides root-or-merge, so an arrival is
//!    delayed exactly when the old loop would have declined it — the
//!    decision boundary is unchanged, only the verdict differs. At an
//!    unbounded budget every delay is zero and the loop is bit-identical
//!    to the license-gating loop with the gauge disabled (pinned by
//!    property test).
//!
//! Arrival times are continuous (Poisson) and are floored onto the
//! integer slot grid the merge model works in. Arrivals no later than a
//! title's pending service slot join that group as zero-length streams
//! under its head — the paper's batching rule: everyone who shows up
//! while a stream is still pending rides it. Delays are measured in
//! slots, and one slot is the guaranteed start-up delay, so
//! [`DelayStats`] reads directly as "multiples of the guarantee".
//!
//! # Single-title quickstart
//!
//! ```
//! use sm_serve::{serve, ServeConfig};
//!
//! let report = serve(&ServeConfig::new(64, 400.0, 2.0)).unwrap();
//! assert_eq!(report.rejected, 0);
//! assert_eq!(report.served, report.generated);
//! assert_eq!(report.delay.max_slots, 0, "unbounded budget: no delay");
//! ```
//!
//! # Multi-title quickstart
//!
//! Two titles share a four-channel budget; title 1 swaps its merge policy
//! mid-run through the [`sm_online::IncrementalPolicy`] seam:
//!
//! ```
//! use sm_serve::{serve_multi, MultiServeConfig, PolicyKind, PolicySwap, TitleConfig};
//!
//! let config = MultiServeConfig {
//!     budget: Some(4),
//!     ..MultiServeConfig::new(
//!         vec![
//!             TitleConfig::new(64, 2.0),
//!             TitleConfig {
//!                 policy: PolicyKind::DelayGuaranteed,
//!                 swap: Some(PolicySwap { after_groups: 40, to: PolicyKind::Dyadic }),
//!                 ..TitleConfig::new(32, 3.0)
//!             },
//!         ],
//!         600.0,
//!     )
//! };
//! let report = serve_multi(&config).unwrap();
//! assert_eq!(report.rejected, 0, "delay replaces rejection");
//! assert_eq!(report.served, report.generated);
//! assert_eq!(report.titles.len(), 2);
//! for title in &report.titles {
//!     assert_eq!(title.served, title.generated);
//! }
//! ```

use std::fmt;

use sm_sim::{ClientReport, IncrementalSummary, IngestError, SimError};

mod multi;

pub use multi::{
    serve_multi, serve_multi_with, MultiServeConfig, MultiServeReport, PolicyKind, PolicySwap,
    TitleConfig, TitleReport,
};

/// Largest accepted horizon: keeps `t.floor() as i64` exact (every f64
/// below this is integer-representable in i64) and batch counts sane.
const MAX_HORIZON: f64 = 1e15;

/// Everything a single-title serving run needs. All fields are public;
/// start from [`ServeConfig::new`] and override what the scenario calls
/// for. The run itself is the one-title specialization of the multi-title
/// loop (see [`MultiServeConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Media length in slots (`L`); must be at least 1.
    pub media_len: u64,
    /// Traffic horizon in slots: arrivals are generated over `(0, horizon]`.
    pub horizon: f64,
    /// Mean inter-arrival gap of the Poisson workload, in slots.
    pub mean_interarrival: f64,
    /// Workload RNG seed; identical seeds replay identical traffic.
    pub seed: u64,
    /// Shared channel budget: at most this many full-length streams live
    /// at once. Arrivals past the budget are *delayed*, never declined.
    /// `None` plans every stream at its arrival slot (zero delay).
    pub budget: Option<usize>,
    /// Producer batch granularity in slots; each pipeline item carries the
    /// arrivals of one such sub-horizon.
    pub batch_slots: f64,
    /// Backpressure depth of the generator→ingest channel (must be ≥ 1):
    /// the producer runs at most this many batches ahead of ingest.
    pub pipeline_depth: usize,
    /// Optional per-client buffer bound, forwarded to the engine.
    pub buffer_bound: Option<u64>,
}

impl ServeConfig {
    /// A serving run over `(0, horizon]` with Poisson gaps of mean
    /// `mean_interarrival`, an unbounded budget, and default pipeline
    /// granularity (256-slot batches, depth 4).
    pub fn new(media_len: u64, horizon: f64, mean_interarrival: f64) -> Self {
        Self {
            media_len,
            horizon,
            mean_interarrival,
            seed: 7,
            budget: None,
            batch_slots: 256.0,
            pipeline_depth: 4,
            buffer_bound: None,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        let bad = |field, reason| Err(ServeError::Config { field, reason });
        if self.media_len == 0 {
            return bad("media_len", "must be at least 1 slot");
        }
        if !(self.horizon > 0.0 && self.horizon <= MAX_HORIZON) {
            return bad("horizon", "must be finite, positive, and at most 1e15");
        }
        if !(self.mean_interarrival > 0.0 && self.mean_interarrival.is_finite()) {
            return bad("mean_interarrival", "must be finite and positive");
        }
        if self.budget == Some(0) {
            return bad("budget", "a bounded budget needs at least 1 channel");
        }
        if !(self.batch_slots >= 1.0 && self.batch_slots.is_finite()) {
            return bad("batch_slots", "must be finite and at least 1");
        }
        if self.pipeline_depth == 0 {
            return bad("pipeline_depth", "must be at least 1");
        }
        Ok(())
    }
}

/// Wall-clock ingest cost per served arrival, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Median push latency.
    pub p50_ns: u64,
    /// 90th-percentile push latency.
    pub p90_ns: u64,
    /// 99th-percentile push latency.
    pub p99_ns: u64,
    /// Worst single push.
    pub max_ns: u64,
    /// Amortized mean — total ingest time over served arrivals.
    pub mean_ns: u64,
}

impl LatencyStats {
    /// Percentiles of a latency sample; all zeros on an empty sample.
    pub(crate) fn from_samples(mut ns: Vec<u64>) -> Self {
        if ns.is_empty() {
            return Self::default();
        }
        ns.sort_unstable();
        let at = |q: f64| {
            let idx = ((ns.len() - 1) as f64 * q).round() as usize;
            ns.get(idx).copied().unwrap_or(0)
        };
        let total: u64 = ns.iter().sum();
        Self {
            p50_ns: at(0.50),
            p90_ns: at(0.90),
            p99_ns: at(0.99),
            max_ns: ns.last().copied().unwrap_or(0),
            mean_ns: total / ns.len() as u64,
        }
    }
}

/// Planned start-up delay distribution, in slots. One slot *is* the
/// guaranteed start-up delay, so every field reads directly as a multiple
/// of the guarantee; an unbounded budget reports all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelayStats {
    /// Median planned delay.
    pub p50_slots: u64,
    /// 99th-percentile planned delay.
    pub p99_slots: u64,
    /// Worst planned delay.
    pub max_slots: u64,
    /// Mean planned delay.
    pub mean_slots: f64,
}

/// Exact delay tally: delays are small integers (bounded by how long a
/// license chain can run ahead), so a dense count vector gives exact
/// percentiles with no per-arrival sample storage and no end-of-run sort
/// — the growth is amortized out by the worst delay seen, not by the
/// arrival count.
#[derive(Debug, Clone, Default)]
pub(crate) struct DelayHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl DelayHistogram {
    pub(crate) fn record(&mut self, delay_slots: u64) {
        let idx = delay_slots as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.total += 1;
        self.sum += delay_slots;
    }

    /// Folds `other` into `self` (used for the all-titles aggregate).
    pub(crate) fn absorb(&mut self, other: &Self) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// The value at quantile `q` under the same rank convention as
    /// [`LatencyStats`]: the sample at index `round((n − 1)·q)` of the
    /// sorted sequence.
    fn quantile(&self, q: f64) -> u64 {
        let rank = ((self.total.saturating_sub(1)) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > rank {
                return value as u64;
            }
        }
        self.max()
    }

    fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i as u64)
            .unwrap_or(0)
    }

    pub(crate) fn stats(&self) -> DelayStats {
        if self.total == 0 {
            return DelayStats::default();
        }
        DelayStats {
            p50_slots: self.quantile(0.50),
            p99_slots: self.quantile(0.99),
            max_slots: self.max(),
            mean_slots: self.sum as f64 / self.total as f64,
        }
    }
}

/// What a single-title serving run did: traffic counts, the delay the
/// planner handed out, the engine's summary, and the ingest loop's own
/// latency accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Arrivals the workload generator produced over the horizon.
    pub generated: usize,
    /// Arrivals served (`= generated`; the loop never declines).
    pub served: usize,
    /// Always 0 — kept as the observable zero-rejection invariant of the
    /// delay-planning contract.
    pub rejected: usize,
    /// Planned start-up delay distribution over all served arrivals.
    pub delay: DelayStats,
    /// The engine's whole-run aggregates, bit-identical to a batch
    /// simulation of the same served forest.
    pub summary: IncrementalSummary,
    /// Per-push wall-clock percentiles over served arrivals.
    pub latency: LatencyStats,
}

/// A serving run could not start or had to stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A [`ServeConfig`] / [`MultiServeConfig`] field is out of range.
    Config {
        /// Which field.
        field: &'static str,
        /// What it must satisfy.
        reason: &'static str,
    },
    /// The merge policy named a parent the loop never pushed — a policy
    /// contract violation, never reachable with the built-in policies.
    PolicyDesync {
        /// Policy-local index of the arrival being placed.
        node: usize,
        /// The unknown parent it named.
        parent: usize,
    },
    /// The engine rejected a push mid-run.
    Ingest(IngestError),
    /// The final drain hit a simulation-model violation.
    Sim(SimError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { field, reason } => write!(f, "invalid serve config {field}: {reason}"),
            Self::PolicyDesync { node, parent } => {
                write!(f, "policy placed node {node} under unknown parent {parent}")
            }
            Self::Ingest(e) => write!(f, "{e}"),
            Self::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IngestError> for ServeError {
    fn from(e: IngestError) -> Self {
        Self::Ingest(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Runs a single-title serving session, discarding per-client reports.
/// See [`serve_with`] to observe them as they stream out.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, ServeError> {
    serve_with(config, |_| {})
}

/// Runs a single-title serving session end to end: generates the Poisson
/// workload on a producer thread, ingests it arrival-at-a-time through
/// delay planning, policy, and engine, and invokes `on_report` for every
/// served client the moment its last part-deadline fires (emission order
/// = service order). Returns the aggregate [`ServeReport`].
///
/// This is the one-title specialization of [`serve_multi_with`]: same
/// loop, same traffic (title 0 of the multi loop draws the identical
/// Poisson process), same dyadic default policy.
pub fn serve_with<F>(config: &ServeConfig, mut on_report: F) -> Result<ServeReport, ServeError>
where
    F: FnMut(ClientReport),
{
    config.validate()?;
    let multi = MultiServeConfig {
        titles: vec![TitleConfig {
            buffer_bound: config.buffer_bound,
            ..TitleConfig::new(config.media_len, config.mean_interarrival)
        }],
        horizon: config.horizon,
        budget: config.budget,
        seed: config.seed,
        batch_slots: config.batch_slots,
        pipeline_depth: config.pipeline_depth,
    };
    let report = serve_multi_with(&multi, &sm_server::PlannerMemo::new(), |_, r| on_report(r))?;
    let mut titles = report.titles;
    let title = titles.drain(..).next().ok_or(ServeError::Config {
        field: "titles",
        reason: "single-title run must produce one title report",
    })?;
    Ok(ServeReport {
        generated: report.generated,
        served: report.served,
        rejected: report.rejected,
        delay: title.delay,
        summary: title.summary,
        latency: report.latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_serves_every_arrival_with_zero_delay() {
        let report = serve(&ServeConfig::new(64, 500.0, 2.0)).unwrap();
        assert!(report.generated > 0, "a 500-slot horizon produces traffic");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.served, report.generated);
        assert_eq!(report.summary.summary.clients, report.served);
        assert_eq!(report.delay, DelayStats::default());
        assert_eq!(
            report.summary.summary.bandwidth.total_units(),
            report.summary.summary.total_units
        );
        let l = report.latency;
        assert!(l.p50_ns <= l.p90_ns && l.p90_ns <= l.p99_ns && l.p99_ns <= l.max_ns);
        assert!(l.max_ns > 0, "pushes take measurable time");
    }

    #[test]
    fn replays_are_deterministic_modulo_latency() {
        let config = ServeConfig::new(32, 300.0, 1.5);
        let a = serve(&config).unwrap();
        let b = serve(&config).unwrap();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn seeds_change_the_workload() {
        let base = ServeConfig::new(32, 400.0, 1.5);
        let other = ServeConfig {
            seed: base.seed + 1,
            ..base.clone()
        };
        let a = serve(&base).unwrap();
        let b = serve(&other).unwrap();
        assert_ne!(
            (a.generated, a.summary.summary.total_units),
            (b.generated, b.summary.summary.total_units),
            "different seeds should draw different traffic"
        );
    }

    #[test]
    fn single_channel_delays_overflow_instead_of_declining() {
        // One channel over dense traffic: the old loop declined most
        // arrivals here; the delay planner serves all of them, pushing
        // start-up back by up to about one media length, and keeps at
        // most the draining tree plus the live one retained.
        let config = ServeConfig {
            budget: Some(1),
            ..ServeConfig::new(40, 600.0, 1.0)
        };
        let report = serve(&config).unwrap();
        assert_eq!(report.rejected, 0, "delay replaces rejection");
        assert_eq!(report.served, report.generated);
        assert_eq!(report.summary.summary.clients, report.generated);
        assert!(
            report.delay.max_slots > 0,
            "dense traffic over one channel must queue"
        );
        assert!(
            report.delay.max_slots <= 2 * 40,
            "one-channel queueing is bounded by chain spacing, got {}",
            report.delay.max_slots
        );
        assert!(report.delay.mean_slots > 0.0);
        assert!(
            report.summary.max_open_trees <= 2,
            "one channel keeps at most a draining tree plus the live one, got {}",
            report.summary.max_open_trees
        );
    }

    #[test]
    fn zero_budget_is_rejected_as_infeasible() {
        let config = ServeConfig {
            budget: Some(0),
            ..ServeConfig::new(16, 200.0, 2.0)
        };
        match serve(&config) {
            Err(ServeError::Config { field, .. }) => assert_eq!(field, "budget"),
            other => panic!("expected Config error for budget, got {other:?}"),
        }
    }

    #[test]
    fn reports_stream_out_in_service_order() {
        let mut clients = Vec::new();
        let report = serve_with(&ServeConfig::new(24, 250.0, 1.0), |r| {
            clients.push(r.client);
        })
        .unwrap();
        assert_eq!(clients.len(), report.served);
        let in_order: Vec<usize> = (0..report.served).collect();
        assert_eq!(
            clients, in_order,
            "service slots are sorted, so emission order is service order"
        );
    }

    #[test]
    fn pipeline_depth_does_not_change_the_traffic() {
        // Depth only moves the backpressure point between generator and
        // ingest; the drawn process and the served forest are identical.
        let shallow = ServeConfig {
            pipeline_depth: 1,
            ..ServeConfig::new(32, 400.0, 2.0)
        };
        let deep = ServeConfig {
            pipeline_depth: 8,
            ..shallow.clone()
        };
        let a = serve(&shallow).unwrap();
        let b = serve(&deep).unwrap();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        let cases: [(ServeConfig, &str); 5] = [
            (ServeConfig::new(0, 100.0, 1.0), "media_len"),
            (ServeConfig::new(8, 0.0, 1.0), "horizon"),
            (ServeConfig::new(8, f64::INFINITY, 1.0), "horizon"),
            (ServeConfig::new(8, 100.0, 0.0), "mean_interarrival"),
            (
                ServeConfig {
                    pipeline_depth: 0,
                    ..ServeConfig::new(8, 100.0, 1.0)
                },
                "pipeline_depth",
            ),
        ];
        for (config, want) in cases {
            match serve(&config) {
                Err(ServeError::Config { field, .. }) => assert_eq!(field, want),
                other => panic!("expected Config error for {want}, got {other:?}"),
            }
        }
    }

    #[test]
    fn buffer_bound_is_forwarded_to_the_engine() {
        // A zero client buffer makes any actual merge infeasible; dense
        // traffic guarantees merges, so the run must fail with the
        // engine's own typed error.
        let config = ServeConfig {
            buffer_bound: Some(0),
            ..ServeConfig::new(32, 300.0, 1.0)
        };
        match serve(&config) {
            Err(ServeError::Ingest(IngestError::Sim(SimError::BufferOverflow { .. })))
            | Err(ServeError::Sim(SimError::BufferOverflow { .. })) => {}
            other => panic!("expected BufferOverflow, got {other:?}"),
        }
    }

    #[test]
    fn display_formats_are_stable() {
        let e = ServeError::Config {
            field: "horizon",
            reason: "must be finite, positive, and at most 1e15",
        };
        assert_eq!(
            e.to_string(),
            "invalid serve config horizon: must be finite, positive, and at most 1e15"
        );
        let d = ServeError::PolicyDesync { node: 4, parent: 9 };
        assert_eq!(d.to_string(), "policy placed node 4 under unknown parent 9");
    }

    #[test]
    fn delay_histogram_percentiles_are_exact() {
        let mut h = DelayHistogram::default();
        for d in [0u64, 0, 0, 1, 1, 2, 5, 5, 9, 40] {
            h.record(d);
        }
        let s = h.stats();
        // Sorted sample: ranks follow round((n−1)·q), half away from zero.
        assert_eq!(s.p50_slots, 2);
        assert_eq!(s.p99_slots, 40);
        assert_eq!(s.max_slots, 40);
        assert!((s.mean_slots - 6.3).abs() < 1e-12);

        let mut other = DelayHistogram::default();
        other.record(100);
        h.absorb(&other);
        assert_eq!(h.stats().max_slots, 100);
        assert_eq!(DelayHistogram::default().stats(), DelayStats::default());
    }
}
