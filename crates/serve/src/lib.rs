#![forbid(unsafe_code)]
//! Long-running serving facade: a push-based ingest loop over the
//! incremental engine.
//!
//! Where `sm-sim` answers "what does this forest cost?" for a workload
//! that already happened, this crate runs the serving side as it would
//! run in production: arrivals are *generated on a separate thread*,
//! flow through the bounded [`sm_core::pipeline`] channel (so workload
//! generation is backpressured by ingest, never the other way around),
//! and hit the server one at a time. For each arrival, at traffic time,
//! the loop
//!
//! 1. **admits or declines** it against the live channel gauge — the
//!    number of full-length streams whose playback windows are still
//!    open. With [`ServeConfig::max_active`] set, the server behaves
//!    like the fixed-bandwidth server of the paper's §5: a client is
//!    declined exactly when it cannot join the current slot's
//!    already-admitted group and every channel license is busy;
//! 2. asks the online **merge policy** (the dyadic merger with the
//!    golden ratio α and β = ½, the paper's recommended configuration
//!    for Poisson traffic) where the arrival merges;
//! 3. **pushes** it into [`sm_sim::IncrementalEngine`], which maintains
//!    open merge trees and the sparse bandwidth profile incrementally
//!    and streams each [`ClientReport`] out the moment that client's
//!    last part-deadline fires.
//!
//! Per-push wall-clock latency is recorded for every admitted arrival;
//! the final [`ServeReport`] carries p50/p90/p99/max percentiles next to
//! the engine's own [`IncrementalSummary`].
//!
//! Arrival times are continuous (Poisson) and are floored onto the
//! integer slot grid the merge model works in; co-slot arrivals merge
//! under the slot's first client as zero-length streams (they receive
//! everything their parent receives), so the policy only ever sees
//! strictly increasing distinct slots.
//!
//! ```
//! use sm_serve::{serve, ServeConfig};
//!
//! let report = serve(&ServeConfig::new(64, 400.0, 2.0)).unwrap();
//! assert_eq!(report.generated, report.admitted + report.rejected);
//! assert_eq!(report.summary.summary.clients, report.admitted);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Instant;

use sm_core::pipeline;
use sm_online::{DyadicConfig, DyadicMerger, IncrementalPolicy};
use sm_sim::{
    Attach, ClientReport, IncrementalEngine, IncrementalSummary, IngestError, SimConfig, SimError,
};
use sm_workload::{ArrivalProcess, PoissonProcess};

/// Largest accepted horizon: keeps `t.floor() as i64` exact (every f64
/// below this is integer-representable in i64) and batch counts sane.
const MAX_HORIZON: f64 = 1e15;

/// Everything a serving run needs. All fields are public; start from
/// [`ServeConfig::new`] and override what the scenario calls for.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Media length in slots (`L`); must be at least 1.
    pub media_len: u64,
    /// Traffic horizon in slots: arrivals are generated over `(0, horizon]`.
    pub horizon: f64,
    /// Mean inter-arrival gap of the Poisson workload, in slots.
    pub mean_interarrival: f64,
    /// Workload RNG seed; identical seeds replay identical traffic.
    pub seed: u64,
    /// Channel-license cap: decline a new slot's arrivals while this many
    /// full streams have open playback windows. `None` admits everything.
    pub max_active: Option<usize>,
    /// Producer batch granularity in slots; each pipeline item carries the
    /// arrivals of one such sub-horizon.
    pub batch_slots: f64,
    /// Backpressure depth of the generator→ingest channel (must be ≥ 1):
    /// the producer runs at most this many batches ahead of ingest.
    pub pipeline_depth: usize,
    /// Optional per-client buffer bound, forwarded to the engine.
    pub buffer_bound: Option<u64>,
}

impl ServeConfig {
    /// A serving run over `(0, horizon]` with Poisson gaps of mean
    /// `mean_interarrival`, unlimited admission, and default pipeline
    /// granularity (256-slot batches, depth 4).
    pub fn new(media_len: u64, horizon: f64, mean_interarrival: f64) -> Self {
        Self {
            media_len,
            horizon,
            mean_interarrival,
            seed: 7,
            max_active: None,
            batch_slots: 256.0,
            pipeline_depth: 4,
            buffer_bound: None,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        let bad = |field, reason| Err(ServeError::Config { field, reason });
        if self.media_len == 0 {
            return bad("media_len", "must be at least 1 slot");
        }
        if !(self.horizon > 0.0 && self.horizon <= MAX_HORIZON) {
            return bad("horizon", "must be finite, positive, and at most 1e15");
        }
        if !(self.mean_interarrival > 0.0 && self.mean_interarrival.is_finite()) {
            return bad("mean_interarrival", "must be finite and positive");
        }
        if !(self.batch_slots >= 1.0 && self.batch_slots.is_finite()) {
            return bad("batch_slots", "must be finite and at least 1");
        }
        if self.pipeline_depth == 0 {
            return bad("pipeline_depth", "must be at least 1");
        }
        Ok(())
    }
}

/// Wall-clock ingest cost per admitted arrival, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Median push latency.
    pub p50_ns: u64,
    /// 90th-percentile push latency.
    pub p90_ns: u64,
    /// 99th-percentile push latency.
    pub p99_ns: u64,
    /// Worst single push.
    pub max_ns: u64,
    /// Amortized mean — total ingest time over admitted arrivals.
    pub mean_ns: u64,
}

impl LatencyStats {
    /// Percentiles of a latency sample; all zeros on an empty sample.
    fn from_samples(mut ns: Vec<u64>) -> Self {
        if ns.is_empty() {
            return Self::default();
        }
        ns.sort_unstable();
        let at = |q: f64| {
            let idx = ((ns.len() - 1) as f64 * q).round() as usize;
            ns.get(idx).copied().unwrap_or(0)
        };
        let total: u64 = ns.iter().sum();
        Self {
            p50_ns: at(0.50),
            p90_ns: at(0.90),
            p99_ns: at(0.99),
            max_ns: ns.last().copied().unwrap_or(0),
            mean_ns: total / ns.len() as u64,
        }
    }
}

/// What a serving run did: admission counts, the engine's summary, and
/// the ingest loop's own latency accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Arrivals the workload generator produced over the horizon.
    pub generated: usize,
    /// Arrivals admitted and served (`= summary.summary.clients`).
    pub admitted: usize,
    /// Arrivals declined at traffic time by the channel-license gauge.
    pub rejected: usize,
    /// The engine's whole-run aggregates, bit-identical to a batch
    /// simulation of the same admitted forest.
    pub summary: IncrementalSummary,
    /// Per-push wall-clock percentiles over admitted arrivals.
    pub latency: LatencyStats,
}

/// A serving run could not start or had to stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A [`ServeConfig`] field is out of range.
    Config {
        /// Which field.
        field: &'static str,
        /// What it must satisfy.
        reason: &'static str,
    },
    /// The merge policy named a parent the loop never admitted — a policy
    /// contract violation, never reachable with the built-in policies.
    PolicyDesync {
        /// Policy-local index of the arrival being placed.
        node: usize,
        /// The unknown parent it named.
        parent: usize,
    },
    /// The engine rejected a push mid-run.
    Ingest(IngestError),
    /// The final drain hit a simulation-model violation.
    Sim(SimError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { field, reason } => write!(f, "invalid ServeConfig.{field}: {reason}"),
            Self::PolicyDesync { node, parent } => {
                write!(f, "policy placed node {node} under unknown parent {parent}")
            }
            Self::Ingest(e) => write!(f, "{e}"),
            Self::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IngestError> for ServeError {
    fn from(e: IngestError) -> Self {
        Self::Ingest(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Floors a continuous arrival time onto the slot grid. `t` is bounded
/// by the validated horizon, so the saturating `as` cast is exact.
fn slot_of(t: f64) -> i64 {
    t.floor() as i64
}

/// Nanoseconds since `t0`, saturating instead of unwrapping on the
/// (centuries-long) overflow path.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs a serving session, discarding per-client reports. See
/// [`serve_with`] to observe them as they stream out.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, ServeError> {
    serve_with(config, |_| {})
}

/// Runs a serving session end to end: generates the Poisson workload on
/// a producer thread, ingests it arrival-at-a-time through admission,
/// policy, and engine, and invokes `on_report` for every served client
/// the moment its last part-deadline fires (emission order = arrival
/// order). Returns the aggregate [`ServeReport`].
pub fn serve_with<F>(config: &ServeConfig, mut on_report: F) -> Result<ServeReport, ServeError>
where
    F: FnMut(ClientReport),
{
    config.validate()?;
    let media = config.media_len as i64;
    let cap = config.max_active;
    let n_batches = (config.horizon / config.batch_slots).ceil() as usize;
    let (horizon, batch, mean, seed) = (
        config.horizon,
        config.batch_slots,
        config.mean_interarrival,
        config.seed,
    );

    let mut engine = IncrementalEngine::new(
        config.media_len,
        SimConfig {
            buffer_bound: config.buffer_bound,
            ..SimConfig::events()
        },
    )?;
    let mut policy = DyadicMerger::new(DyadicConfig::golden_poisson(), config.media_len as f64);
    // Policy-local node index -> engine-global index of that slot's head.
    let mut slot_reps: Vec<usize> = Vec::new();
    // Playback-window ends of admitted full streams, soonest first: the
    // live channel gauge the admission decision reads.
    let mut windows: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    // Most recently admitted slot and its head's global index.
    let mut cur: Option<(i64, usize)> = None;
    let mut latencies: Vec<u64> = Vec::new();
    let (mut generated, mut rejected) = (0usize, 0usize);

    // Workload generation runs on the pipeline's producer thread, at most
    // `pipeline_depth` batches ahead of ingest. Each batch is an
    // independent Poisson segment over its sub-horizon; because the
    // Poisson process has independent, memoryless increments, the
    // concatenation is distributed exactly as one Poisson process over
    // the whole horizon — and per-batch seeding keeps every batch a pure
    // function of (seed, index).
    pipeline(
        n_batches,
        config.pipeline_depth,
        move |i| -> Result<Vec<f64>, ServeError> {
            let offset = i as f64 * batch;
            let span = (horizon - offset).min(batch);
            let mut proc =
                PoissonProcess::new(mean, seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Ok(proc.generate(span).iter().map(|t| offset + t).collect())
        },
        |_, arrivals| {
            for t in arrivals {
                generated += 1;
                let slot = slot_of(t);
                // Co-slot arrivals join the already-admitted group for
                // free: a zero-length stream under the slot head.
                if let Some((s, head)) = cur {
                    if s == slot {
                        let t0 = Instant::now();
                        engine.push(slot, Attach::Under(head), &mut on_report)?;
                        latencies.push(elapsed_ns(t0));
                        continue;
                    }
                }
                // New slot: retire expired playback windows, then read
                // the license gauge. Both depend only on `slot`, so every
                // arrival of one slot gets the same verdict.
                while windows.peek().is_some_and(|&Reverse(end)| end <= slot) {
                    windows.pop();
                }
                if cap.is_some_and(|c| windows.len() >= c) {
                    rejected += 1;
                    continue;
                }
                let decision = policy.push(slot as f64);
                let attach = match decision.parent {
                    None => {
                        windows.push(Reverse(slot + media));
                        Attach::Root
                    }
                    Some(p) => {
                        Attach::Under(*slot_reps.get(p).ok_or(ServeError::PolicyDesync {
                            node: decision.node,
                            parent: p,
                        })?)
                    }
                };
                let global = engine.arrivals();
                let t0 = Instant::now();
                engine.push(slot, attach, &mut on_report)?;
                latencies.push(elapsed_ns(t0));
                slot_reps.push(global);
                cur = Some((slot, global));
            }
            Ok(())
        },
    )?;

    let summary = engine.finish(&mut on_report)?;
    let admitted = generated - rejected;
    debug_assert_eq!(summary.summary.clients, admitted);
    Ok(ServeReport {
        generated,
        admitted,
        rejected,
        summary,
        latency: LatencyStats::from_samples(latencies),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_admission_serves_every_arrival() {
        let report = serve(&ServeConfig::new(64, 500.0, 2.0)).unwrap();
        assert!(report.generated > 0, "a 500-slot horizon produces traffic");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.admitted, report.generated);
        assert_eq!(report.summary.summary.clients, report.admitted);
        assert_eq!(
            report.summary.summary.bandwidth.total_units(),
            report.summary.summary.total_units
        );
        let l = report.latency;
        assert!(l.p50_ns <= l.p90_ns && l.p90_ns <= l.p99_ns && l.p99_ns <= l.max_ns);
        assert!(l.max_ns > 0, "pushes take measurable time");
    }

    #[test]
    fn replays_are_deterministic_modulo_latency() {
        let config = ServeConfig::new(32, 300.0, 1.5);
        let a = serve(&config).unwrap();
        let b = serve(&config).unwrap();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn seeds_change_the_workload() {
        let base = ServeConfig::new(32, 400.0, 1.5);
        let other = ServeConfig {
            seed: base.seed + 1,
            ..base.clone()
        };
        let a = serve(&base).unwrap();
        let b = serve(&other).unwrap();
        assert_ne!(
            (a.generated, a.summary.summary.total_units),
            (b.generated, b.summary.summary.total_units),
            "different seeds should draw different traffic"
        );
    }

    #[test]
    fn single_license_declines_overflow_and_bounds_retention() {
        // One channel license over dense traffic: most arrivals outside
        // the current root's window must be declined, and at most two
        // trees (the draining one and the live one) are ever retained.
        let config = ServeConfig {
            max_active: Some(1),
            ..ServeConfig::new(40, 600.0, 1.0)
        };
        let report = serve(&config).unwrap();
        assert!(report.admitted > 0);
        assert!(
            report.rejected > 0,
            "dense traffic must overflow one license"
        );
        assert_eq!(report.admitted + report.rejected, report.generated);
        assert_eq!(report.summary.summary.clients, report.admitted);
        assert!(
            report.summary.max_open_trees <= 2,
            "one license keeps at most a draining tree plus the live one, got {}",
            report.summary.max_open_trees
        );
    }

    #[test]
    fn zero_licenses_decline_everything() {
        let config = ServeConfig {
            max_active: Some(0),
            ..ServeConfig::new(16, 200.0, 2.0)
        };
        let report = serve(&config).unwrap();
        assert_eq!(report.admitted, 0);
        assert!(report.rejected > 0);
        assert_eq!(report.summary.summary.clients, 0);
        assert_eq!(report.summary.summary.total_units, 0);
        assert_eq!(report.latency, LatencyStats::default());
    }

    #[test]
    fn reports_stream_out_in_arrival_order() {
        let mut clients = Vec::new();
        let report = serve_with(&ServeConfig::new(24, 250.0, 1.0), |r| {
            clients.push(r.client);
        })
        .unwrap();
        assert_eq!(clients.len(), report.admitted);
        let in_order: Vec<usize> = (0..report.admitted).collect();
        assert_eq!(
            clients, in_order,
            "slot times are sorted, so emission order is arrival order"
        );
    }

    #[test]
    fn pipeline_depth_does_not_change_the_traffic() {
        // Depth only moves the backpressure point between generator and
        // ingest; the drawn process and the served forest are identical.
        let shallow = ServeConfig {
            pipeline_depth: 1,
            ..ServeConfig::new(32, 400.0, 2.0)
        };
        let deep = ServeConfig {
            pipeline_depth: 8,
            ..shallow.clone()
        };
        let a = serve(&shallow).unwrap();
        let b = serve(&deep).unwrap();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        let cases: [(ServeConfig, &str); 5] = [
            (ServeConfig::new(0, 100.0, 1.0), "media_len"),
            (ServeConfig::new(8, 0.0, 1.0), "horizon"),
            (ServeConfig::new(8, f64::INFINITY, 1.0), "horizon"),
            (ServeConfig::new(8, 100.0, 0.0), "mean_interarrival"),
            (
                ServeConfig {
                    pipeline_depth: 0,
                    ..ServeConfig::new(8, 100.0, 1.0)
                },
                "pipeline_depth",
            ),
        ];
        for (config, want) in cases {
            match serve(&config) {
                Err(ServeError::Config { field, .. }) => assert_eq!(field, want),
                other => panic!("expected Config error for {want}, got {other:?}"),
            }
        }
    }

    #[test]
    fn buffer_bound_is_forwarded_to_the_engine() {
        // A zero client buffer makes any actual merge infeasible; dense
        // traffic guarantees merges, so the run must fail with the
        // engine's own typed error.
        let config = ServeConfig {
            buffer_bound: Some(0),
            ..ServeConfig::new(32, 300.0, 1.0)
        };
        match serve(&config) {
            Err(ServeError::Ingest(IngestError::Sim(SimError::BufferOverflow { .. })))
            | Err(ServeError::Sim(SimError::BufferOverflow { .. })) => {}
            other => panic!("expected BufferOverflow, got {other:?}"),
        }
    }

    #[test]
    fn display_formats_are_stable() {
        let e = ServeError::Config {
            field: "horizon",
            reason: "must be finite, positive, and at most 1e15",
        };
        assert_eq!(
            e.to_string(),
            "invalid ServeConfig.horizon: must be finite, positive, and at most 1e15"
        );
        let d = ServeError::PolicyDesync { node: 4, parent: 9 };
        assert_eq!(d.to_string(), "policy placed node 4 under unknown parent 9");
    }
}
