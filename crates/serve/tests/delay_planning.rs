//! Delay re-planning acceptance tests.
//!
//! * The single-title path at an unbounded budget is **bit-identical** to
//!   the retired PR-6 license-gating loop with its gauge disabled — the
//!   reference loop is replicated inline here (same per-batch Poisson
//!   seeding, same co-slot batching, same dyadic policy, no planning) and
//!   the property test pins the two summaries against each other.
//! * A mid-run Delay Guaranteed → Delay Guaranteed policy swap at a tree
//!   boundary is a no-op: the run is bit-identical to the unswapped one.
//! * Simultaneous arrivals across titles under a one-channel budget are
//!   all served, with the contention showing up as nonzero delay.
//! * Starving the shared budget grows delay but never creates a
//!   rejection — the zero-rejection invariant under pressure.

use proptest::prelude::*;
use sm_online::{DelayGuaranteedOnline, DyadicConfig, DyadicMerger, IncrementalPolicy};
use sm_serve::{
    serve, serve_multi, MultiServeConfig, PolicyKind, PolicySwap, ServeConfig, TitleConfig,
};
use sm_sim::{Attach, IncrementalEngine, IncrementalSummary, SimConfig};
use sm_workload::{ArrivalProcess, PoissonProcess};

/// The PR-6 ingest loop with `max_active: None`, replicated verbatim:
/// per-batch Poisson seeding, slot flooring, co-slot batching under the
/// slot head, dyadic policy, no delay planner. What `serve` must still
/// compute at an unbounded budget.
fn license_gating_reference(config: &ServeConfig) -> IncrementalSummary {
    let n_batches = (config.horizon / config.batch_slots).ceil() as usize;
    let mut arrivals: Vec<f64> = Vec::new();
    for i in 0..n_batches {
        let offset = i as f64 * config.batch_slots;
        let span = (config.horizon - offset).min(config.batch_slots);
        let mut proc = PoissonProcess::new(
            config.mean_interarrival,
            config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        arrivals.extend(proc.generate(span).iter().map(|t| offset + t));
    }
    let mut engine = IncrementalEngine::new(config.media_len, SimConfig::events()).unwrap();
    let mut policy = DyadicMerger::new(DyadicConfig::golden_poisson(), config.media_len as f64);
    let mut slot_reps: Vec<usize> = Vec::new();
    let mut cur: Option<(i64, usize)> = None;
    for t in arrivals {
        let slot = t.floor() as i64;
        if let Some((s, head)) = cur {
            if s == slot {
                engine.push(slot, Attach::Under(head), &mut |_| {}).unwrap();
                continue;
            }
        }
        let decision = policy.push(slot as f64);
        let attach = match decision.parent {
            None => Attach::Root,
            Some(p) => Attach::Under(slot_reps[p]),
        };
        let global = engine.arrivals();
        engine.push(slot, attach, &mut |_| {}).unwrap();
        slot_reps.push(global);
        cur = Some((slot, global));
    }
    engine.finish(&mut |_| {}).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unbounded_budget_is_bit_identical_to_the_license_gating_loop(
        media_len in 8u64..96,
        horizon in 50.0f64..400.0,
        mean in 0.5f64..4.0,
        seed in 0u64..1000,
    ) {
        let config = ServeConfig {
            seed,
            ..ServeConfig::new(media_len, horizon, mean)
        };
        let report = serve(&config).unwrap();
        prop_assert_eq!(report.rejected, 0);
        prop_assert_eq!(report.served, report.generated);
        prop_assert_eq!(report.delay.max_slots, 0);
        prop_assert_eq!(report.summary, license_gating_reference(&config));
    }

    #[test]
    fn dg_swap_at_a_tree_boundary_is_bit_identical_to_no_swap(
        media_len in 4u64..40,
        trees_before_swap in 1usize..6,
        seed in 0u64..500,
    ) {
        let boundary = DelayGuaranteedOnline::new(media_len).tree_size() as usize;
        let base = MultiServeConfig {
            seed,
            budget: Some(4),
            ..MultiServeConfig::new(
                vec![TitleConfig {
                    policy: PolicyKind::DelayGuaranteed,
                    ..TitleConfig::new(media_len, 1.0)
                }],
                400.0,
            )
        };
        let mut swapped = base.clone();
        swapped.titles[0].swap = Some(PolicySwap {
            after_groups: trees_before_swap * boundary,
            to: PolicyKind::DelayGuaranteed,
        });
        let plain_report = serve_multi(&base).unwrap();
        let swap_report = serve_multi(&swapped).unwrap();
        prop_assert_eq!(&plain_report.titles[0].summary, &swap_report.titles[0].summary);
        prop_assert_eq!(plain_report.titles[0].groups, swap_report.titles[0].groups);
        prop_assert_eq!(plain_report.titles[0].delay, swap_report.titles[0].delay);
        prop_assert_eq!(plain_report.generated, swap_report.generated);
    }
}

#[test]
fn simultaneous_cross_title_arrivals_are_all_served_with_delay() {
    // Two identically-loaded titles competing for one channel: the slot-0
    // collision (and every later one) must be resolved by delay, never by
    // rejection.
    let config = MultiServeConfig {
        budget: Some(1),
        ..MultiServeConfig::new(
            vec![TitleConfig::new(40, 0.5), TitleConfig::new(40, 0.5)],
            120.0,
        )
    };
    let report = serve_multi(&config).unwrap();
    assert_eq!(report.rejected, 0);
    assert_eq!(report.served, report.generated);
    for title in &report.titles {
        assert!(title.generated > 0, "both titles must draw traffic");
        assert_eq!(title.served, title.generated);
    }
    assert!(
        report.delay.max_slots > 0,
        "two titles over one channel must queue"
    );
    // The loser of the first collision waits for the winner's full
    // stream: contention is visible at media-length scale.
    assert!(
        report.delay.max_slots >= 39,
        "cross-title contention should cost about one media length, got {}",
        report.delay.max_slots
    );
}

#[test]
fn starved_budget_grows_delay_but_never_rejects() {
    let titles = || {
        vec![
            TitleConfig::new(60, 0.8),
            TitleConfig::new(60, 0.8),
            TitleConfig::new(60, 0.8),
        ]
    };
    let starved = serve_multi(&MultiServeConfig {
        budget: Some(1),
        ..MultiServeConfig::new(titles(), 900.0)
    })
    .unwrap();
    let generous = serve_multi(&MultiServeConfig {
        budget: Some(12),
        ..MultiServeConfig::new(titles(), 900.0)
    })
    .unwrap();
    // Identical traffic either way; the budget only moves start-up delay.
    assert_eq!(starved.generated, generous.generated);
    assert_eq!(starved.rejected, 0);
    assert_eq!(generous.rejected, 0);
    assert_eq!(starved.served, starved.generated);
    assert_eq!(generous.served, generous.generated);
    assert!(
        starved.delay.p99_slots > generous.delay.p99_slots,
        "starving the budget must grow tail delay: {} vs {}",
        starved.delay.p99_slots,
        generous.delay.p99_slots
    );
    assert!(
        starved.delay.max_slots > 60,
        "three titles on one channel queue past one media length, got {}",
        starved.delay.max_slots
    );
}

#[test]
fn cross_policy_swap_serves_everything() {
    // DG → dyadic and dyadic → DG swaps off the boundary carry no
    // bit-identity claim, but the seam must compose: every arrival is
    // still served and the run stays deterministic.
    for (from, to) in [
        (PolicyKind::DelayGuaranteed, PolicyKind::Dyadic),
        (PolicyKind::Dyadic, PolicyKind::DelayGuaranteed),
    ] {
        let config = MultiServeConfig {
            budget: Some(3),
            ..MultiServeConfig::new(
                vec![TitleConfig {
                    policy: from,
                    swap: Some(PolicySwap {
                        after_groups: 17,
                        to,
                    }),
                    ..TitleConfig::new(24, 1.0)
                }],
                300.0,
            )
        };
        let a = serve_multi(&config).unwrap();
        let b = serve_multi(&config).unwrap();
        assert_eq!(a.rejected, 0);
        assert_eq!(a.served, a.generated);
        assert!(a.titles[0].groups > 17, "the swap point must be reached");
        assert_eq!(a.titles[0].summary, b.titles[0].summary);
    }
}
