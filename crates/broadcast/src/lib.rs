#![forbid(unsafe_code)]
//! Static-allocation periodic broadcasting schemes — the pyramid-paradigm
//! baselines the paper positions stream merging against (§1).
//!
//! The paper's introduction contrasts the *dynamic* stream-merging model with
//! the *static* broadcasting protocols that preceded it: staggered/batched
//! broadcasting, pyramid broadcasting (Viswanathan–Imielinski \[38\]),
//! skyscraper broadcasting (Hua–Sheu \[24\]), fast broadcasting
//! (Juhn–Tseng \[27\]) and harmonic broadcasting (Juhn–Tseng \[25\]). All of them
//! pre-allocate a fixed set of channels per media object and broadcast fixed
//! segments periodically, so their server bandwidth is *constant* — it does
//! not adapt to the client arrival intensity, which is exactly the weakness
//! stream merging removes. Reproducing the paper's framing therefore needs
//! these schemes as executable baselines, not just citations.
//!
//! # Model
//!
//! A media object of `L` *units* is cut into ordered segments; segment `i`
//! is broadcast periodically (period, offset) on a logical channel of the
//! playback rate. A client tunes in at its arrival time, starts playback at
//! the next broadcast instance of segment 0 (that instant defines the
//! start-up delay), and must receive every later segment no later than the
//! moment playback reaches it. [`verify`] checks this *slot-exactly for every
//! arrival phase in one hyperperiod* and reports the worst start-up delay,
//! the maximum number of concurrently received channels (the receive-two /
//! receive-all distinction of the paper) and the maximum client buffer.
//!
//! Harmonic broadcasting transmits at fractional channel rates and is
//! analyzed in its exact fluid model instead ([`harmonic`]).
//!
//! # Unit conventions
//!
//! As everywhere in this reproduction, 1 unit = the guaranteed start-up
//! delay, and the media is `L` units long. A scheme built for delay `1` and
//! media `L` is directly comparable with the stream-merging algorithms'
//! per-slot bandwidth: [`SegmentPlan::bandwidth`] is in *channels* (multiples
//! of the playback rate), the same axis as Fig. 1 of the paper.
//!
//! # Example
//!
//! ```
//! use sm_broadcast::{skyscraper_broadcasting, verify_all_phases};
//!
//! // A 100-minute movie, 1-minute guaranteed delay, Hua–Sheu skyscraper.
//! let plan = skyscraper_broadcasting(100, 1, 52).unwrap();
//! // Verify every arrival phase under the receive-two cap.
//! let report = verify_all_phases(&plan, Some(2), 1_000_000).unwrap();
//! assert!(report.worst_delay < 1 + 1);
//! assert_eq!(report.max_concurrent, 2);
//! assert!(report.bandwidth.0 as f64 / (report.bandwidth.1 as f64) < 10.0);
//! ```

pub mod error;
pub mod fast;
pub mod harmonic;
pub mod plan;
pub mod pyramid;
pub mod skyscraper;
pub mod staggered;
pub mod tradeoff;
pub mod verify;

pub use error::BroadcastError;
pub use fast::fast_broadcasting;
pub use harmonic::{harmonic_bandwidth, HarmonicPlan};
pub use plan::{Segment, SegmentPlan};
pub use pyramid::{max_feasible_alpha, pyramid_broadcasting};
pub use skyscraper::{skyscraper_broadcasting, skyscraper_series};
pub use staggered::staggered_broadcasting;
pub use tradeoff::{static_tradeoff, SchemeRow};
pub use verify::{client_schedule, verify_all_phases, ClientOutcome, PlanReport};
