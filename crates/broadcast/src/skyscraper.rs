//! Skyscraper broadcasting (Hua–Sheu \[24\], cited in paper §1 as *the*
//! delay-guaranteed pyramid-model predecessor).
//!
//! Skyscraper was designed for clients that can receive at most **two**
//! channels at once — the same receive-two model as the paper's stream
//! merging. Its segment-size series
//!
//! ```text
//! 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, 105, 105, …
//! ```
//!
//! grows by the recurrence `f(i) = 2f(i−1)+1` (i ≡ 0 mod 4),
//! `f(i) = 2f(i−1)+2` (i ≡ 2 mod 4), `f(i) = f(i−1)` (odd i), chosen so that
//! equal-size segments pair into "transmission groups" which a two-loader
//! client can fetch back-to-back while earlier groups play. The `W`
//! parameter ("width") caps segment sizes to bound the client buffer — the
//! same bandwidth/buffer tradeoff the paper revisits in §3.3.
//!
//! The receive-two property is not assumed here: the slot-exact verifier
//! checks it for every arrival phase (see the tests), which is precisely the
//! guarantee Hua–Sheu prove by construction.

use crate::error::BroadcastError;
use crate::plan::{Segment, SegmentPlan};

/// The first `k` terms of the skyscraper segment-size series, capped at `w`.
///
/// `w = u64::MAX` gives the unrestricted series `1, 2, 2, 5, 5, 12, 12, …`.
pub fn skyscraper_series(k: usize, w: u64) -> Vec<u64> {
    assert!(w >= 1);
    let mut out = Vec::with_capacity(k);
    let mut prev = 0u64;
    for i in 1..=k {
        let raw = match i {
            1 => 1,
            2 => 2,
            _ => match i % 4 {
                0 => 2 * prev + 1,
                2 => 2 * prev + 2,
                _ => prev, // odd i ≥ 3 repeats
            },
        };
        // Once capped at w the series stays at w (the "width restriction").
        let v = raw.min(w);
        out.push(v);
        prev = v;
    }
    out
}

/// Builds the skyscraper plan covering a media of `media_len` units with
/// first segment (= guaranteed delay) `delay` units and width cap `w` (in
/// multiples of `delay`). The last segment is truncated to fit the media.
pub fn skyscraper_broadcasting(
    media_len: u64,
    delay: u64,
    w: u64,
) -> Result<SegmentPlan, BroadcastError> {
    if media_len == 0 || delay == 0 || delay > media_len {
        return Err(BroadcastError::InvalidParameters {
            reason: "need 0 < delay <= media_len",
        });
    }
    if w == 0 {
        return Err(BroadcastError::InvalidParameters {
            reason: "width cap W must be positive",
        });
    }
    let mut segments = Vec::new();
    let mut covered = 0u64;
    let mut i = 0usize;
    while covered < media_len {
        i += 1;
        let unit_len = skyscraper_series(i, w)[i - 1];
        let full = unit_len * delay;
        let len = full.min(media_len - covered);
        // A truncated tail keeps its full series *period* (the channel idles
        // for the rest of each cycle): the receive-two property relies on
        // equal-size segments pairing up on aligned grids, which truncating
        // the period would break.
        segments.push(Segment {
            length: len,
            period: full,
            offset: 0,
        });
        covered += len;
    }
    SegmentPlan::new(segments)
}

/// Number of channels skyscraper needs for this geometry.
pub fn channels_for(media_len: u64, delay: u64, w: u64) -> Result<usize, BroadcastError> {
    Ok(skyscraper_broadcasting(media_len, delay, w)?.num_segments())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_all_phases;

    #[test]
    fn series_matches_hua_sheu() {
        assert_eq!(
            skyscraper_series(13, u64::MAX),
            vec![1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, 105, 105]
        );
    }

    #[test]
    fn width_cap_freezes_series() {
        assert_eq!(
            skyscraper_series(10, 12),
            vec![1, 2, 2, 5, 5, 12, 12, 12, 12, 12]
        );
        assert_eq!(skyscraper_series(5, 2), vec![1, 2, 2, 2, 2]);
    }

    #[test]
    fn receive_two_verifies_for_unrestricted_series() {
        // The design claim: skyscraper is feasible with exactly two loaders.
        // Media 1+2+2+5+5+12+12+25+25 = 89 units, 9 channels.
        let plan = skyscraper_broadcasting(89, 1, u64::MAX).unwrap();
        assert_eq!(plan.num_segments(), 9);
        let report = verify_all_phases(&plan, Some(2), 1_000_000).unwrap();
        assert_eq!(report.max_concurrent, 2);
        assert_eq!(report.bandwidth, (9, 1));
    }

    #[test]
    fn receive_two_verifies_with_width_cap() {
        for w in [2u64, 5, 12, 25] {
            let plan = skyscraper_broadcasting(120, 1, w).unwrap();
            verify_all_phases(&plan, Some(2), 1_000_000)
                .unwrap_or_else(|e| panic!("W={w} should verify receive-two: {e}"));
        }
    }

    #[test]
    fn width_cap_trades_channels_for_buffer() {
        let narrow = skyscraper_broadcasting(120, 1, 2).unwrap();
        let wide = skyscraper_broadcasting(120, 1, u64::MAX).unwrap();
        assert!(narrow.num_segments() > wide.num_segments());
        let narrow_report = verify_all_phases(&narrow, Some(2), 1_000_000).unwrap();
        let wide_report = verify_all_phases(&wide, Some(2), 1_000_000).unwrap();
        assert!(narrow_report.max_buffer <= wide_report.max_buffer);
    }

    #[test]
    fn scaled_delay_verifies() {
        let plan = skyscraper_broadcasting(200, 4, 12).unwrap();
        let report = verify_all_phases(&plan, Some(2), 1_000_000).unwrap();
        assert_eq!(report.worst_delay, 3);
    }

    #[test]
    fn truncated_tail_still_verifies() {
        // Media length that cuts the last segment mid-way.
        let plan = skyscraper_broadcasting(100, 1, u64::MAX).unwrap();
        assert_eq!(plan.media_len(), 100);
        verify_all_phases(&plan, Some(2), 1_000_000).unwrap();
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(skyscraper_broadcasting(0, 1, 52).is_err());
        assert!(skyscraper_broadcasting(10, 0, 52).is_err());
        assert!(skyscraper_broadcasting(10, 11, 52).is_err());
        assert!(skyscraper_broadcasting(10, 1, 0).is_err());
    }
}
