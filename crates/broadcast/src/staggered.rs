//! Staggered broadcasting — the classical batching baseline in broadcast
//! form (paper §1).
//!
//! The whole media is broadcast repeatedly, with a new start every `delay`
//! units. A client waits for the next start (at most `delay`), then receives
//! a single stream with no buffering at all. Server bandwidth is
//! `⌈L / delay⌉`-ish — exactly `L/delay` channels as a rational — which is
//! the `n·L` batching cost of Theorem 14 expressed per unit time. Stream
//! merging beats this by `Θ(L / log L)` (Theorem 14), which the
//! `sm-experiments` `broadcast` binary demonstrates side by side.

use crate::error::BroadcastError;
use crate::plan::{Segment, SegmentPlan};

/// Builds the staggered plan for a media of `media_len` units with a new
/// full stream every `delay` units.
///
/// Bandwidth is exactly `media_len / delay` channels; start-up delay is at
/// most `delay`; clients receive one channel and need no buffer.
pub fn staggered_broadcasting(media_len: u64, delay: u64) -> Result<SegmentPlan, BroadcastError> {
    if media_len == 0 {
        return Err(BroadcastError::InvalidParameters {
            reason: "media length must be positive",
        });
    }
    if delay == 0 || delay > media_len {
        return Err(BroadcastError::InvalidParameters {
            reason: "delay must lie in 1..=media_len",
        });
    }
    SegmentPlan::new(vec![Segment {
        length: media_len,
        period: delay,
        offset: 0,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_all_phases;

    #[test]
    fn bandwidth_is_media_over_delay() {
        let plan = staggered_broadcasting(120, 6).unwrap();
        assert_eq!(plan.bandwidth_exact(), (20, 1));
        let plan = staggered_broadcasting(120, 7).unwrap();
        assert_eq!(plan.bandwidth_exact(), (120, 7));
    }

    #[test]
    fn verifies_with_receive_one_and_zero_buffer() {
        for delay in [1u64, 2, 3, 5, 8, 15, 30] {
            let plan = staggered_broadcasting(30, delay).unwrap();
            let report = verify_all_phases(&plan, Some(1), 10_000).unwrap();
            assert_eq!(report.max_concurrent, 1, "delay {delay}");
            assert_eq!(report.max_buffer, 0, "delay {delay}");
            assert_eq!(report.worst_delay, delay - 1, "delay {delay}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(staggered_broadcasting(0, 1).is_err());
        assert!(staggered_broadcasting(10, 0).is_err());
        assert!(staggered_broadcasting(10, 11).is_err());
        assert!(staggered_broadcasting(10, 10).is_ok());
    }
}
