//! Slot-exact verification of periodic broadcast plans.
//!
//! For a client arriving at time `a`:
//!
//! 1. playback starts at `s₀`, the next broadcast instance of segment 0 at
//!    or after `a` — the start-up delay is `s₀ − a`;
//! 2. playback of segment `i` begins at the deadline `d_i = s₀ + Σ_{j<i} ℓ_j`;
//! 3. the client receives segment `i` from the **latest** instance starting
//!    at or before `d_i`. Channels run at the playback rate, so an instance
//!    starting at `t ≤ d_i` delivers every byte of the segment no later than
//!    playback consumes it. If that instance started before `a`, no feasible
//!    reception exists and the plan is infeasible for this arrival phase.
//!
//! Latest-fit reception is the canonical client program of the pyramid
//! family: it minimizes the client buffer among all feasible programs
//! (receiving earlier only holds data longer) and reproduces the published
//! receiving rules of skyscraper and fast broadcasting.
//!
//! Because all instance grids are integral, a client arriving at non-integer
//! time `a ∈ (k, k+1)` sees exactly the instance choices of a client arriving
//! at `k+1`; verifying every integer phase of one hyperperiod therefore
//! verifies every real arrival time, and the worst-case *continuous*
//! start-up delay is strictly less than `worst_delay + 1 ≤` segment 0's
//! period.

use crate::error::BroadcastError;
use crate::plan::SegmentPlan;

/// The verified schedule of one client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOutcome {
    /// Arrival (tune-in) time.
    pub arrival: u64,
    /// Playback start `s₀` (the next segment-0 instance).
    pub playback_start: u64,
    /// Start-up delay `s₀ − arrival`.
    pub delay: u64,
    /// Per segment, the reception window `[start, end)`.
    pub receive_windows: Vec<(u64, u64)>,
    /// Maximum number of simultaneously received channels.
    pub max_concurrent: usize,
    /// Maximum buffered data, in units (received but not yet played).
    pub max_buffer: u64,
}

/// Aggregate report over every arrival phase of one hyperperiod.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// The hyperperiod that was swept.
    pub hyperperiod: u64,
    /// Worst start-up delay over integer arrival phases. The supremum over
    /// continuous arrivals is `< worst_delay + 1`.
    pub worst_delay: u64,
    /// Worst-case number of simultaneously received channels (the paper's
    /// receive-two model corresponds to a cap of 2).
    pub max_concurrent: usize,
    /// Worst-case client buffer, in units.
    pub max_buffer: u64,
    /// Exact server bandwidth in channels, as a reduced fraction.
    pub bandwidth: (u64, u64),
}

/// Computes the latest-fit reception schedule for a client arriving at
/// `arrival`, without enforcing any receive cap.
pub fn client_schedule(plan: &SegmentPlan, arrival: u64) -> Result<ClientOutcome, BroadcastError> {
    let segments = plan.segments();
    let playback_start = segments[0].earliest_start_at_or_after(arrival);
    let prefix = plan.prefix_lengths();

    let mut windows = Vec::with_capacity(segments.len());
    for (i, seg) in segments.iter().enumerate() {
        let deadline = playback_start + prefix[i];
        let start = seg
            .latest_start_at_or_before(deadline)
            .filter(|&t| t >= arrival)
            .ok_or(BroadcastError::MissedDeadline {
                arrival,
                segment: i,
                deadline,
            })?;
        windows.push((start, start + seg.length));
    }

    let max_concurrent = max_overlap(&windows);
    let max_buffer = max_buffer(&windows, &prefix, playback_start, segments);

    Ok(ClientOutcome {
        arrival,
        playback_start,
        delay: playback_start - arrival,
        receive_windows: windows,
        max_concurrent,
        max_buffer,
    })
}

/// Maximum number of windows covering any instant (half-open intervals).
fn max_overlap(windows: &[(u64, u64)]) -> usize {
    let mut events: Vec<(u64, i32)> = Vec::with_capacity(windows.len() * 2);
    for &(s, e) in windows {
        events.push((s, 1));
        events.push((e, -1));
    }
    // Ends sort before starts at the same instant: [a,b) and [b,c) do not
    // overlap.
    events.sort_by_key(|&(t, d)| (t, d));
    let (mut cur, mut best) = (0i32, 0i32);
    for (_, d) in events {
        cur += d;
        best = best.max(cur);
    }
    best as usize
}

/// Maximum buffered data over time. `buffer(t) = Σ_i recv_i(t) − played_i(t)`
/// is piecewise linear with breakpoints at window/playback edges, so the
/// maximum is attained at a breakpoint.
fn max_buffer(
    windows: &[(u64, u64)],
    prefix: &[u64],
    playback_start: u64,
    segments: &[crate::plan::Segment],
) -> u64 {
    let mut breakpoints: Vec<u64> = Vec::with_capacity(windows.len() * 4);
    for (i, &(ws, we)) in windows.iter().enumerate() {
        let d = playback_start + prefix[i];
        breakpoints.extend([ws, we, d, d + segments[i].length]);
    }
    breakpoints.sort_unstable();
    breakpoints.dedup();

    let mut best = 0u64;
    for &t in &breakpoints {
        let mut buf = 0u64;
        for (i, &(ws, _)) in windows.iter().enumerate() {
            let len = segments[i].length;
            let recv = t.saturating_sub(ws).min(len);
            let d = playback_start + prefix[i];
            let played = t.saturating_sub(d).min(len);
            buf += recv - played; // recv ≥ played because ws ≤ d
        }
        best = best.max(buf);
    }
    best
}

/// Exact *analytic* deadline feasibility for every arrival phase — including
/// plans whose hyperperiod is astronomically large.
///
/// The binding case is a client arriving exactly at a segment-0 instance
/// (`a = s₀`): segment `i` is feasible iff some instance starts inside
/// `[s₀, s₀ + prefix_i]`. Instance starts of segment `i` lie on
/// `offset_i + period_i·ℤ` and `s₀` ranges over `offset_0 + period_0·ℤ`, so
/// `(s₀ + prefix_i − offset_i) mod period_i` ranges over the residues
/// congruent to `(offset_0 + prefix_i − offset_i) mod g` modulo
/// `g = gcd(period_0, period_i)`. The worst such residue is
/// `period_i − g + ((offset_0 + prefix_i − offset_i) mod g)`, and the plan
/// is feasible iff that worst residue is at most `prefix_i`, for every
/// segment. This is exact (the sweep-based [`verify_all_phases`] agrees
/// wherever it is tractable — a property the integration tests check) and
/// costs `O(K)`.
pub fn check_deadlines(plan: &SegmentPlan) -> Result<(), BroadcastError> {
    let segments = plan.segments();
    let prefix = plan.prefix_lengths();
    let p0 = segments[0].period;
    let off0 = segments[0].offset;
    for (i, seg) in segments.iter().enumerate().skip(1) {
        let g = crate::plan::gcd(p0, seg.period);
        // (offset_0 + prefix_i − offset_i) mod g, computed without underflow.
        let shift = (off0 + prefix[i] + seg.period - (seg.offset % seg.period)) % g;
        let worst_residue = seg.period - g + shift;
        if worst_residue > prefix[i] {
            return Err(BroadcastError::MissedDeadline {
                arrival: 0,
                segment: i,
                deadline: prefix[i],
            });
        }
    }
    Ok(())
}

/// Verifies a plan for **every** integer arrival phase in one hyperperiod,
/// optionally enforcing a receive cap (2 = the paper's receive-two model).
///
/// `limit` bounds the hyperperiod the sweep will attempt (use e.g. `10_000`
/// for the schemes in this crate; they all stay far below). For plans with
/// intractable hyperperiods use [`check_deadlines`] (exact feasibility) or
/// [`verify_sampled`] (exact feasibility + metrics over a sampled prefix).
pub fn verify_all_phases(
    plan: &SegmentPlan,
    cap: Option<usize>,
    limit: u64,
) -> Result<PlanReport, BroadcastError> {
    let hyperperiod = plan.hyperperiod(limit)?;
    let mut worst_delay = 0u64;
    let mut max_concurrent = 0usize;
    let mut max_buf = 0u64;
    for arrival in 0..hyperperiod {
        let outcome = client_schedule(plan, arrival)?;
        if let Some(cap) = cap {
            if outcome.max_concurrent > cap {
                // Locate an instant where the cap is exceeded, for the report.
                let time = outcome
                    .receive_windows
                    .iter()
                    .map(|&(s, _)| s)
                    .max()
                    .unwrap_or(arrival);
                return Err(BroadcastError::ExceedsReceiveCap {
                    arrival,
                    time,
                    concurrent: outcome.max_concurrent,
                    cap,
                });
            }
        }
        worst_delay = worst_delay.max(outcome.delay);
        max_concurrent = max_concurrent.max(outcome.max_concurrent);
        max_buf = max_buf.max(outcome.max_buffer);
    }
    Ok(PlanReport {
        hyperperiod,
        worst_delay,
        max_concurrent,
        max_buffer: max_buf,
        bandwidth: plan.bandwidth_exact(),
    })
}

/// Like [`verify_all_phases`], but usable on plans with intractable
/// hyperperiods: feasibility is established exactly by [`check_deadlines`],
/// and the delay/concurrency/buffer metrics are measured over the first
/// `sample` arrival phases (the worst *delay* is still exact whenever
/// `sample ≥ period_0`, since the delay cycle has period `period_0`).
pub fn verify_sampled(
    plan: &SegmentPlan,
    cap: Option<usize>,
    sample: u64,
) -> Result<PlanReport, BroadcastError> {
    check_deadlines(plan)?;
    let hyperperiod = plan
        .hyperperiod(u64::MAX)
        .unwrap_or(u64::MAX)
        .min(sample.max(plan.delay_bound()));
    let mut worst_delay = 0u64;
    let mut max_concurrent = 0usize;
    let mut max_buf = 0u64;
    for arrival in 0..hyperperiod {
        let outcome = client_schedule(plan, arrival)?;
        if let Some(cap) = cap {
            if outcome.max_concurrent > cap {
                return Err(BroadcastError::ExceedsReceiveCap {
                    arrival,
                    time: outcome.playback_start,
                    concurrent: outcome.max_concurrent,
                    cap,
                });
            }
        }
        worst_delay = worst_delay.max(outcome.delay);
        max_concurrent = max_concurrent.max(outcome.max_concurrent);
        max_buf = max_buf.max(outcome.max_buffer);
    }
    Ok(PlanReport {
        hyperperiod,
        worst_delay,
        max_concurrent,
        max_buffer: max_buf,
        bandwidth: plan.bandwidth_exact(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Segment;

    /// Fast-broadcasting shape: segments 1, 2, 4 back-to-back.
    fn fast3() -> SegmentPlan {
        SegmentPlan::new(vec![
            Segment::back_to_back(1),
            Segment::back_to_back(2),
            Segment::back_to_back(4),
        ])
        .unwrap()
    }

    #[test]
    fn client_at_instance_start_has_zero_delay() {
        let plan = fast3();
        let c = client_schedule(&plan, 0).unwrap();
        assert_eq!(c.delay, 0);
        assert_eq!(c.playback_start, 0);
    }

    #[test]
    fn delay_is_time_to_next_segment0_instance() {
        let plan =
            SegmentPlan::new(vec![Segment::back_to_back(3), Segment::back_to_back(6)]).unwrap();
        let c = client_schedule(&plan, 1).unwrap();
        assert_eq!(c.playback_start, 3);
        assert_eq!(c.delay, 2);
    }

    #[test]
    fn latest_fit_windows_meet_deadlines() {
        let plan = fast3();
        for a in 0..plan.hyperperiod(1000).unwrap() {
            let c = client_schedule(&plan, a).unwrap();
            let prefix = plan.prefix_lengths();
            for (i, &(ws, we)) in c.receive_windows.iter().enumerate() {
                let deadline = c.playback_start + prefix[i];
                assert!(ws >= a, "window starts before arrival");
                assert!(ws <= deadline, "window starts after playback deadline");
                assert_eq!(we - ws, plan.segments()[i].length);
            }
        }
    }

    #[test]
    fn fast3_verifies_with_receive_all() {
        let report = verify_all_phases(&fast3(), None, 1000).unwrap();
        assert_eq!(report.hyperperiod, 4);
        // Worst integer-phase delay for a period-1 first segment is 0.
        assert_eq!(report.worst_delay, 0);
        assert_eq!(report.bandwidth, (3, 1));
        assert!(report.max_concurrent <= 3);
    }

    #[test]
    fn infeasible_plan_is_rejected() {
        // Second segment is far too long for its position: its only on-time
        // instance starts before the client arrives at phase 1.
        let plan =
            SegmentPlan::new(vec![Segment::back_to_back(1), Segment::back_to_back(10)]).unwrap();
        // At arrival 1: s0 = 1, deadline for segment 1 is 2; latest instance
        // of period 10 at/before 2 starts at 0 < arrival.
        let err = client_schedule(&plan, 1).unwrap_err();
        assert_eq!(
            err,
            BroadcastError::MissedDeadline {
                arrival: 1,
                segment: 1,
                deadline: 2,
            }
        );
    }

    #[test]
    fn receive_cap_is_enforced() {
        let plan = fast3();
        // Receive-all needs up to 3 channels; cap 2 must fail somewhere.
        let err = verify_all_phases(&plan, Some(2), 1000).unwrap_err();
        match err {
            BroadcastError::ExceedsReceiveCap { cap: 2, .. } => {}
            other => panic!("expected cap violation, got {other:?}"),
        }
        // Receive-all (cap = #segments) always passes.
        verify_all_phases(&plan, Some(3), 1000).unwrap();
    }

    #[test]
    fn overlap_counts_half_open_intervals() {
        assert_eq!(max_overlap(&[(0, 2), (2, 4)]), 1);
        assert_eq!(max_overlap(&[(0, 3), (1, 2), (1, 4)]), 3);
        assert_eq!(max_overlap(&[]), 0);
    }

    #[test]
    fn buffer_is_zero_for_pure_streaming() {
        // One segment received exactly as played: no buffering.
        let plan = SegmentPlan::new(vec![Segment::back_to_back(5)]).unwrap();
        let c = client_schedule(&plan, 0).unwrap();
        assert_eq!(c.max_buffer, 0);
    }

    #[test]
    fn buffer_accounts_for_early_reception() {
        // Segment 1 (length 2, period 2): a client with playback_start = 0
        // has deadline 1 for segment 1, latest instance at 0 — it receives
        // units of segment 1 a full unit ahead of playback.
        let plan =
            SegmentPlan::new(vec![Segment::back_to_back(1), Segment::back_to_back(2)]).unwrap();
        let c = client_schedule(&plan, 0).unwrap();
        assert_eq!(c.receive_windows[1], (0, 2));
        assert!(c.max_buffer >= 1);
    }

    #[test]
    fn analytic_check_agrees_with_sweep() {
        // Over many small plans, `check_deadlines` and the exhaustive sweep
        // must agree exactly on feasibility.
        let mut agree = 0;
        for a in 1..=6u64 {
            for b in 1..=8u64 {
                for c in 1..=10u64 {
                    let plan = SegmentPlan::new(vec![
                        Segment::back_to_back(a),
                        Segment::back_to_back(b),
                        Segment::back_to_back(c),
                    ])
                    .unwrap();
                    let analytic = check_deadlines(&plan).is_ok();
                    let swept = verify_all_phases(&plan, None, 1_000_000).is_ok();
                    assert_eq!(analytic, swept, "lengths ({a},{b},{c})");
                    agree += 1;
                }
            }
        }
        assert_eq!(agree, 6 * 8 * 10);
    }

    #[test]
    fn analytic_check_handles_offsets() {
        // Offset grids shift the worst residue; compare against the sweep.
        for off in 0..4u64 {
            let plan = SegmentPlan::new(vec![
                Segment::back_to_back(2),
                Segment {
                    length: 5,
                    period: 5,
                    offset: off.min(4),
                },
            ])
            .unwrap();
            let analytic = check_deadlines(&plan).is_ok();
            let swept = verify_all_phases(&plan, None, 1_000_000).is_ok();
            assert_eq!(analytic, swept, "offset {off}");
        }
    }

    #[test]
    fn sampled_verification_matches_full_sweep_on_tractable_plans() {
        let plan = fast3();
        let full = verify_all_phases(&plan, None, 1_000_000).unwrap();
        let sampled = verify_sampled(&plan, None, 1_000).unwrap();
        assert_eq!(full.worst_delay, sampled.worst_delay);
        assert_eq!(full.max_concurrent, sampled.max_concurrent);
        assert_eq!(full.max_buffer, sampled.max_buffer);
    }

    #[test]
    fn sampled_verification_rejects_infeasible_plans_analytically() {
        let plan =
            SegmentPlan::new(vec![Segment::back_to_back(1), Segment::back_to_back(10)]).unwrap();
        assert!(verify_sampled(&plan, None, 100).is_err());
    }

    #[test]
    fn staggered_shape_single_window() {
        // Whole media of 12 repeated every 3 units (staggered, 4 channels):
        // every client receives exactly one instance, buffer 0.
        let plan = SegmentPlan::new(vec![Segment {
            length: 12,
            period: 3,
            offset: 0,
        }])
        .unwrap();
        let report = verify_all_phases(&plan, Some(1), 1000).unwrap();
        assert_eq!(report.max_concurrent, 1);
        assert_eq!(report.max_buffer, 0);
        assert_eq!(report.worst_delay, 2);
        assert_eq!(report.bandwidth, (4, 1));
    }
}
