//! Cross-scheme bandwidth/delay tradeoff — the static-allocation side of the
//! paper's Fig. 1 axis.
//!
//! For a media of `L` units and a guaranteed delay of 1 unit (the paper's
//! normalization), every static scheme pays a *constant* number of channels
//! forever, while stream merging pays per arrival. [`static_tradeoff`]
//! tabulates the constant side: channels, verified worst delay, receive cap
//! and client buffer per scheme. The `sm-experiments` `broadcast` binary
//! joins these rows with the delay-guaranteed stream-merging bandwidth to
//! reproduce the paper's "static vs dynamic" framing quantitatively.

use crate::error::BroadcastError;
use crate::fast::fast_broadcasting;
use crate::harmonic::HarmonicPlan;
use crate::pyramid::pyramid_broadcasting;
use crate::skyscraper::skyscraper_broadcasting;
use crate::staggered::staggered_broadcasting;
use crate::verify::{verify_all_phases, verify_sampled};

/// One scheme's verified cost for a given geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeRow {
    /// Scheme name (static str for table headers).
    pub scheme: &'static str,
    /// Server bandwidth in channels (exact for whole-channel schemes,
    /// `H_K` for harmonic).
    pub channels: f64,
    /// Verified worst start-up delay over integer arrival phases, in units.
    pub worst_delay: u64,
    /// Verified maximum number of concurrently received channels.
    pub max_concurrent: usize,
    /// Verified maximum client buffer, in units.
    pub max_buffer: u64,
}

/// Verification sweep bound used by [`static_tradeoff`].
const HYPERPERIOD_LIMIT: u64 = 1_000_000;

/// Tabulates every static scheme for a media of `media_len` units with a
/// guaranteed delay of `delay` units. `delay` must divide `media_len` (the
/// harmonic segment grid needs it).
///
/// Every row is produced by actually *verifying* the plan — the numbers are
/// measured from the slot-exact client schedules, not quoted from formulas
/// (the tests check they agree with the published formulas).
pub fn static_tradeoff(media_len: u64, delay: u64) -> Result<Vec<SchemeRow>, BroadcastError> {
    if media_len == 0 || delay == 0 || !media_len.is_multiple_of(delay) {
        return Err(BroadcastError::InvalidParameters {
            reason: "delay must divide media_len",
        });
    }

    let mut rows = Vec::with_capacity(5);

    let staggered = staggered_broadcasting(media_len, delay)?;
    let report = verify_all_phases(&staggered, Some(1), HYPERPERIOD_LIMIT)?;
    rows.push(SchemeRow {
        scheme: "staggered",
        channels: staggered.bandwidth(),
        worst_delay: report.worst_delay,
        max_concurrent: report.max_concurrent,
        max_buffer: report.max_buffer,
    });

    // Pyramid segment lengths are near-coprime, so the hyperperiod explodes;
    // feasibility is checked analytically and metrics sampled (see
    // `verify_sampled`).
    let pyramid = pyramid_broadcasting(media_len, delay, 1.5)?;
    let report = verify_sampled(&pyramid, None, 20_000)?;
    rows.push(SchemeRow {
        scheme: "pyramid(1.5)",
        channels: pyramid.bandwidth(),
        worst_delay: report.worst_delay,
        max_concurrent: report.max_concurrent,
        max_buffer: report.max_buffer,
    });

    let skyscraper = skyscraper_broadcasting(media_len, delay, 52)?;
    let report = verify_all_phases(&skyscraper, Some(2), HYPERPERIOD_LIMIT)?;
    rows.push(SchemeRow {
        scheme: "skyscraper(W=52)",
        channels: skyscraper.bandwidth(),
        worst_delay: report.worst_delay,
        max_concurrent: report.max_concurrent,
        max_buffer: report.max_buffer,
    });

    let k = crate::fast::channels_for(media_len, delay);
    let fast = fast_broadcasting(k, delay)?;
    let report = verify_all_phases(&fast, None, HYPERPERIOD_LIMIT)?;
    rows.push(SchemeRow {
        scheme: "fast",
        channels: fast.bandwidth(),
        worst_delay: report.worst_delay,
        max_concurrent: report.max_concurrent,
        max_buffer: report.max_buffer,
    });

    let segments =
        u32::try_from(media_len / delay).map_err(|_| BroadcastError::InvalidParameters {
            reason: "media_len / delay exceeds u32::MAX harmonic segments",
        })?;
    let harmonic = HarmonicPlan::new(media_len, segments)?;
    harmonic.verify_delayed()?;
    rows.push(SchemeRow {
        scheme: "harmonic(delayed)",
        channels: harmonic.bandwidth(),
        worst_delay: harmonic.delay(),
        max_concurrent: harmonic.num_segments as usize,
        max_buffer: harmonic.max_buffer().ceil() as u64,
    });

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_rows_cover_all_schemes() {
        let rows = static_tradeoff(100, 1).unwrap();
        let names: Vec<&str> = rows.iter().map(|r| r.scheme).collect();
        assert_eq!(
            names,
            vec![
                "staggered",
                "pyramid(1.5)",
                "skyscraper(W=52)",
                "fast",
                "harmonic(delayed)"
            ]
        );
    }

    #[test]
    fn channel_ordering_matches_the_literature() {
        // For delay = 1% of the media: staggered ≫ pyramid > skyscraper ≥
        // fast > harmonic.
        let rows = static_tradeoff(100, 1).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.scheme == n).unwrap().channels;
        assert_eq!(by_name("staggered"), 100.0);
        assert!(by_name("pyramid(1.5)") > by_name("fast"));
        assert!(by_name("skyscraper(W=52)") >= by_name("fast"));
        assert!(by_name("fast") > by_name("harmonic(delayed)"));
        // Fast broadcasting: ⌈log₂(101)⌉ = 7 channels.
        assert_eq!(by_name("fast"), 7.0);
        // Harmonic: H_100 ≈ 5.19.
        assert!((by_name("harmonic(delayed)") - 5.187).abs() < 0.01);
    }

    #[test]
    fn every_scheme_honors_the_delay() {
        for (l, d) in [(60u64, 1u64), (60, 2), (120, 4)] {
            for row in static_tradeoff(l, d).unwrap() {
                assert!(
                    row.worst_delay <= d,
                    "{} delay {} exceeds {d}",
                    row.scheme,
                    row.worst_delay
                );
            }
        }
    }

    #[test]
    fn buffer_is_largest_for_receive_all_schemes() {
        let rows = static_tradeoff(100, 1).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.scheme == n).unwrap().max_buffer;
        assert_eq!(by_name("staggered"), 0);
        assert!(by_name("fast") > by_name("skyscraper(W=52)") / 4);
        assert!(by_name("harmonic(delayed)") > 0);
    }

    #[test]
    fn rejects_nondivisible_delay() {
        assert!(static_tradeoff(100, 3).is_err());
        assert!(static_tradeoff(0, 1).is_err());
    }
}
