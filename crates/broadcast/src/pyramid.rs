//! Pyramid broadcasting (Viswanathan–Imielinski \[38\], cited in paper §1) in
//! the unit-rate channel model.
//!
//! The original pyramid scheme cuts the media into segments growing
//! geometrically by a factor α and broadcasts segment `i` cyclically on
//! channel `i`. Viswanathan–Imielinski ran channels *faster* than the
//! playback rate (α ≈ 2.5 with rate-β channels); later work (including the
//! skyscraper and fast-broadcasting papers this crate also implements)
//! standardized on playback-rate channels, which caps the sustainable growth
//! factor at α ≤ 2-ish: segment `i` can be caught in time iff its length is
//! at most one unit more than everything before it
//! (`ℓ_i ≤ 1 + Σ_{j<i} ℓ_j`), and a strict geometric progression saturating
//! that bound is exactly the doubling of fast broadcasting.
//!
//! This module implements the parametric unit-rate pyramid: segment lengths
//! `ℓ_0 = delay`, `ℓ_i = ⌊α·ℓ_{i−1}⌋` (the last segment truncated to fit the
//! media), receive-all clients. [`max_feasible_alpha`] locates the largest
//! sustainable α for a given geometry by binary search over the verifier —
//! it converges to 2 from above as the media grows, quantifying *why* the
//! doubling series is the canonical choice.

use crate::error::BroadcastError;
use crate::plan::{Segment, SegmentPlan};
use crate::verify::check_deadlines;

/// Builds the unit-rate pyramid plan for a media of `media_len` units, first
/// segment (= guaranteed delay) of `delay` units, geometric factor `alpha`.
///
/// Segment lengths follow the *unit* progression `u_0 = 1`,
/// `u_{i+1} = ⌊α·u_i⌋` scaled by `delay` — the published schemes size
/// segments in multiples of the first segment, which keeps every broadcast
/// grid aligned to the delay grid (a co-prime period would break deadlines
/// for some phases). The last segment is truncated to fit the media but
/// keeps its full grid period (the channel idles for the remainder of each
/// cycle). The plan is *constructed* for any `alpha > 1`; whether it is
/// *feasible* (every client phase meets every deadline) is decided by
/// [`check_deadlines`] / [`verify_all_phases`](crate::verify::verify_all_phases)
/// — large α over long media will fail verification.
pub fn pyramid_broadcasting(
    media_len: u64,
    delay: u64,
    alpha: f64,
) -> Result<SegmentPlan, BroadcastError> {
    if media_len == 0 || delay == 0 || delay > media_len {
        return Err(BroadcastError::InvalidParameters {
            reason: "need 0 < delay <= media_len",
        });
    }
    if alpha.is_nan() || alpha <= 1.0 || alpha > 16.0 {
        return Err(BroadcastError::InvalidParameters {
            reason: "alpha must lie in (1, 16]",
        });
    }
    let mut segments = Vec::new();
    let mut covered = 0u64;
    let mut unit = 1u64;
    while covered < media_len {
        let full = unit * delay;
        let take = full.min(media_len - covered);
        segments.push(Segment {
            length: take,
            period: full,
            offset: 0,
        });
        covered += take;
        // Next geometric unit length; floor can stall at small lengths, so
        // force strict progress.
        let next = (unit as f64 * alpha).floor() as u64;
        unit = next.max(unit + 1);
    }
    SegmentPlan::new(segments)
}

/// Number of channels the pyramid with factor `alpha` uses for this
/// geometry.
pub fn channels_for(media_len: u64, delay: u64, alpha: f64) -> Result<usize, BroadcastError> {
    Ok(pyramid_broadcasting(media_len, delay, alpha)?.num_segments())
}

/// Largest geometric factor α (to within `tol`) whose pyramid plan verifies
/// for every arrival phase in the receive-all model, found by binary search
/// on `(1, 4]`.
///
/// Feasibility is decided by the exact analytic check
/// ([`check_deadlines`], which covers plans whose hyperperiod is far too
/// large to sweep), so the result accounts for integer-rounding slack —
/// e.g. short media tolerate α > 2 while long media converge to 2.
pub fn max_feasible_alpha(media_len: u64, delay: u64, tol: f64) -> f64 {
    assert!(tol > 0.0);
    let feasible = |alpha: f64| -> bool {
        pyramid_broadcasting(media_len, delay, alpha)
            .map(|plan| check_deadlines(&plan).is_ok())
            .unwrap_or(false)
    };
    let (mut lo, mut hi) = (1.0 + tol, 4.0);
    if !feasible(lo) {
        return 1.0; // degenerate geometry
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_two_reproduces_fast_broadcasting() {
        let plan = pyramid_broadcasting(15, 1, 2.0).unwrap();
        let lens: Vec<u64> = plan.segments().iter().map(|s| s.length).collect();
        assert_eq!(lens, vec![1, 2, 4, 8]);
    }

    #[test]
    fn last_segment_truncated_to_media() {
        let plan = pyramid_broadcasting(12, 1, 2.0).unwrap();
        let lens: Vec<u64> = plan.segments().iter().map(|s| s.length).collect();
        assert_eq!(lens, vec![1, 2, 4, 5]);
        assert_eq!(plan.media_len(), 12);
    }

    #[test]
    fn gentle_alpha_verifies() {
        for &alpha in &[1.3, 1.5, 1.8, 2.0] {
            let plan = pyramid_broadcasting(100, 1, alpha).unwrap();
            check_deadlines(&plan).unwrap_or_else(|e| panic!("alpha {alpha} should verify: {e}"));
        }
    }

    #[test]
    fn aggressive_alpha_fails_on_long_media() {
        // α = 2.6 over a long media must eventually miss a deadline.
        let plan = pyramid_broadcasting(500, 1, 2.6).unwrap();
        assert!(check_deadlines(&plan).is_err());
    }

    #[test]
    fn smaller_alpha_needs_more_channels() {
        let k_15 = channels_for(400, 1, 1.5).unwrap();
        let k_20 = channels_for(400, 1, 2.0).unwrap();
        assert!(k_15 > k_20);
    }

    #[test]
    fn max_feasible_alpha_brackets_two() {
        // Short media: rounding slack admits α above 2 (ℓ_2 ≤ 1+prefix).
        let a_short = max_feasible_alpha(15, 1, 0.01);
        assert!(a_short >= 2.0, "short media: {a_short}");
        // Longer media: the bound tightens towards 2.
        let a_long = max_feasible_alpha(500, 1, 0.01);
        assert!(
            a_long >= 1.9 && a_long < a_short + 0.01,
            "long media: {a_long}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(pyramid_broadcasting(0, 1, 1.5).is_err());
        assert!(pyramid_broadcasting(10, 0, 1.5).is_err());
        assert!(pyramid_broadcasting(10, 11, 1.5).is_err());
        assert!(pyramid_broadcasting(10, 1, 1.0).is_err());
        assert!(pyramid_broadcasting(10, 1, 17.0).is_err());
    }
}
