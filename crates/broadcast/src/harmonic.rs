//! Harmonic broadcasting (Juhn–Tseng \[25\], cited in paper §1) in its exact
//! fluid model.
//!
//! The media is cut into `K` equal segments of `ℓ = L/K` units; channel `i`
//! (1-based) carries segment `i` at rate `1/i` of the playback rate, cycling
//! through `i` equal slices of the segment (one slice per `ℓ` of wall time).
//! Total server bandwidth is the harmonic number `H_K = Σ 1/i` — the least
//! bandwidth of any static scheme for a given delay, which is why harmonic
//! is the canonical lower-bound baseline.
//!
//! Two variants are modeled:
//!
//! * **Delayed (cautious) harmonic** — the client receives all channels from
//!   its arrival and waits one full segment slot (`ℓ` units, the guaranteed
//!   delay) before starting playback. [`HarmonicPlan::verify_delayed`]
//!   proves slice-exactly that every slice arrives by its playback deadline,
//!   for every channel phase.
//! * **Undelayed harmonic as originally published** — playback starts as
//!   soon as the first segment is buffered. This version is *broken* (as
//!   discovered by Pâris–Carter–Long when designing cautious harmonic
//!   broadcasting): [`HarmonicPlan::undelayed_violation`] exhibits a
//!   concrete (channel, phase, slice) witness, which the tests pin down.
//!
//! Because channel rates are fractional, these checks use slice-granular
//! integer arithmetic rather than the whole-segment instance verifier in
//! [`crate::verify`].

use crate::error::BroadcastError;

/// A harmonic broadcasting plan: `K` equal segments of `segment_len` units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarmonicPlan {
    /// Number of segments / channels, `K ≥ 1`.
    pub num_segments: u32,
    /// Segment length `ℓ` in units — also the guaranteed start-up delay of
    /// the delayed variant.
    pub segment_len: u64,
}

/// The `K`-th harmonic number `H_K = Σ_{i=1..K} 1/i` — the server bandwidth
/// of harmonic broadcasting, in channels.
pub fn harmonic_bandwidth(k: u32) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

impl HarmonicPlan {
    /// Builds the plan for a media of `media_len` units with `num_segments`
    /// segments; `num_segments` must divide `media_len` exactly.
    pub fn new(media_len: u64, num_segments: u32) -> Result<Self, BroadcastError> {
        if media_len == 0 || num_segments == 0 {
            return Err(BroadcastError::InvalidParameters {
                reason: "need positive media length and segment count",
            });
        }
        if !media_len.is_multiple_of(num_segments as u64) {
            return Err(BroadcastError::InvalidParameters {
                reason: "segment count must divide the media length",
            });
        }
        Ok(Self {
            num_segments,
            segment_len: media_len / num_segments as u64,
        })
    }

    /// Total media length in units.
    pub fn media_len(&self) -> u64 {
        self.segment_len * self.num_segments as u64
    }

    /// Guaranteed start-up delay of the delayed variant: one segment slot.
    pub fn delay(&self) -> u64 {
        self.segment_len
    }

    /// Server bandwidth `H_K` in channels.
    pub fn bandwidth(&self) -> f64 {
        harmonic_bandwidth(self.num_segments)
    }

    /// Verifies the delayed variant slice-exactly.
    ///
    /// Channel `i` delivers one slice (of `i` per segment) every `ℓ` wall
    /// units; a client tuning in at slice phase `p ∈ 0..i` has slice `s`
    /// fully received `((s − p) mod i + 1)·ℓ` after arrival, and plays it at
    /// `(i + s/i)·ℓ` after arrival (one-slot wait + `i−1` earlier segments +
    /// `s/i` of segment `i`). The check `((s−p) mod i + 1)·i ≤ i² + s` is
    /// exact in integers and must hold for every `(i, p, s)`.
    pub fn verify_delayed(&self) -> Result<(), BroadcastError> {
        for i in 1..=self.num_segments as u64 {
            for p in 0..i {
                for s in 0..i {
                    let rounds = (s + i - p) % i + 1;
                    if rounds * i > i * i + s {
                        return Err(BroadcastError::MissedDeadline {
                            arrival: p,
                            segment: i as usize,
                            deadline: i * i + s,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Finds a deadline violation of the *undelayed* (as-published) variant:
    /// without the one-slot wait the deadline of slice `s` on channel `i`
    /// tightens to `(i − 1 + s/i)·ℓ` after arrival, and the check becomes
    /// `((s−p) mod i + 1)·i ≤ (i−1)·i + s`, which fails. Returns the first
    /// `(channel, phase, slice)` witness, or `None` for plans with a single
    /// segment (which trivially work).
    ///
    /// Channel 1 is exempt: it carries its single slice in playback order at
    /// the playback rate, so the client can stream it live — the breakage
    /// Pâris–Carter–Long identified starts at channel 2.
    pub fn undelayed_violation(&self) -> Option<(u32, u32, u32)> {
        for i in 2..=self.num_segments as u64 {
            for p in 0..i {
                for s in 0..i {
                    let rounds = (s + i - p) % i + 1;
                    if rounds * i > (i - 1) * i + s {
                        // sm-lint: allow(narrowing-cast) — i ≤ num_segments (a u32 widened above) and p, s < i
                        return Some((i as u32, p as u32, s as u32));
                    }
                }
            }
        }
        None
    }

    /// Worst-case client buffer of the delayed variant, in units, computed
    /// on the fluid model at slot granularity: buffered(t) = Σ_i
    /// (received_i(t) − played_i(t)) evaluated at every slot boundary of the
    /// longest cycle.
    pub fn max_buffer(&self) -> f64 {
        let k = self.num_segments as u64;
        let l = self.segment_len as f64;
        // Receiving starts at 0, playback of segment i (1-based) spans
        // [(i)·ℓ, (i+1)·ℓ) after arrival (one-slot wait). Channel i has
        // delivered min(ℓ, t/i) by time t.
        let horizon = (k + 1) * self.segment_len;
        let mut best = 0.0f64;
        for t_slot in 0..=horizon {
            let t = t_slot as f64;
            let mut buf = 0.0;
            for i in 1..=k {
                let recv = (t / i as f64).min(l);
                let play_start = i as f64 * l;
                let played = (t - play_start).clamp(0.0, l);
                buf += recv - played.min(recv);
            }
            best = best.max(buf);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_harmonic_number() {
        assert!((harmonic_bandwidth(1) - 1.0).abs() < 1e-12);
        assert!((harmonic_bandwidth(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H_100 ≈ 5.187…
        assert!((harmonic_bandwidth(100) - 5.187_377_517_639_621).abs() < 1e-9);
    }

    #[test]
    fn delayed_variant_verifies_for_all_sizes() {
        for k in 1..=64u32 {
            let plan = HarmonicPlan::new(64 * k as u64, k).unwrap();
            plan.verify_delayed()
                .unwrap_or_else(|e| panic!("K={k} should verify: {e}"));
        }
    }

    #[test]
    fn undelayed_variant_is_broken_beyond_one_segment() {
        let plan = HarmonicPlan::new(100, 1).unwrap();
        assert_eq!(plan.undelayed_violation(), None);
        // K = 2 already fails: channel 2 at phase 0 delivers slice 1 only
        // after two rounds, but playback needs it after 1.5 segment slots.
        let plan = HarmonicPlan::new(100, 2).unwrap();
        assert_eq!(plan.undelayed_violation(), Some((2, 0, 1)));
        for k in 2..=32u32 {
            let plan = HarmonicPlan::new(32 * k as u64, k).unwrap();
            assert!(plan.undelayed_violation().is_some(), "K={k}");
        }
    }

    #[test]
    fn delay_and_media_lengths() {
        let plan = HarmonicPlan::new(120, 10).unwrap();
        assert_eq!(plan.segment_len, 12);
        assert_eq!(plan.delay(), 12);
        assert_eq!(plan.media_len(), 120);
    }

    #[test]
    fn bandwidth_beats_whole_channel_schemes() {
        // Harmonic with K = 15 covers delay L/15 at H_15 ≈ 3.32 channels;
        // fast broadcasting needs ⌈log₂ 16⌉ = 4 channels for the same delay.
        let plan = HarmonicPlan::new(15, 15).unwrap();
        assert!(plan.bandwidth() < 3.4);
        assert_eq!(crate::fast::channels_for(15, 1), 4);
    }

    #[test]
    fn buffer_grows_with_media() {
        let small = HarmonicPlan::new(40, 4).unwrap().max_buffer();
        let large = HarmonicPlan::new(400, 4).unwrap().max_buffer();
        assert!(large > small);
        // Buffer stays well below the whole media.
        assert!(large < 400.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HarmonicPlan::new(0, 4).is_err());
        assert!(HarmonicPlan::new(10, 0).is_err());
        assert!(HarmonicPlan::new(10, 3).is_err()); // 3 ∤ 10
    }
}
