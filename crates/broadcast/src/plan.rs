//! Periodic segment plans — the common shape of every static broadcasting
//! scheme.
//!
//! A plan cuts the media into ordered segments; instance `m` of segment `i`
//! is broadcast during `[offset_i + m·period_i, offset_i + m·period_i + ℓ_i)`
//! on a logical channel running at the playback rate. A segment may repeat
//! faster than its own length (`period < length`), which simply means it
//! occupies more than one playback-rate channel — that is how staggered
//! broadcasting (whole media repeated every `D` units) is expressed.
//!
//! Server bandwidth is the exact rational `Σ ℓ_i / period_i`, in channels.

use crate::error::BroadcastError;

/// One media segment and its broadcast schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment length in units (1 unit = the guaranteed start-up delay of
    /// the scheme family being compared).
    pub length: u64,
    /// Broadcast instances start every `period` units.
    pub period: u64,
    /// Phase of the first instance (`offset < period`).
    pub offset: u64,
}

impl Segment {
    /// A segment broadcast back-to-back on one unit-rate channel
    /// (`period == length`, zero offset) — the shape used by the pyramid
    /// family of schemes.
    pub fn back_to_back(length: u64) -> Self {
        Self {
            length,
            period: length,
            offset: 0,
        }
    }

    /// Start of the latest instance beginning at or before `t`, or `None` if
    /// `t` precedes the very first instance.
    #[inline]
    pub fn latest_start_at_or_before(&self, t: u64) -> Option<u64> {
        if t < self.offset {
            return None;
        }
        Some(self.offset + ((t - self.offset) / self.period) * self.period)
    }

    /// Start of the earliest instance beginning at or after `t`.
    #[inline]
    pub fn earliest_start_at_or_after(&self, t: u64) -> u64 {
        if t <= self.offset {
            return self.offset;
        }
        self.offset + (t - self.offset).div_ceil(self.period) * self.period
    }
}

/// An ordered periodic broadcast plan for one media object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    segments: Vec<Segment>,
    media_len: u64,
}

/// Greatest common divisor (Euclid).
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple with overflow checking.
pub(crate) fn checked_lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

impl SegmentPlan {
    /// Builds a plan from segments. Lengths must sum to the media length and
    /// every segment must have a positive length/period with `offset <
    /// period`.
    pub fn new(segments: Vec<Segment>) -> Result<Self, BroadcastError> {
        if segments.is_empty() {
            return Err(BroadcastError::EmptyPlan);
        }
        let mut media_len = 0u64;
        for (i, s) in segments.iter().enumerate() {
            if s.length == 0 {
                return Err(BroadcastError::ZeroLength { segment: i });
            }
            if s.period == 0 {
                return Err(BroadcastError::ZeroPeriod { segment: i });
            }
            if s.offset >= s.period {
                return Err(BroadcastError::OffsetOutOfRange {
                    segment: i,
                    offset: s.offset,
                    period: s.period,
                });
            }
            media_len += s.length;
        }
        Ok(Self {
            segments,
            media_len,
        })
    }

    /// The segments, in playback order.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total media length in units (sum of segment lengths).
    #[inline]
    pub fn media_len(&self) -> u64 {
        self.media_len
    }

    /// Exact server bandwidth `Σ ℓ_i / period_i` as a reduced fraction
    /// `(numerator, denominator)`, in channels.
    pub fn bandwidth_exact(&self) -> (u64, u64) {
        // Sum of fractions with running reduction to keep values small.
        let (mut num, mut den) = (0u64, 1u64);
        for s in &self.segments {
            let (n2, d2) = (s.length, s.period);
            let g = gcd(n2, d2);
            let (n2, d2) = (n2 / g, d2 / g);
            num = num
                .checked_mul(d2)
                .and_then(|a| n2.checked_mul(den).and_then(|b| a.checked_add(b)))
                .expect("bandwidth arithmetic overflow");
            den = den.checked_mul(d2).expect("bandwidth arithmetic overflow");
            let g = gcd(num, den);
            num /= g;
            den /= g;
        }
        (num, den)
    }

    /// Server bandwidth in channels, as a float (see
    /// [`Self::bandwidth_exact`] for the exact rational).
    pub fn bandwidth(&self) -> f64 {
        let (n, d) = self.bandwidth_exact();
        n as f64 / d as f64
    }

    /// Upper bound on the start-up delay: a client never waits longer than
    /// one full period of segment 0 for its next instance.
    #[inline]
    pub fn delay_bound(&self) -> u64 {
        self.segments[0].period
    }

    /// The plan's hyperperiod (lcm of all periods): arrival phases repeat
    /// with this period, so verifying one hyperperiod verifies all time.
    /// Fails if the lcm exceeds `limit` (verification would be intractable).
    pub fn hyperperiod(&self, limit: u64) -> Result<u64, BroadcastError> {
        let mut l = 1u64;
        for s in &self.segments {
            l = checked_lcm(l, s.period)
                .filter(|&v| v <= limit)
                .ok_or(BroadcastError::HyperperiodTooLarge { limit })?;
        }
        Ok(l)
    }

    /// Playback deadline offsets: `prefix[i]` is the playback start of
    /// segment `i` relative to the playback start of segment 0.
    pub fn prefix_lengths(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.segments.len());
        let mut acc = 0u64;
        for s in &self.segments {
            out.push(acc);
            acc += s.length;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_plan() {
        assert_eq!(
            SegmentPlan::new(vec![]).unwrap_err(),
            BroadcastError::EmptyPlan
        );
    }

    #[test]
    fn rejects_zero_length_and_period() {
        let bad_len = Segment {
            length: 0,
            period: 1,
            offset: 0,
        };
        assert_eq!(
            SegmentPlan::new(vec![bad_len]).unwrap_err(),
            BroadcastError::ZeroLength { segment: 0 }
        );
        let bad_period = Segment {
            length: 1,
            period: 0,
            offset: 0,
        };
        assert_eq!(
            SegmentPlan::new(vec![bad_period]).unwrap_err(),
            BroadcastError::ZeroPeriod { segment: 0 }
        );
    }

    #[test]
    fn rejects_offset_at_or_past_period() {
        let bad = Segment {
            length: 2,
            period: 2,
            offset: 2,
        };
        assert_eq!(
            SegmentPlan::new(vec![Segment::back_to_back(1), bad]).unwrap_err(),
            BroadcastError::OffsetOutOfRange {
                segment: 1,
                offset: 2,
                period: 2,
            }
        );
    }

    #[test]
    fn media_len_is_sum_of_lengths() {
        let plan = SegmentPlan::new(vec![
            Segment::back_to_back(1),
            Segment::back_to_back(2),
            Segment::back_to_back(4),
        ])
        .unwrap();
        assert_eq!(plan.media_len(), 7);
        assert_eq!(plan.prefix_lengths(), vec![0, 1, 3]);
    }

    #[test]
    fn bandwidth_of_back_to_back_segments_is_channel_count() {
        let plan = SegmentPlan::new(vec![
            Segment::back_to_back(1),
            Segment::back_to_back(2),
            Segment::back_to_back(4),
        ])
        .unwrap();
        assert_eq!(plan.bandwidth_exact(), (3, 1));
    }

    #[test]
    fn bandwidth_handles_fast_repeats() {
        // Whole media of 12 units repeated every 3 units = 4 channels.
        let plan = SegmentPlan::new(vec![Segment {
            length: 12,
            period: 3,
            offset: 0,
        }])
        .unwrap();
        assert_eq!(plan.bandwidth_exact(), (4, 1));
        // Non-integer: 10 units every 4 = 5/2 channels.
        let plan = SegmentPlan::new(vec![Segment {
            length: 10,
            period: 4,
            offset: 0,
        }])
        .unwrap();
        assert_eq!(plan.bandwidth_exact(), (5, 2));
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        let plan = SegmentPlan::new(vec![
            Segment::back_to_back(2),
            Segment::back_to_back(5),
            Segment::back_to_back(12),
        ])
        .unwrap();
        assert_eq!(plan.hyperperiod(1_000_000).unwrap(), 60);
        assert_eq!(
            plan.hyperperiod(59).unwrap_err(),
            BroadcastError::HyperperiodTooLarge { limit: 59 }
        );
    }

    #[test]
    fn instance_start_queries() {
        let s = Segment {
            length: 3,
            period: 5,
            offset: 2,
        };
        // Instances start at 2, 7, 12, …
        assert_eq!(s.latest_start_at_or_before(1), None);
        assert_eq!(s.latest_start_at_or_before(2), Some(2));
        assert_eq!(s.latest_start_at_or_before(6), Some(2));
        assert_eq!(s.latest_start_at_or_before(7), Some(7));
        assert_eq!(s.earliest_start_at_or_after(0), 2);
        assert_eq!(s.earliest_start_at_or_after(2), 2);
        assert_eq!(s.earliest_start_at_or_after(3), 7);
        assert_eq!(s.earliest_start_at_or_after(7), 7);
        assert_eq!(s.earliest_start_at_or_after(8), 12);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 1), 1);
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(u64::MAX, 2), None);
    }
}
