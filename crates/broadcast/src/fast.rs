//! Fast broadcasting (Juhn–Tseng \[27\], cited in paper §1).
//!
//! With `k` unit-rate channels the media is cut into segments of
//! `1, 2, 4, …, 2^{k−1}` base units — `2^k − 1` units in total — each
//! broadcast back-to-back on its own channel. A client tunes to **all**
//! channels at once (receive-all in the paper's terminology) and starts
//! playback at the next segment-0 instance; the geometric doubling
//! guarantees every later segment arrives by its playback deadline.
//!
//! For a media of `L` delay-units, fast broadcasting with `k` channels gives
//! a guaranteed start-up delay of `L / (2^k − 1)` — bandwidth logarithmic in
//! the inverse delay, the same `log` law as the optimal merge cost (Theorem
//! 13 gives `n·log_φ L` for merging; the static schemes pay `log₂` of the
//! delay ratio *permanently*, whether or not clients arrive).

use crate::error::BroadcastError;
use crate::plan::{Segment, SegmentPlan};

/// Builds the fast-broadcasting plan with `channels` channels, scaled so the
/// first segment (= the guaranteed delay) is `delay` units long.
///
/// The media covered is exactly `delay · (2^channels − 1)` units; pick
/// `channels = ⌈log₂(L/delay + 1)⌉` to cover a media of `L` units (the last
/// channel then covers slightly more than `L`, as in the published scheme).
pub fn fast_broadcasting(channels: u32, delay: u64) -> Result<SegmentPlan, BroadcastError> {
    if channels == 0 || channels > 40 {
        return Err(BroadcastError::InvalidParameters {
            reason: "channel count must lie in 1..=40",
        });
    }
    if delay == 0 {
        return Err(BroadcastError::InvalidParameters {
            reason: "delay must be positive",
        });
    }
    let segments = (0..channels)
        .map(|i| Segment::back_to_back(delay << i))
        .collect();
    SegmentPlan::new(segments)
}

/// The number of channels fast broadcasting needs to serve a media of
/// `media_len` units with start-up delay at most `delay` units:
/// the smallest `k` with `delay · (2^k − 1) ≥ media_len`.
pub fn channels_for(media_len: u64, delay: u64) -> u32 {
    assert!(delay > 0 && media_len > 0);
    let mut k = 0u32;
    let mut covered = 0u64;
    while covered < media_len {
        covered = covered.saturating_add(delay << k);
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_all_phases;

    #[test]
    fn segment_lengths_double() {
        let plan = fast_broadcasting(4, 1).unwrap();
        let lens: Vec<u64> = plan.segments().iter().map(|s| s.length).collect();
        assert_eq!(lens, vec![1, 2, 4, 8]);
        assert_eq!(plan.media_len(), 15);
        assert_eq!(plan.bandwidth_exact(), (4, 1));
    }

    #[test]
    fn every_phase_verifies_receive_all() {
        for k in 1..=6u32 {
            let plan = fast_broadcasting(k, 1).unwrap();
            let report = verify_all_phases(&plan, Some(k as usize), 10_000).unwrap();
            assert_eq!(report.bandwidth, (k as u64, 1));
            // Delay is the first segment: period 1 ⇒ worst integer delay 0.
            assert_eq!(report.worst_delay, 0);
        }
    }

    #[test]
    fn scaled_delay_verifies() {
        let plan = fast_broadcasting(4, 3).unwrap();
        assert_eq!(plan.media_len(), 45);
        let report = verify_all_phases(&plan, None, 10_000).unwrap();
        assert_eq!(report.worst_delay, 2); // period 3 ⇒ worst integer phase 2
    }

    #[test]
    fn needs_more_than_receive_two_eventually() {
        // Fast broadcasting is a receive-all scheme: with 4 channels a cap
        // of 2 must fail.
        let plan = fast_broadcasting(4, 1).unwrap();
        assert!(verify_all_phases(&plan, Some(2), 10_000).is_err());
    }

    #[test]
    fn channels_for_matches_geometry() {
        // delay 1: 1 channel covers 1, 2 cover 3, 3 cover 7, 4 cover 15.
        assert_eq!(channels_for(1, 1), 1);
        assert_eq!(channels_for(3, 1), 2);
        assert_eq!(channels_for(4, 1), 3);
        assert_eq!(channels_for(7, 1), 3);
        assert_eq!(channels_for(8, 1), 4);
        assert_eq!(channels_for(100, 1), 7); // 2^7−1 = 127 ≥ 100
        assert_eq!(channels_for(100, 10), 4); // 10·15 = 150 ≥ 100
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(fast_broadcasting(0, 1).is_err());
        assert!(fast_broadcasting(41, 1).is_err());
        assert!(fast_broadcasting(3, 0).is_err());
    }
}
