//! Error types for broadcast plan construction and verification.

use std::fmt;

/// Everything that can go wrong building or verifying a periodic broadcast
/// plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastError {
    /// A plan must contain at least one segment.
    EmptyPlan,
    /// Segment lengths and periods must be positive.
    ZeroLength { segment: usize },
    /// A segment's broadcast period must be positive.
    ZeroPeriod { segment: usize },
    /// A segment's phase offset must be smaller than its period.
    OffsetOutOfRange {
        segment: usize,
        offset: u64,
        period: u64,
    },
    /// Segment lengths do not sum to the requested media length.
    MediaLengthMismatch { sum: u64, media_len: u64 },
    /// The plan's hyperperiod (lcm of all periods) overflows or exceeds the
    /// verifier's tractability bound.
    HyperperiodTooLarge { limit: u64 },
    /// A client arriving at `arrival` cannot receive segment `segment` by its
    /// playback deadline: the only broadcast instance that would arrive in
    /// time started before the client tuned in.
    MissedDeadline {
        arrival: u64,
        segment: usize,
        deadline: u64,
    },
    /// The client would have to receive more channels at once than the
    /// stated receive cap (the paper's receive-two / receive-all axis).
    ExceedsReceiveCap {
        arrival: u64,
        time: u64,
        concurrent: usize,
        cap: usize,
    },
    /// Scheme constructor was given parameters it cannot satisfy (e.g. zero
    /// channels, α outside (1, 2], media shorter than one segment).
    InvalidParameters { reason: &'static str },
}

impl fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyPlan => write!(f, "broadcast plan must contain at least one segment"),
            Self::ZeroLength { segment } => {
                write!(f, "segment {segment} has zero length")
            }
            Self::ZeroPeriod { segment } => {
                write!(f, "segment {segment} has zero broadcast period")
            }
            Self::OffsetOutOfRange {
                segment,
                offset,
                period,
            } => write!(
                f,
                "segment {segment} has offset {offset} outside its period {period}"
            ),
            Self::MediaLengthMismatch { sum, media_len } => write!(
                f,
                "segment lengths sum to {sum} but the media is {media_len} units"
            ),
            Self::HyperperiodTooLarge { limit } => write!(
                f,
                "plan hyperperiod exceeds the verification bound of {limit} units"
            ),
            Self::MissedDeadline {
                arrival,
                segment,
                deadline,
            } => write!(
                f,
                "client arriving at {arrival} cannot receive segment {segment} \
                 by its playback deadline {deadline}"
            ),
            Self::ExceedsReceiveCap {
                arrival,
                time,
                concurrent,
                cap,
            } => write!(
                f,
                "client arriving at {arrival} must receive {concurrent} channels \
                 at time {time}, exceeding the cap of {cap}"
            ),
            Self::InvalidParameters { reason } => {
                write!(f, "invalid scheme parameters: {reason}")
            }
        }
    }
}

impl std::error::Error for BroadcastError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable() {
        let msgs = [
            BroadcastError::EmptyPlan.to_string(),
            BroadcastError::ZeroLength { segment: 2 }.to_string(),
            BroadcastError::MissedDeadline {
                arrival: 3,
                segment: 1,
                deadline: 7,
            }
            .to_string(),
            BroadcastError::ExceedsReceiveCap {
                arrival: 0,
                time: 4,
                concurrent: 3,
                cap: 2,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BroadcastError::EmptyPlan);
    }
}
