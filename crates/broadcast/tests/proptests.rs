//! Property-based tests for the static broadcasting substrate.
//!
//! Invariants exercised:
//! * the analytic deadline check agrees exactly with the exhaustive sweep
//!   wherever the sweep is tractable;
//! * every feasible plan honors its delay bound and its windows meet every
//!   deadline at every phase;
//! * the published schemes are feasible by construction across their whole
//!   parameter ranges (skyscraper under receive-two, fast under receive-all,
//!   staggered under receive-one, delayed harmonic always).

use proptest::prelude::*;
use sm_broadcast::plan::{Segment, SegmentPlan};
use sm_broadcast::verify::{check_deadlines, client_schedule, verify_all_phases};
use sm_broadcast::{
    fast_broadcasting, skyscraper_broadcasting, staggered_broadcasting, HarmonicPlan,
};

proptest! {
    /// The O(K) analytic feasibility decision equals the exhaustive sweep.
    #[test]
    fn analytic_check_equals_sweep(
        lens in proptest::collection::vec(1u64..=12, 2..=5)
    ) {
        let plan = SegmentPlan::new(
            lens.iter().map(|&l| Segment::back_to_back(l)).collect()
        ).unwrap();
        // Back-to-back lengths ≤ 12 keep the lcm ≤ 12! >> bounded by 27720.
        let swept = verify_all_phases(&plan, None, 10_000_000).is_ok();
        let analytic = check_deadlines(&plan).is_ok();
        prop_assert_eq!(analytic, swept, "lengths {:?}", lens);
    }

    /// Feasible plans: every phase meets every deadline with latest-fit
    /// windows, and the delay never exceeds segment 0's period.
    #[test]
    fn feasible_plans_meet_deadlines_everywhere(
        lens in proptest::collection::vec(1u64..=10, 2..=5)
    ) {
        let plan = SegmentPlan::new(
            lens.iter().map(|&l| Segment::back_to_back(l)).collect()
        ).unwrap();
        if check_deadlines(&plan).is_err() {
            return Ok(()); // infeasible geometry: nothing to check
        }
        let h = plan.hyperperiod(10_000_000).unwrap();
        let prefix = plan.prefix_lengths();
        for a in 0..h {
            let c = client_schedule(&plan, a).unwrap();
            prop_assert!(c.delay < plan.segments()[0].period + 1);
            for (i, &(ws, _)) in c.receive_windows.iter().enumerate() {
                prop_assert!(ws >= a);
                prop_assert!(ws <= c.playback_start + prefix[i]);
            }
        }
    }

    /// Skyscraper is receive-two feasible for any geometry and width cap.
    #[test]
    fn skyscraper_is_receive_two(
        media in 1u64..=200,
        delay in 1u64..=4,
        w in 1u64..=60,
    ) {
        prop_assume!(delay <= media);
        let plan = skyscraper_broadcasting(media, delay, w).unwrap();
        let report = verify_all_phases(&plan, Some(2), 10_000_000).unwrap();
        prop_assert!(report.worst_delay < delay);
        prop_assert!(report.max_concurrent <= 2);
    }

    /// Fast broadcasting is feasible (receive-all) for any channel count.
    #[test]
    fn fast_broadcasting_always_feasible(k in 1u32..=8, delay in 1u64..=5) {
        let plan = fast_broadcasting(k, delay).unwrap();
        let report = verify_all_phases(&plan, Some(k as usize), 10_000_000).unwrap();
        prop_assert!(report.worst_delay < delay);
        prop_assert_eq!(report.bandwidth, (k as u64, 1));
    }

    /// Staggered broadcasting: one channel at a time, zero client buffer,
    /// delay exactly the stagger period.
    #[test]
    fn staggered_is_receive_one_zero_buffer(
        media in 1u64..=100,
        delay in 1u64..=20,
    ) {
        prop_assume!(delay <= media);
        let plan = staggered_broadcasting(media, delay).unwrap();
        let report = verify_all_phases(&plan, Some(1), 10_000_000).unwrap();
        prop_assert_eq!(report.max_concurrent, 1);
        prop_assert_eq!(report.max_buffer, 0);
        prop_assert_eq!(report.worst_delay, delay - 1);
    }

    /// Delayed harmonic verifies for every segment count; the undelayed
    /// variant always has a violation beyond one segment.
    #[test]
    fn harmonic_delayed_works_undelayed_broken(k in 2u32..=40) {
        let plan = HarmonicPlan::new(k as u64 * 7, k).unwrap();
        prop_assert!(plan.verify_delayed().is_ok());
        prop_assert!(plan.undelayed_violation().is_some());
    }

    /// Bandwidth is invariant under the latest-fit client behaviour — it is
    /// a property of the plan alone, and the exact rational equals the sum
    /// of length/period up to float rounding.
    #[test]
    fn bandwidth_exact_matches_float_sum(
        lens in proptest::collection::vec(1u64..=30, 1..=6)
    ) {
        let plan = SegmentPlan::new(
            lens.iter().map(|&l| Segment::back_to_back(l)).collect()
        ).unwrap();
        let (n, d) = plan.bandwidth_exact();
        prop_assert_eq!(n, d * lens.len() as u64); // back-to-back: K channels
        prop_assert!((plan.bandwidth() - lens.len() as f64).abs() < 1e-9);
    }
}
