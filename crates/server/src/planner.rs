//! Per-title guaranteed-delay planning under a peak-bandwidth budget.
//!
//! §5 of the paper observes that the Delay Guaranteed algorithm's bandwidth
//! is a deterministic, decreasing function of the delay, so a server with a
//! fixed channel budget can always buy feasibility with delay. With many
//! titles the interesting question is *how to split* the budget: giving
//! every title the same delay (the uniform planner in
//! `sm_online::capacity`) wastes channels on the long tail. The weighted
//! planner here assigns **per-title** delays minimizing the
//! popularity-weighted expected delay `Σ p_i · D_i` subject to
//! `Σ peak_i(D_i) ≤ budget` — a discrete water-filling: repeatedly push out
//! the delay of whichever title buys the most bandwidth per unit of
//! weighted-delay pain. [`brute_force_plan`] solves small instances exactly
//! and the tests verify the greedy matches it.
//!
//! The expensive part — one steady-state Delay Guaranteed analysis per
//! distinct `(title, candidate-delay)` media length — goes through a
//! [`PlannerMemo`]: the bulk seeding stage shards the *unseen* lengths
//! across threads with [`sm_core::parallel_map`] before the (cheap,
//! sequential) greedy runs, so large catalogs plan in parallel with
//! bit-identical results. [`plan_weighted`] uses a fresh memo per call;
//! [`plan_weighted_with`] threads a caller-owned memo through, so repeated
//! plans — the dynamic server re-planning overlapping catalogs every epoch
//! — pay for each distinct media length once per memo lifetime. In the
//! dynamic server this whole planner is additionally the *producer* stage
//! of the cross-epoch pipeline (see [`crate::dynamic`]): epochs plan here
//! up to `plan_ahead` epochs ahead of materialization.
//!
//! ```
//! use sm_server::{plan_weighted, Catalog};
//!
//! let catalog = Catalog::zipf(3, 1.0, &[90.0, 120.0]);
//! let cands = [1.0, 5.0, 20.0];
//! // A generous budget gives every title the smallest delay…
//! let generous = plan_weighted(&catalog, u64::MAX, &cands).unwrap();
//! assert!(generous.delays_minutes.iter().all(|&d| d == 1.0));
//! // …and squeezing the budget trades delay for bandwidth, never breaking
//! // the budget and never improving the expected delay.
//! let squeezed = plan_weighted(&catalog, generous.total_peak / 2, &cands).unwrap();
//! assert!(squeezed.total_peak <= generous.total_peak / 2);
//! assert!(squeezed.expected_delay >= generous.expected_delay);
//! ```

use crate::catalog::Catalog;
use crate::memo::PlannerMemo;

/// A per-title delay assignment and its verified bandwidth demand.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayPlan {
    /// Guaranteed delay per title, in minutes (same order as the catalog).
    pub delays_minutes: Vec<f64>,
    /// Steady-state DG peak per title, in concurrent streams.
    pub peaks: Vec<u32>,
    /// Sum of per-title peaks — the worst-case aggregate demand.
    pub total_peak: u64,
    /// The popularity-weighted expected guaranteed delay `Σ p_i · D_i`.
    pub expected_delay: f64,
}

fn build_plan(
    catalog: &Catalog,
    candidates: &[f64],
    choice: &[usize],
    memo: &PlannerMemo,
) -> DelayPlan {
    let probs = catalog.probabilities();
    let mut delays = Vec::with_capacity(choice.len());
    let mut peaks = Vec::with_capacity(choice.len());
    let mut expected_delay = 0.0;
    for (i, (&c, title)) in choice.iter().zip(catalog.titles()).enumerate() {
        let d = candidates[c];
        delays.push(d);
        peaks.push(memo.peak(title.media_len(d)));
        expected_delay += probs[i] * d;
    }
    let total_peak = peaks.iter().map(|&p| p as u64).sum();
    DelayPlan {
        delays_minutes: delays,
        peaks,
        total_peak,
        expected_delay,
    }
}

/// Greedy weighted planner: starts every title at the smallest candidate
/// delay and repeatedly relaxes the title with the best
/// bandwidth-saved-per-weighted-delay ratio until the budget fits. Returns
/// `None` if even the largest delays exceed the budget.
///
/// `candidates_minutes` must be sorted ascending and non-empty.
pub fn plan_weighted(
    catalog: &Catalog,
    budget_streams: u64,
    candidates_minutes: &[f64],
) -> Option<DelayPlan> {
    plan_weighted_with(
        catalog,
        budget_streams,
        candidates_minutes,
        &PlannerMemo::new(),
    )
}

/// [`plan_weighted`] with a caller-owned [`PlannerMemo`]: every distinct
/// media length the plan needs is analyzed at most once per memo lifetime,
/// so re-planning overlapping catalogs (the dynamic server's epoch loop)
/// reuses earlier analyses instead of re-deriving them. The chosen plan is
/// **bit-identical** to [`plan_weighted`]'s — the memo caches pure
/// functions of the media length.
pub fn plan_weighted_with(
    catalog: &Catalog,
    budget_streams: u64,
    candidates_minutes: &[f64],
    memo: &PlannerMemo,
) -> Option<DelayPlan> {
    assert!(!candidates_minutes.is_empty());
    assert!(
        candidates_minutes.windows(2).all(|w| w[0] < w[1]),
        "candidate delays must be strictly ascending"
    );
    let probs = catalog.probabilities();
    // The per-length steady-state analyses are independent, so the memo's
    // seeding stage shards the distinct *unseen* ones across threads
    // (order-preserving — the chosen plan is identical to a sequential
    // run). Two stages keep the common generous-budget case cheap: only
    // the smallest-delay lengths are analyzed up front; the full
    // |titles| × |candidates| cross product is precomputed just before the
    // greedy starts relaxing, when most of it will be queried anyway.
    memo.seed_peaks(
        catalog
            .titles()
            .iter()
            .map(|t| t.media_len(candidates_minutes[0]))
            .collect(),
    );
    let mut choice = vec![0usize; catalog.len()];
    let mut plan = build_plan(catalog, candidates_minutes, &choice, memo);
    if plan.total_peak > budget_streams {
        memo.seed_peaks(
            catalog
                .titles()
                .iter()
                .flat_map(|t| candidates_minutes.iter().map(|&d| t.media_len(d)))
                .collect(),
        );
    }
    while plan.total_peak > budget_streams {
        // Candidate moves: advance one title to its next larger delay.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..choice.len() {
            if choice[i] + 1 >= candidates_minutes.len() {
                continue;
            }
            let cur_peak = memo.peak(catalog.titles()[i].media_len(candidates_minutes[choice[i]]));
            let next_peak =
                memo.peak(catalog.titles()[i].media_len(candidates_minutes[choice[i] + 1]));
            let saved = cur_peak.saturating_sub(next_peak) as f64;
            let pain =
                probs[i] * (candidates_minutes[choice[i] + 1] - candidates_minutes[choice[i]]);
            let ratio = saved / pain;
            if best.map(|(_, r)| ratio > r).unwrap_or(true) {
                best = Some((i, ratio));
            }
        }
        let (i, _) = best?; // no move left: budget unreachable
        choice[i] += 1;
        plan = build_plan(catalog, candidates_minutes, &choice, memo);
    }
    Some(plan)
}

/// Exhaustive optimal planner for small instances (`candidates^titles`
/// assignments): minimizes expected delay subject to the budget. Used by
/// tests to validate the greedy planner; panics if the search space exceeds
/// one million assignments.
pub fn brute_force_plan(
    catalog: &Catalog,
    budget_streams: u64,
    candidates_minutes: &[f64],
) -> Option<DelayPlan> {
    let k = catalog.len();
    let c = candidates_minutes.len();
    // sm-lint: allow(narrowing-cast) — k is the catalog size; the 10^6 space assert below rejects anything near 2^32
    let space = (c as u128).checked_pow(k as u32).expect("space overflow");
    assert!(space <= 1_000_000, "brute force space too large: {space}");
    let memo = PlannerMemo::new();
    let mut best: Option<DelayPlan> = None;
    let mut choice = vec![0usize; k];
    loop {
        let plan = build_plan(catalog, candidates_minutes, &choice, &memo);
        if plan.total_peak <= budget_streams
            && best
                .as_ref()
                .map(|b| plan.expected_delay < b.expected_delay)
                .unwrap_or(true)
        {
            best = Some(plan);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == k {
                return best;
            }
            choice[i] += 1;
            if choice[i] < c {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Title};
    use sm_online::capacity::steady_state_bandwidth;

    fn small_catalog() -> Catalog {
        Catalog::new(vec![
            Title {
                name: "blockbuster".into(),
                duration_minutes: 120.0,
                weight: 8.0,
            },
            Title {
                name: "classic".into(),
                duration_minutes: 90.0,
                weight: 2.0,
            },
            Title {
                name: "niche".into(),
                duration_minutes: 100.0,
                weight: 1.0,
            },
        ])
    }

    const CANDS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

    #[test]
    fn generous_budget_gives_everyone_min_delay() {
        let plan = plan_weighted(&small_catalog(), 10_000, &CANDS).unwrap();
        assert_eq!(plan.delays_minutes, vec![1.0, 1.0, 1.0]);
        assert!(plan.total_peak <= 10_000);
    }

    #[test]
    fn impossible_budget_returns_none() {
        assert_eq!(plan_weighted(&small_catalog(), 1, &CANDS), None);
        assert_eq!(brute_force_plan(&small_catalog(), 1, &CANDS), None);
    }

    #[test]
    fn plan_respects_budget_and_popularity() {
        let catalog = small_catalog();
        // Find a budget between all-min and all-max demand.
        let all_min = plan_weighted(&catalog, u64::MAX, &[1.0])
            .unwrap()
            .total_peak;
        let all_max = plan_weighted(&catalog, u64::MAX, &[10.0])
            .unwrap()
            .total_peak;
        let budget = (all_min + all_max) / 2;
        let plan = plan_weighted(&catalog, budget, &CANDS).unwrap();
        assert!(plan.total_peak <= budget);
        // The blockbuster must not end up with a longer delay than the
        // niche title.
        assert!(plan.delays_minutes[0] <= plan.delays_minutes[2]);
    }

    #[test]
    fn greedy_matches_brute_force_objective() {
        let catalog = small_catalog();
        let all_min = plan_weighted(&catalog, u64::MAX, &[1.0])
            .unwrap()
            .total_peak;
        for budget in [all_min / 2, all_min * 2 / 3, all_min * 4 / 5] {
            let greedy = plan_weighted(&catalog, budget, &CANDS);
            let exact = brute_force_plan(&catalog, budget, &CANDS);
            match (greedy, exact) {
                (Some(g), Some(e)) => {
                    assert!(g.total_peak <= budget);
                    // Greedy water-filling is near-optimal on these discrete
                    // menus; allow a small slack.
                    assert!(
                        g.expected_delay <= e.expected_delay * 1.25 + 1e-9,
                        "budget {budget}: greedy {} vs exact {}",
                        g.expected_delay,
                        e.expected_delay
                    );
                }
                (None, None) => {}
                (g, e) => panic!("feasibility disagreement: {g:?} vs {e:?}"),
            }
        }
    }

    #[test]
    fn tighter_budget_never_decreases_expected_delay() {
        let catalog = small_catalog();
        let all_min = plan_weighted(&catalog, u64::MAX, &[1.0])
            .unwrap()
            .total_peak;
        let mut last = 0.0f64;
        for budget in (1..=all_min).rev().step_by(3) {
            if let Some(plan) = plan_weighted(&catalog, budget, &CANDS) {
                assert!(
                    plan.expected_delay + 1e-9 >= last,
                    "budget {budget}: {} < {last}",
                    plan.expected_delay
                );
                last = plan.expected_delay;
            }
        }
    }

    #[test]
    fn shared_memo_plans_are_bit_identical_and_reuse_analyses() {
        let catalog = small_catalog();
        let all_min = plan_weighted(&catalog, u64::MAX, &[1.0])
            .unwrap()
            .total_peak;
        let budget = all_min * 2 / 3;
        let memo = PlannerMemo::new();
        let fresh = plan_weighted(&catalog, budget, &CANDS);
        let memod = plan_weighted_with(&catalog, budget, &CANDS, &memo);
        assert_eq!(fresh, memod, "memo must not change the chosen plan");
        let analyses = memo.misses();
        assert!(analyses > 0);
        let again = plan_weighted_with(&catalog, budget, &CANDS, &memo);
        assert_eq!(fresh, again);
        assert_eq!(
            memo.misses(),
            analyses,
            "re-planning must not re-analyze any length"
        );
        assert!(memo.hits() > 0);
    }

    #[test]
    fn peaks_match_capacity_analysis() {
        let catalog = small_catalog();
        let plan = plan_weighted(&catalog, u64::MAX, &CANDS).unwrap();
        for (i, title) in catalog.titles().iter().enumerate() {
            let l = title.media_len(plan.delays_minutes[i]);
            assert_eq!(plan.peaks[i], steady_state_bandwidth(l).peak);
        }
    }
}
