//! Dynamic re-provisioning — the §5 observation that stream merging, unlike
//! the static broadcasting schemes, "can accommodate scenarios where the
//! server wishes to change the guaranteed start-up delay".
//!
//! The catalog changes over time (titles added/retired, popularity shifts);
//! at each epoch boundary the server re-plans per-title delays against the
//! same bandwidth budget. Nothing is torn down: streams committed under the
//! old plan simply run to completion while the new plan's slot grids start
//! — exactly what dynamic channel allocation means. The simulation here is
//! *stream-exact*: every stream of every epoch is materialized from the
//! Delay Guaranteed template (its Lemma-1 truncated length included) and
//! binned on the minute grid, so the transition overlap is measured, not
//! modeled. Titles are simulated independently and sharded across threads
//! with [`sm_core::parallel_map`]; result order (and hence every number in
//! the report) is deterministic.
//!
//! The report separates the steady-state peak (which the planner guarantees
//! under the budget) from the transition peak (old + new streams briefly
//! coexist; the worst case is bounded by the two adjacent plans' peaks
//! combined, and measured far lower in practice).

use crate::catalog::Catalog;
use crate::planner::{plan_weighted, DelayPlan};
use sm_core::{consecutive_slots, parallel_map};
use sm_online::delay_guaranteed::DelayGuaranteedOnline;
use sm_sim::{stream_schedule, BandwidthProfile};

/// A catalog snapshot taking effect at `start_minute`.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// First minute this catalog is live.
    pub start_minute: u64,
    /// The catalog served from this minute on.
    pub catalog: Catalog,
}

/// The plan chosen for one epoch.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// First minute of the epoch.
    pub start_minute: u64,
    /// First minute after the epoch.
    pub end_minute: u64,
    /// The per-title delay plan.
    pub plan: DelayPlan,
}

/// Stream-exact minute-grid report of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// Concurrent streams per minute over the horizon.
    pub per_minute: Vec<u64>,
    /// Overall maximum.
    pub peak: u64,
    /// Maximum outside transition windows (one longest-media length after
    /// each epoch switch).
    pub steady_peak: u64,
    /// Maximum inside transition windows.
    pub transition_peak: u64,
    /// The plan of each epoch.
    pub epoch_plans: Vec<EpochPlan>,
}

/// Materializes the exact stream intervals (in minutes) of one title served
/// with delay `delay_minutes` over `[t0, t1)`. Streams started before `t1`
/// run to their natural end (possibly past `t1`).
fn title_streams(duration_minutes: f64, delay_minutes: u64, t0: u64, t1: u64) -> Vec<(u64, u64)> {
    let d = delay_minutes;
    let media_len = ((duration_minutes / d as f64).ceil() as u64).max(1);
    let slots = ((t1 - t0) / d) as usize;
    if slots == 0 {
        return Vec::new();
    }
    let alg = DelayGuaranteedOnline::new(media_len);
    let forest = alg.forest_after(slots);
    let times = consecutive_slots(slots);
    stream_schedule(&forest, &times, media_len)
        .expect("minute-grid media length")
        .into_iter()
        .map(|s| {
            let start = t0 + s.start as u64 * d;
            let end = start + s.length as u64 * d;
            (start, end)
        })
        .collect()
}

/// Simulates the epochs against `budget` over `[0, horizon_minutes)`.
/// Returns `None` if any epoch has no feasible plan.
///
/// # Panics
/// Panics if epochs are empty, unsorted, don't start at minute 0, or if any
/// candidate delay is not a whole number of minutes (the minute grid needs
/// integral slots).
pub fn simulate_dynamic(
    epochs: &[Epoch],
    budget: u64,
    candidates_minutes: &[f64],
    horizon_minutes: u64,
) -> Option<DynamicReport> {
    assert!(!epochs.is_empty(), "need at least one epoch");
    assert_eq!(epochs[0].start_minute, 0, "first epoch must start at 0");
    assert!(
        epochs
            .windows(2)
            .all(|w| w[0].start_minute < w[1].start_minute),
        "epochs must be strictly ordered"
    );
    assert!(
        candidates_minutes
            .iter()
            .all(|d| *d > 0.0 && d.fract() == 0.0),
        "candidate delays must be whole minutes"
    );
    assert!(horizon_minutes > 0);

    // Sparse accounting: collect every stream as a minute interval and let
    // the difference-array profile sum them at change-points only — the old
    // per-stream `for slot in lo..hi { +1 }` inner loop was
    // O(streams × duration) and dominated long horizons.
    let mut intervals: Vec<(i64, i64)> = Vec::new();
    let mut epoch_plans = Vec::with_capacity(epochs.len());
    let mut longest_media = 0u64;

    for (i, epoch) in epochs.iter().enumerate() {
        let t0 = epoch.start_minute;
        let t1 = epochs
            .get(i + 1)
            .map(|e| e.start_minute)
            .unwrap_or(horizon_minutes)
            .min(horizon_minutes);
        if t0 >= t1 {
            continue;
        }
        let plan = plan_weighted(&epoch.catalog, budget, candidates_minutes)?;
        // Titles are independent objects: materialize each title's exact
        // stream intervals on its own thread (`parallel_map` returns results
        // in input order, so the collected intervals — and therefore the
        // whole report — are bit-identical to a sequential run).
        let jobs: Vec<(f64, u64)> = epoch
            .catalog
            .titles()
            .iter()
            .zip(&plan.delays_minutes)
            .map(|(title, &delay)| (title.duration_minutes, delay as u64))
            .collect();
        let per_title = parallel_map(&jobs, |&(duration, delay)| {
            title_streams(duration, delay, t0, t1)
        });
        for (title, streams) in epoch.catalog.titles().iter().zip(per_title) {
            longest_media = longest_media.max(title.duration_minutes.ceil() as u64);
            for (s, e) in streams {
                intervals.push((s.min(horizon_minutes) as i64, e.min(horizon_minutes) as i64));
            }
        }
        epoch_plans.push(EpochPlan {
            start_minute: t0,
            end_minute: t1,
            plan,
        });
    }
    let profile = BandwidthProfile::from_intervals(intervals);
    let per_minute: Vec<u64> = profile
        .window(0, horizon_minutes as i64)
        .into_iter()
        .map(u64::from)
        .collect();

    // Transition windows: one longest-media length after each switch (the
    // first epoch has no predecessor, hence no transition).
    let in_transition = |m: u64| {
        epochs[1..]
            .iter()
            .any(|e| m >= e.start_minute && m < e.start_minute + longest_media)
    };
    let mut peak = 0u64;
    let mut steady_peak = 0u64;
    let mut transition_peak = 0u64;
    for (m, &c) in per_minute.iter().enumerate() {
        peak = peak.max(c);
        if in_transition(m as u64) {
            transition_peak = transition_peak.max(c);
        } else {
            steady_peak = steady_peak.max(c);
        }
    }
    Some(DynamicReport {
        per_minute,
        peak,
        steady_peak,
        transition_peak,
        epoch_plans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(n: usize) -> Catalog {
        Catalog::zipf(n, 1.0, &[100.0, 80.0])
    }

    const CANDS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

    #[test]
    fn single_epoch_respects_budget() {
        let epochs = [Epoch {
            start_minute: 0,
            catalog: catalog(3),
        }];
        let budget = 30;
        let report = simulate_dynamic(&epochs, budget, &CANDS, 800).unwrap();
        assert!(report.peak <= report.epoch_plans[0].plan.total_peak);
        assert!(report.epoch_plans[0].plan.total_peak <= budget);
        assert_eq!(report.transition_peak, 0, "no switch, no transition");
        assert_eq!(report.peak, report.steady_peak);
    }

    #[test]
    fn growing_catalog_keeps_steady_state_under_budget() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
            Epoch {
                start_minute: 400,
                catalog: catalog(6),
            },
        ];
        let budget = 40;
        let report = simulate_dynamic(&epochs, budget, &CANDS, 1200).unwrap();
        for ep in &report.epoch_plans {
            assert!(ep.plan.total_peak <= budget);
        }
        assert!(report.steady_peak <= budget);
        // The transition may briefly stack old and new streams, but never
        // beyond the two adjacent plans combined.
        let combined =
            report.epoch_plans[0].plan.total_peak + report.epoch_plans[1].plan.total_peak;
        assert!(report.transition_peak <= combined);
    }

    #[test]
    fn shrinking_catalog_buys_shorter_delays() {
        let big = catalog(8);
        let small = catalog(2);
        // Tight budget: exactly what the big catalog needs at the largest
        // candidate delay — feasible for it, comfortable for the small one.
        let budget = plan_weighted(&big, u64::MAX, &[10.0]).unwrap().total_peak;
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: big,
            },
            Epoch {
                start_minute: 500,
                catalog: small,
            },
        ];
        let report = simulate_dynamic(&epochs, budget, &CANDS, 1000).unwrap();
        let before = report.epoch_plans[0].plan.expected_delay;
        let after = report.epoch_plans[1].plan.expected_delay;
        assert!(
            after <= before,
            "fewer titles should afford shorter delays: {after} vs {before}"
        );
    }

    #[test]
    fn infeasible_epoch_returns_none() {
        let epochs = [Epoch {
            start_minute: 0,
            catalog: catalog(10),
        }];
        assert!(simulate_dynamic(&epochs, 1, &CANDS, 500).is_none());
    }

    #[test]
    #[should_panic]
    fn unsorted_epochs_panic() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(1),
            },
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
        ];
        let _ = simulate_dynamic(&epochs, 100, &CANDS, 100);
    }

    #[test]
    #[should_panic]
    fn fractional_candidate_delays_panic() {
        let epochs = [Epoch {
            start_minute: 0,
            catalog: catalog(1),
        }];
        let _ = simulate_dynamic(&epochs, 100, &[1.5], 100);
    }
}
