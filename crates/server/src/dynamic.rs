//! Dynamic re-provisioning — the §5 observation that stream merging, unlike
//! the static broadcasting schemes, "can accommodate scenarios where the
//! server wishes to change the guaranteed start-up delay".
//!
//! The catalog changes over time (titles added/retired, popularity shifts);
//! at each epoch boundary the server re-plans per-title delays against the
//! same bandwidth budget. Nothing is torn down: streams committed under the
//! old plan simply run to completion while the new plan's slot grids start
//! — exactly what dynamic channel allocation means. The simulation here is
//! *stream-exact*: every stream of every epoch is materialized from the
//! Delay Guaranteed template (its Lemma-1 truncated length included) and
//! binned on the minute grid, so the transition overlap is measured, not
//! modeled.
//!
//! # The depth-K cross-epoch pipeline
//!
//! Epochs are processed by a two-stage pipeline built on
//! [`sm_core::pipeline`]: a *planning* stage runs the weighted planner
//! (including its parallel memo seeding) on its own thread while the
//! *materialization* stage turns finished plans into exact stream
//! intervals and bins them — per-title work inside each stage still shards
//! across threads with [`sm_core::parallel_map`]. The bounded channel
//! between the stages holds up to [`DynamicConfig::plan_ahead`] finished
//! plans, so planning runs at most `K` epochs ahead of materialization —
//! `K = 1` is the classic one-epoch overlap, larger `K` lets short
//! planning stages batch ahead of a slow materialization without ever
//! growing the backlog unboundedly.
//!
//! [`DynamicConfig::memo`] optionally threads a shared [`PlannerMemo`]
//! through the planning stage: overlapping catalogs then pay for each
//! distinct media length's steady-state analysis once per memo lifetime
//! instead of once per epoch. [`simulate_dynamic_sequential`] keeps the
//! original one-epoch-at-a-time spine as the reference (it honors the memo
//! too, via [`simulate_dynamic_sequential_with`]): all spines and knob
//! settings produce **bit-identical** reports (pinned by proptest in
//! `crates/server/tests/proptests.rs` for `K ∈ {1, 2, 4}`, with and
//! without a shared memo) up to the wall-clock latency fields of
//! [`EpochBreakdown`], which measure the run itself.
//!
//! The report separates the steady-state peak (which the planner guarantees
//! under the budget) from the transition peak (old + new streams briefly
//! coexist; the worst case is bounded by the two adjacent plans' peaks
//! combined, and measured far lower in practice), and breaks both down per
//! epoch alongside the plan/materialization latencies so the pipeline's
//! overlap is measurable rather than asserted.
//!
//! ```
//! use sm_server::{simulate_dynamic, simulate_dynamic_sequential, Catalog, Epoch};
//!
//! // Two epochs: the catalog doubles at minute 120 under the same budget.
//! let epochs = [
//!     Epoch { start_minute: 0, catalog: Catalog::zipf(2, 1.0, &[60.0]) },
//!     Epoch { start_minute: 120, catalog: Catalog::zipf(4, 1.0, &[60.0]) },
//! ];
//! let report = simulate_dynamic(&epochs, 40, &[2.0, 5.0, 10.0], 240).unwrap();
//! assert_eq!(report.epoch_plans.len(), 2);
//! assert!(report.steady_peak <= 40);
//! assert_eq!(report.per_epoch.len(), 2);
//!
//! // The pipelined spine is bit-identical to the sequential reference.
//! let seq = simulate_dynamic_sequential(&epochs, 40, &[2.0, 5.0, 10.0], 240).unwrap();
//! assert_eq!(report.per_minute, seq.per_minute);
//! assert_eq!(report.peak, seq.peak);
//! ```

use std::fmt;
use std::time::Instant;

use crate::catalog::Catalog;
use crate::memo::PlannerMemo;
use crate::planner::{plan_weighted, plan_weighted_with, DelayPlan};
use sm_core::{consecutive_slots, parallel_map, pipeline};
use sm_online::delay_guaranteed::DelayGuaranteedOnline;
use sm_sim::{BandwidthProfile, ScheduleStream, SimError};

/// Knobs of the dynamic simulation: how far the planning stage may run
/// ahead of materialization, and whether the steady-state analyses are
/// shared across epochs (and runs) through a [`PlannerMemo`].
///
/// Every setting is **observability-only** with respect to the report: all
/// `(plan_ahead, memo)` combinations produce bit-identical deterministic
/// fields (pinned by proptest). The knobs change wall-clock behavior —
/// how much planning overlaps materialization, and how often the
/// steady-state analyses actually execute.
///
/// ```
/// use sm_server::{DynamicConfig, PlannerMemo};
///
/// // The default is the PR-4 behavior: plan one epoch ahead, no sharing.
/// let default = DynamicConfig::default();
/// assert_eq!(default.plan_ahead, 1);
/// assert!(default.memo.is_none());
///
/// // Plan up to 4 epochs ahead, sharing analyses across the whole run.
/// let tuned = DynamicConfig::depth(4).with_memo(PlannerMemo::new());
/// assert_eq!(tuned.plan_ahead, 4);
/// assert!(tuned.memo.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Channel depth of the cross-epoch pipeline: the planner may finish up
    /// to this many epochs before materialization consumes them. Must be at
    /// least 1 ([`simulate_dynamic_with`] panics otherwise). Ignored by the
    /// sequential spine, which has no pipeline.
    pub plan_ahead: usize,
    /// Shared steady-state analysis cache threaded through the planning
    /// stage. `None` (the default) gives every epoch's plan a fresh memo —
    /// the memo-free PR-4 behavior.
    pub memo: Option<PlannerMemo>,
}

impl Default for DynamicConfig {
    /// Depth-1 plan-ahead, no shared memo — exactly the PR-4 pipeline.
    fn default() -> Self {
        Self {
            plan_ahead: 1,
            memo: None,
        }
    }
}

impl DynamicConfig {
    /// A memo-free config planning up to `plan_ahead` epochs ahead.
    pub fn depth(plan_ahead: usize) -> Self {
        Self {
            plan_ahead,
            memo: None,
        }
    }

    /// Threads `memo` through the planning stage (builder-style).
    pub fn with_memo(mut self, memo: PlannerMemo) -> Self {
        self.memo = Some(memo);
        self
    }
}

/// A catalog snapshot taking effect at `start_minute`.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// First minute this catalog is live.
    pub start_minute: u64,
    /// The catalog served from this minute on.
    pub catalog: Catalog,
}

/// The plan chosen for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// First minute of the epoch.
    pub start_minute: u64,
    /// First minute after the epoch.
    pub end_minute: u64,
    /// The per-title delay plan.
    pub plan: DelayPlan,
}

/// Per-epoch slice of the report: load peaks over the epoch's live window
/// plus the wall-clock cost of its two pipeline stages.
///
/// The peak fields are deterministic (bit-identical between the pipelined
/// and sequential spines); `plan_ms` and `materialize_ms` measure the run
/// itself and vary between executions.
#[derive(Debug, Clone)]
pub struct EpochBreakdown {
    /// First minute of the epoch.
    pub start_minute: u64,
    /// First minute after the epoch.
    pub end_minute: u64,
    /// Maximum concurrent streams during `[start_minute, end_minute)`.
    pub peak: u64,
    /// Maximum outside transition windows within this epoch.
    pub steady_peak: u64,
    /// Maximum inside transition windows within this epoch (0 for the first
    /// epoch when no earlier switch's window reaches into it).
    pub transition_peak: u64,
    /// Wall-clock milliseconds the planning stage spent on this epoch.
    pub plan_ms: f64,
    /// Wall-clock milliseconds the materialization stage spent (stream
    /// materialization and minute-grid binning).
    pub materialize_ms: f64,
}

/// Stream-exact minute-grid report of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// Concurrent streams per minute over the horizon.
    pub per_minute: Vec<u64>,
    /// Overall maximum.
    pub peak: u64,
    /// Maximum outside transition windows (one longest-media length after
    /// each epoch switch).
    pub steady_peak: u64,
    /// Maximum inside transition windows.
    pub transition_peak: u64,
    /// The plan of each epoch.
    pub epoch_plans: Vec<EpochPlan>,
    /// Per-epoch peaks and stage latencies, aligned with `epoch_plans`.
    pub per_epoch: Vec<EpochBreakdown>,
}

impl DynamicReport {
    /// Compares every **deterministic** field against `other` — everything
    /// except the per-epoch `plan_ms` / `materialize_ms` latencies, which
    /// measure the run itself — and returns a description of the first
    /// divergence, or `None` when the reports are bit-identical. This is
    /// the one canonical definition of "the pipelined and sequential spines
    /// agree", shared by the unit tests, the proptest pin, and the
    /// `sm-experiments` cross-check gate.
    pub fn deterministic_diff(&self, other: &Self) -> Option<String> {
        if self.per_minute != other.per_minute {
            return Some("per-minute profiles diverge".into());
        }
        if (self.peak, self.steady_peak, self.transition_peak)
            != (other.peak, other.steady_peak, other.transition_peak)
        {
            return Some(format!(
                "peaks diverge: ({}, {}, {}) vs ({}, {}, {})",
                self.peak,
                self.steady_peak,
                self.transition_peak,
                other.peak,
                other.steady_peak,
                other.transition_peak
            ));
        }
        if self.epoch_plans != other.epoch_plans {
            return Some("epoch plans diverge".into());
        }
        if self.per_epoch.len() != other.per_epoch.len() {
            return Some(format!(
                "per-epoch breakdown lengths diverge: {} vs {}",
                self.per_epoch.len(),
                other.per_epoch.len()
            ));
        }
        for (x, y) in self.per_epoch.iter().zip(&other.per_epoch) {
            if (
                x.start_minute,
                x.end_minute,
                x.peak,
                x.steady_peak,
                x.transition_peak,
            ) != (
                y.start_minute,
                y.end_minute,
                y.peak,
                y.steady_peak,
                y.transition_peak,
            ) {
                return Some(format!(
                    "epoch [{}, {}) breakdown diverges",
                    x.start_minute, x.end_minute
                ));
            }
        }
        None
    }
}

/// Failure modes of the dynamic simulation, surfaced as typed errors
/// instead of panicking deep inside a pipeline worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicError {
    /// Epoch `epoch` has no feasible plan under the budget, even with every
    /// title at the largest candidate delay.
    Infeasible {
        /// Index into the `epochs` slice.
        epoch: usize,
        /// First minute of the infeasible epoch.
        start_minute: u64,
    },
    /// Materializing a title's schedule failed (in practice only reachable
    /// through a media length overflowing the signed slot arithmetic).
    Schedule {
        /// Index into the `epochs` slice.
        epoch: usize,
        /// Name of the title whose schedule failed.
        title: String,
        /// The underlying simulator error.
        source: SimError,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible {
                epoch,
                start_minute,
            } => write!(
                f,
                "epoch {epoch} (starting at minute {start_minute}) has no feasible plan under the budget"
            ),
            Self::Schedule {
                epoch,
                title,
                source,
            } => write!(f, "epoch {epoch}, title {title}: {source}"),
        }
    }
}

impl std::error::Error for DynamicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Schedule { source, .. } => Some(source),
            Self::Infeasible { .. } => None,
        }
    }
}

/// One live epoch window: `epochs[epoch]` served over `[t0, t1)`.
#[derive(Debug, Clone, Copy)]
struct EpochJob {
    epoch: usize,
    t0: u64,
    t1: u64,
}

/// Validates the inputs (panicking on malformed ones, as documented on the
/// public entry points) and lists the epochs with a non-empty live window.
fn epoch_jobs(epochs: &[Epoch], candidates_minutes: &[f64], horizon_minutes: u64) -> Vec<EpochJob> {
    assert!(!epochs.is_empty(), "need at least one epoch");
    assert_eq!(epochs[0].start_minute, 0, "first epoch must start at 0");
    assert!(
        epochs
            .windows(2)
            .all(|w| w[0].start_minute < w[1].start_minute),
        "epochs must be strictly ordered"
    );
    assert!(
        candidates_minutes
            .iter()
            .all(|d| *d > 0.0 && d.fract() == 0.0),
        "candidate delays must be whole minutes"
    );
    assert!(horizon_minutes > 0);
    epochs
        .iter()
        .enumerate()
        .filter_map(|(i, epoch)| {
            let t0 = epoch.start_minute;
            let t1 = epochs
                .get(i + 1)
                .map(|e| e.start_minute)
                .unwrap_or(horizon_minutes)
                .min(horizon_minutes);
            (t0 < t1).then_some(EpochJob { epoch: i, t0, t1 })
        })
        .collect()
}

/// Materializes the exact stream intervals (in minutes) of one title served
/// with delay `delay_minutes` over `[t0, t1)`. Streams started before `t1`
/// run to their natural end (possibly past `t1`). The per-tree specs are
/// pulled through [`ScheduleStream::next_into`] with one reused scratch
/// buffer, so no flat whole-schedule vector is ever built.
fn title_streams(
    duration_minutes: f64,
    delay_minutes: u64,
    t0: u64,
    t1: u64,
) -> Result<Vec<(u64, u64)>, SimError> {
    let d = delay_minutes;
    let media_len = ((duration_minutes / d as f64).ceil() as u64).max(1);
    let slots = ((t1 - t0) / d) as usize;
    if slots == 0 {
        // The epoch window is shorter than one delay slot: no stream of
        // this title's grid starts inside it.
        return Ok(Vec::new());
    }
    let alg = DelayGuaranteedOnline::new(media_len);
    let forest = alg.forest_after(slots);
    let times = consecutive_slots(slots);
    let mut schedule = ScheduleStream::new(&forest, &times, media_len)?;
    let mut specs = Vec::new();
    // Size the sink from the stream's own contract (`remaining_arrivals`
    // is exact — one spec per arrival) rather than from this call site's
    // knowledge that `forest_after(slots)` covers `slots` arrivals: the
    // pull loop stays allocation-exact even if the forest shape changes.
    let mut out = Vec::with_capacity(schedule.remaining_arrivals());
    while schedule.next_into(&mut specs).is_some() {
        for s in &specs {
            let start = t0 + s.start as u64 * d;
            let end = start + s.length as u64 * d;
            out.push((start, end));
        }
    }
    Ok(out)
}

/// Plans one epoch: the pipeline's producer stage. With a memo the
/// steady-state analyses are shared across epochs (and runs); without one
/// each epoch plans against a fresh cache — either way the chosen plan is
/// bit-identical.
fn plan_stage(
    epochs: &[Epoch],
    job: EpochJob,
    budget: u64,
    candidates_minutes: &[f64],
    memo: Option<&PlannerMemo>,
) -> Result<(DelayPlan, f64), DynamicError> {
    let t = Instant::now();
    let catalog = &epochs[job.epoch].catalog;
    let plan = match memo {
        Some(memo) => plan_weighted_with(catalog, budget, candidates_minutes, memo),
        None => plan_weighted(catalog, budget, candidates_minutes),
    }
    .ok_or(DynamicError::Infeasible {
        epoch: job.epoch,
        start_minute: job.t0,
    })?;
    Ok((plan, t.elapsed().as_secs_f64() * 1e3))
}

/// Materializes one planned epoch's streams: the pipeline's consumer stage.
/// Titles are independent objects, so each title's exact intervals are
/// computed on their own thread (`parallel_map` returns results in input
/// order, and the first failing title in catalog order wins, so the outcome
/// is bit-identical to a sequential run).
fn materialize_stage(
    catalog: &Catalog,
    plan: &DelayPlan,
    job: EpochJob,
) -> Result<Vec<Vec<(u64, u64)>>, DynamicError> {
    let jobs: Vec<(f64, u64)> = catalog
        .titles()
        .iter()
        .zip(&plan.delays_minutes)
        .map(|(title, &delay)| (title.duration_minutes, delay as u64))
        .collect();
    let per_title = parallel_map(&jobs, |&(duration, delay)| {
        title_streams(duration, delay, job.t0, job.t1)
    });
    catalog
        .titles()
        .iter()
        .zip(per_title)
        .map(|(title, streams)| {
            streams.map_err(|source| DynamicError::Schedule {
                epoch: job.epoch,
                title: title.name.clone(),
                source,
            })
        })
        .collect()
}

/// Folds the binned horizon into the report: global and per-epoch
/// steady/transition peaks. Transition windows last one longest-media
/// length after each epoch switch (the first epoch has no predecessor,
/// hence no transition of its own — but a short epoch can end inside the
/// window its own switch opened, which then reaches into its successor).
fn assemble_report(
    epochs: &[Epoch],
    per_minute: Vec<u64>,
    epoch_plans: Vec<EpochPlan>,
    latencies: Vec<(f64, f64)>,
    longest_media: u64,
) -> DynamicReport {
    let in_transition = |m: u64| {
        epochs[1..]
            .iter()
            .any(|e| m >= e.start_minute && m < e.start_minute + longest_media)
    };
    let per_epoch: Vec<EpochBreakdown> = epoch_plans
        .iter()
        .zip(latencies)
        .map(|(ep, (plan_ms, materialize_ms))| {
            let mut peak = 0u64;
            let mut steady = 0u64;
            let mut transition = 0u64;
            for m in ep.start_minute..ep.end_minute {
                let c = per_minute[m as usize];
                peak = peak.max(c);
                if in_transition(m) {
                    transition = transition.max(c);
                } else {
                    steady = steady.max(c);
                }
            }
            EpochBreakdown {
                start_minute: ep.start_minute,
                end_minute: ep.end_minute,
                peak,
                steady_peak: steady,
                transition_peak: transition,
                plan_ms,
                materialize_ms,
            }
        })
        .collect();
    // The live epoch windows tile [0, horizon) exactly (the first epoch
    // starts at 0, each window ends where the next begins, and the last one
    // ends at the horizon), so the global maxima are folds of the per-epoch
    // breakdown — no second pass over the horizon.
    let fold = |f: fn(&EpochBreakdown) -> u64| per_epoch.iter().map(f).max().unwrap_or(0);
    DynamicReport {
        peak: fold(|e| e.peak),
        steady_peak: fold(|e| e.steady_peak),
        transition_peak: fold(|e| e.transition_peak),
        per_minute,
        epoch_plans,
        per_epoch,
    }
}

/// Simulates the epochs against `budget` over `[0, horizon_minutes)` with
/// the default knobs: depth-1 plan-ahead, no shared memo (see
/// [`simulate_dynamic_with`]). The report is bit-identical to
/// [`simulate_dynamic_sequential`] up to the latency fields.
///
/// # Errors
/// [`DynamicError::Infeasible`] if some epoch has no feasible plan;
/// [`DynamicError::Schedule`] if a title's schedule cannot be materialized.
/// Errors are reported in the same deterministic order as the sequential
/// spine (epochs in order; within an epoch, titles in catalog order).
///
/// # Panics
/// Panics if epochs are empty, unsorted, don't start at minute 0, if the
/// horizon is 0, or if any candidate delay is not a whole number of minutes
/// (the minute grid needs integral slots).
pub fn simulate_dynamic(
    epochs: &[Epoch],
    budget: u64,
    candidates_minutes: &[f64],
    horizon_minutes: u64,
) -> Result<DynamicReport, DynamicError> {
    simulate_dynamic_with(
        epochs,
        budget,
        candidates_minutes,
        horizon_minutes,
        &DynamicConfig::default(),
    )
}

/// [`simulate_dynamic`] governed by a [`DynamicConfig`]: the planning stage
/// runs up to `config.plan_ahead` epochs ahead of materialization through
/// the depth-K bounded pipeline, and `config.memo` optionally shares the
/// steady-state analyses across epochs and runs. Every configuration is
/// bit-identical to [`simulate_dynamic_sequential`] up to the latency
/// fields.
///
/// # Errors
/// Same as [`simulate_dynamic`].
///
/// # Panics
/// Same as [`simulate_dynamic`]; additionally panics if
/// `config.plan_ahead == 0` (a pipeline needs at least one slot of
/// plan-ahead — use the sequential spine for no overlap at all).
pub fn simulate_dynamic_with(
    epochs: &[Epoch],
    budget: u64,
    candidates_minutes: &[f64],
    horizon_minutes: u64,
    config: &DynamicConfig,
) -> Result<DynamicReport, DynamicError> {
    assert!(
        config.plan_ahead >= 1,
        "plan_ahead must be at least 1 (use simulate_dynamic_sequential for no overlap)"
    );
    let jobs = epoch_jobs(epochs, candidates_minutes, horizon_minutes);
    // The materialization stage bins each epoch's streams into a
    // difference array as they arrive — O(streams + horizon) with no
    // deferred interval buffer, and count-identical to the sequential
    // spine's sort-based sparse profile.
    let mut diff = vec![0i64; horizon_minutes as usize + 1];
    let mut epoch_plans: Vec<EpochPlan> = Vec::with_capacity(jobs.len());
    let mut latencies: Vec<(f64, f64)> = Vec::with_capacity(jobs.len());
    let mut longest_media = 0u64;

    pipeline(
        jobs.len(),
        config.plan_ahead,
        |k| {
            plan_stage(
                epochs,
                jobs[k],
                budget,
                candidates_minutes,
                config.memo.as_ref(),
            )
        },
        |k, (plan, plan_ms)| {
            let job = jobs[k];
            let t = Instant::now();
            let catalog = &epochs[job.epoch].catalog;
            let per_title = materialize_stage(catalog, &plan, job)?;
            for (title, streams) in catalog.titles().iter().zip(per_title) {
                longest_media = longest_media.max(title.duration_minutes.ceil() as u64);
                for (s, e) in streams {
                    let lo = s.min(horizon_minutes) as usize;
                    let hi = e.min(horizon_minutes) as usize;
                    if lo < hi {
                        diff[lo] += 1;
                        diff[hi] -= 1;
                    }
                }
            }
            epoch_plans.push(EpochPlan {
                start_minute: job.t0,
                end_minute: job.t1,
                plan,
            });
            latencies.push((plan_ms, t.elapsed().as_secs_f64() * 1e3));
            Ok(())
        },
    )?;

    let mut cur = 0i64;
    let per_minute: Vec<u64> = diff[..horizon_minutes as usize]
        .iter()
        .map(|&d| {
            cur += d;
            cur as u64
        })
        .collect();
    Ok(assemble_report(
        epochs,
        per_minute,
        epoch_plans,
        latencies,
        longest_media,
    ))
}

/// The original sequential spine: plans and materializes one epoch at a
/// time on the calling thread, accounting through the sort-based sparse
/// [`BandwidthProfile`]. Kept as the reference implementation the pipelined
/// [`simulate_dynamic`] is pinned against (identical report up to the
/// latency fields), and as the fallback shape for profiling either stage in
/// isolation.
///
/// # Errors
/// Same as [`simulate_dynamic`].
///
/// # Panics
/// Same as [`simulate_dynamic`].
pub fn simulate_dynamic_sequential(
    epochs: &[Epoch],
    budget: u64,
    candidates_minutes: &[f64],
    horizon_minutes: u64,
) -> Result<DynamicReport, DynamicError> {
    simulate_dynamic_sequential_with(
        epochs,
        budget,
        candidates_minutes,
        horizon_minutes,
        &DynamicConfig::default(),
    )
}

/// [`simulate_dynamic_sequential`] honoring `config.memo` (the sequential
/// spine has no pipeline, so `config.plan_ahead` is ignored): the reference
/// spine for memo-carrying runs. Bit-identical to every other
/// spine/configuration up to the latency fields.
///
/// # Errors
/// Same as [`simulate_dynamic`].
///
/// # Panics
/// Same as [`simulate_dynamic`].
pub fn simulate_dynamic_sequential_with(
    epochs: &[Epoch],
    budget: u64,
    candidates_minutes: &[f64],
    horizon_minutes: u64,
    config: &DynamicConfig,
) -> Result<DynamicReport, DynamicError> {
    let jobs = epoch_jobs(epochs, candidates_minutes, horizon_minutes);
    let mut intervals: Vec<(i64, i64)> = Vec::new();
    let mut epoch_plans: Vec<EpochPlan> = Vec::with_capacity(jobs.len());
    let mut latencies: Vec<(f64, f64)> = Vec::with_capacity(jobs.len());
    let mut longest_media = 0u64;

    for &job in &jobs {
        let (plan, plan_ms) = plan_stage(
            epochs,
            job,
            budget,
            candidates_minutes,
            config.memo.as_ref(),
        )?;
        let t = Instant::now();
        let catalog = &epochs[job.epoch].catalog;
        let per_title = materialize_stage(catalog, &plan, job)?;
        for (title, streams) in catalog.titles().iter().zip(per_title) {
            longest_media = longest_media.max(title.duration_minutes.ceil() as u64);
            for (s, e) in streams {
                intervals.push((s.min(horizon_minutes) as i64, e.min(horizon_minutes) as i64));
            }
        }
        epoch_plans.push(EpochPlan {
            start_minute: job.t0,
            end_minute: job.t1,
            plan,
        });
        latencies.push((plan_ms, t.elapsed().as_secs_f64() * 1e3));
    }

    let profile = BandwidthProfile::from_intervals(intervals);
    let per_minute: Vec<u64> = profile
        .window(0, horizon_minutes as i64)
        .into_iter()
        .map(u64::from)
        .collect();
    Ok(assemble_report(
        epochs,
        per_minute,
        epoch_plans,
        latencies,
        longest_media,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Title;

    fn catalog(n: usize) -> Catalog {
        Catalog::zipf(n, 1.0, &[100.0, 80.0])
    }

    const CANDS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

    /// Bit-identical comparison of everything except the latency fields
    /// (which measure the run itself).
    fn assert_reports_identical(a: &DynamicReport, b: &DynamicReport) {
        if let Some(diff) = a.deterministic_diff(b) {
            panic!("reports diverge: {diff}");
        }
    }

    #[test]
    fn single_epoch_respects_budget_and_degenerates_to_sequential() {
        let epochs = [Epoch {
            start_minute: 0,
            catalog: catalog(3),
        }];
        let budget = 30;
        let report = simulate_dynamic(&epochs, budget, &CANDS, 800).unwrap();
        assert!(report.peak <= report.epoch_plans[0].plan.total_peak);
        assert!(report.epoch_plans[0].plan.total_peak <= budget);
        assert_eq!(report.transition_peak, 0, "no switch, no transition");
        assert_eq!(report.peak, report.steady_peak);
        // One epoch: the pipeline runs inline and still matches the spine.
        let seq = simulate_dynamic_sequential(&epochs, budget, &CANDS, 800).unwrap();
        assert_reports_identical(&report, &seq);
        assert_eq!(report.per_epoch.len(), 1);
        assert_eq!(report.per_epoch[0].peak, report.peak);
    }

    #[test]
    fn growing_catalog_keeps_steady_state_under_budget() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
            Epoch {
                start_minute: 400,
                catalog: catalog(6),
            },
        ];
        let budget = 40;
        let report = simulate_dynamic(&epochs, budget, &CANDS, 1200).unwrap();
        for ep in &report.epoch_plans {
            assert!(ep.plan.total_peak <= budget);
        }
        assert!(report.steady_peak <= budget);
        // The transition may briefly stack old and new streams, but never
        // beyond the two adjacent plans combined.
        let combined =
            report.epoch_plans[0].plan.total_peak + report.epoch_plans[1].plan.total_peak;
        assert!(report.transition_peak <= combined);
        // The global peaks are the maxima of the per-epoch breakdown.
        assert_eq!(
            report.peak,
            report.per_epoch.iter().map(|e| e.peak).max().unwrap()
        );
        assert_eq!(
            report.transition_peak,
            report
                .per_epoch
                .iter()
                .map(|e| e.transition_peak)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn pipelined_matches_sequential_on_multi_epoch_catalogs() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
            Epoch {
                start_minute: 300,
                catalog: catalog(6),
            },
            Epoch {
                start_minute: 700,
                catalog: catalog(4),
            },
        ];
        for budget in [25u64, 40, 200] {
            let piped = simulate_dynamic(&epochs, budget, &CANDS, 1100);
            let seq = simulate_dynamic_sequential(&epochs, budget, &CANDS, 1100);
            match (piped, seq) {
                (Ok(a), Ok(b)) => assert_reports_identical(&a, &b),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("spines disagree: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn shrinking_catalog_buys_shorter_delays() {
        let big = catalog(8);
        let small = catalog(2);
        // Tight budget: exactly what the big catalog needs at the largest
        // candidate delay — feasible for it, comfortable for the small one.
        let budget = plan_weighted(&big, u64::MAX, &[10.0]).unwrap().total_peak;
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: big,
            },
            Epoch {
                start_minute: 500,
                catalog: small,
            },
        ];
        let report = simulate_dynamic(&epochs, budget, &CANDS, 1000).unwrap();
        let before = report.epoch_plans[0].plan.expected_delay;
        let after = report.epoch_plans[1].plan.expected_delay;
        assert!(
            after <= before,
            "fewer titles should afford shorter delays: {after} vs {before}"
        );
    }

    #[test]
    fn infeasible_epoch_returns_typed_error() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(1),
            },
            Epoch {
                start_minute: 200,
                catalog: catalog(10),
            },
        ];
        let err = simulate_dynamic(&epochs, 1, &CANDS, 500).unwrap_err();
        assert_eq!(
            err,
            DynamicError::Infeasible {
                epoch: 0,
                start_minute: 0
            }
        );
        assert!(err.to_string().contains("epoch 0"));
        assert_eq!(
            err,
            simulate_dynamic_sequential(&epochs, 1, &CANDS, 500).unwrap_err()
        );
    }

    #[test]
    fn epoch_shorter_than_one_delay_slot_contributes_no_streams() {
        // Epoch 1 lives for 3 minutes but every feasible delay is 5 or 10
        // minutes — no slot of its grid starts inside the window, so only
        // epoch 0's (and epoch 2's) streams exist.
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
            Epoch {
                start_minute: 400,
                catalog: catalog(8),
            },
            Epoch {
                start_minute: 403,
                catalog: catalog(2),
            },
        ];
        let budget = plan_weighted(&catalog(8), u64::MAX, &[10.0])
            .unwrap()
            .total_peak;
        let piped = simulate_dynamic(&epochs, budget, &[5.0, 10.0], 800).unwrap();
        let seq = simulate_dynamic_sequential(&epochs, budget, &[5.0, 10.0], 800).unwrap();
        assert_reports_identical(&piped, &seq);
        // The sliver epoch still got a plan and a breakdown entry.
        assert_eq!(piped.epoch_plans.len(), 3);
        assert_eq!(piped.epoch_plans[1].start_minute, 400);
        assert_eq!(piped.epoch_plans[1].end_minute, 403);
    }

    #[test]
    fn retired_title_streams_straddle_two_transitions() {
        // Epoch 0 serves a long title that is retired at minute 60; its
        // committed streams (up to 200 minutes long) are still draining when
        // the second switch at minute 120 happens — the old streams straddle
        // both transition windows, and both spines must bin them alike.
        let long_title = Catalog::new(vec![
            Title {
                name: "marathon".into(),
                duration_minutes: 200.0,
                weight: 3.0,
            },
            Title {
                name: "short".into(),
                duration_minutes: 40.0,
                weight: 1.0,
            },
        ]);
        let small = Catalog::new(vec![Title {
            name: "short".into(),
            duration_minutes: 40.0,
            weight: 1.0,
        }]);
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: long_title,
            },
            Epoch {
                start_minute: 60,
                catalog: small.clone(),
            },
            Epoch {
                start_minute: 120,
                catalog: small,
            },
        ];
        let piped = simulate_dynamic(&epochs, 100, &CANDS, 400).unwrap();
        let seq = simulate_dynamic_sequential(&epochs, 100, &CANDS, 400).unwrap();
        assert_reports_identical(&piped, &seq);
        // The marathon's root stream runs 200 minutes from minute 0: it is
        // still live after the second switch at 120.
        assert!(
            piped.per_minute[150] > 0,
            "retired title's streams must keep draining"
        );
        // Transition windows last one longest-media length (200 min) after
        // each switch: epoch 1's whole window [60, 120) lies inside the
        // first one, and epoch 2 is in transition until minute 320.
        assert!(piped.transition_peak > 0);
        assert_eq!(piped.per_epoch[1].steady_peak, 0);
        assert!(piped.per_epoch[2].transition_peak > 0);
    }

    #[test]
    fn every_depth_and_memo_combination_matches_the_default_spine() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
            Epoch {
                start_minute: 300,
                catalog: catalog(6),
            },
            Epoch {
                start_minute: 700,
                catalog: catalog(4),
            },
        ];
        let baseline = simulate_dynamic_sequential(&epochs, 40, &CANDS, 1100).unwrap();
        let shared = PlannerMemo::new();
        for plan_ahead in [1usize, 2, 4, 16] {
            for memo in [None, Some(shared.clone())] {
                let config = DynamicConfig { plan_ahead, memo };
                let got = simulate_dynamic_with(&epochs, 40, &CANDS, 1100, &config).unwrap();
                assert_reports_identical(&got, &baseline);
            }
        }
        // The sequential spine honors the memo too.
        let config = DynamicConfig::default().with_memo(shared.clone());
        let seq = simulate_dynamic_sequential_with(&epochs, 40, &CANDS, 1100, &config).unwrap();
        assert_reports_identical(&seq, &baseline);
        assert!(shared.hits() > 0, "overlapping catalogs must hit the memo");
    }

    #[test]
    fn shared_memo_avoids_reanalysis_across_runs() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(3),
            },
            Epoch {
                start_minute: 200,
                catalog: catalog(3),
            },
        ];
        let memo = PlannerMemo::new();
        let config = DynamicConfig::depth(2).with_memo(memo.clone());
        let first = simulate_dynamic_with(&epochs, 30, &CANDS, 600, &config).unwrap();
        let analyses = memo.misses();
        assert!(analyses > 0);
        let second = simulate_dynamic_with(&epochs, 30, &CANDS, 600, &config).unwrap();
        assert_reports_identical(&first, &second);
        assert_eq!(
            memo.misses(),
            analyses,
            "the second run must be served entirely from the memo"
        );
    }

    #[test]
    #[should_panic(expected = "plan_ahead must be at least 1")]
    fn zero_plan_ahead_panics() {
        let epochs = [Epoch {
            start_minute: 0,
            catalog: catalog(1),
        }];
        let _ = simulate_dynamic_with(&epochs, 100, &CANDS, 100, &DynamicConfig::depth(0));
    }

    #[test]
    #[should_panic]
    fn unsorted_epochs_panic() {
        let epochs = [
            Epoch {
                start_minute: 0,
                catalog: catalog(1),
            },
            Epoch {
                start_minute: 0,
                catalog: catalog(2),
            },
        ];
        let _ = simulate_dynamic(&epochs, 100, &CANDS, 100);
    }

    #[test]
    #[should_panic]
    fn fractional_candidate_delays_panic() {
        let epochs = [Epoch {
            start_minute: 0,
            catalog: catalog(1),
        }];
        let _ = simulate_dynamic(&epochs, 100, &[1.5], 100);
    }
}
