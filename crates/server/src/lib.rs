#![forbid(unsafe_code)]
//! Multi-object Media-on-Demand server — the §5 "future work" of the paper,
//! built out.
//!
//! §5: *"An area for future work is to consider the practical case of a
//! server that serves multiple media objects. In a situation such as this
//! one, studying the maximum bandwidth rather than average bandwidth usage
//! is likely to be important. … By increasing the guaranteed delay, we can
//! ensure that we never go over the fixed maximum bandwidth and still never
//! have to decline a client request."*
//!
//! This crate operationalizes that paragraph:
//!
//! * [`catalog`] — a set of titles with popularity weights (Zipf-distributed
//!   by default, the standard VoD popularity model), each title served by
//!   the Delay Guaranteed algorithm on its own slot grid;
//! * [`zipf`] — an exact inverse-CDF Zipf sampler for request generation;
//! * [`planner`] — **per-title** guaranteed-delay assignment minimizing the
//!   popularity-weighted expected delay subject to an aggregate
//!   peak-bandwidth budget (popular titles get short delays, long-tail
//!   titles absorb the slack), with a brute-force cross-check;
//! * [`admission`] — minute-grained aggregation of the per-title periodic
//!   DG bandwidth profiles, demonstrating the §5 claim: the planned peak
//!   never exceeds the budget and no request is ever declined, because DG
//!   bandwidth is *deterministic* (it does not depend on the request
//!   process at all).

//! * [`dynamic`] — epoch-by-epoch re-planning with stream-exact transition
//!   accounting: the §5 point that dynamic channel allocation lets the
//!   server *change* the guaranteed delay without tearing anything down.
//!
//! Titles are independent objects, so the expensive per-title work —
//! steady-state capacity analyses in [`planner`], periodic profiles in
//! [`admission`], exact stream materialization in [`dynamic`] — is sharded
//! across threads with [`sm_core::parallel_map`]. Results are collected in
//! input order, so every report is bit-identical to a sequential run. On
//! top of that sharding, [`dynamic`] pipelines *across* epochs with
//! [`sm_core::pipeline`]: planning runs up to
//! [`DynamicConfig::plan_ahead`](dynamic::DynamicConfig) epochs ahead of
//! materialization, with [`dynamic::simulate_dynamic_sequential`] kept as
//! the bit-identical reference spine. The analyses themselves are cached
//! in a [`memo::PlannerMemo`] — a shared cross-epoch (and cross-run)
//! handle that pays for each distinct media length once.
//!
//! # Example
//!
//! ```
//! use sm_server::{plan_weighted, simulate_requests, Catalog};
//!
//! // Six Zipf-popular titles under a 30-stream license.
//! let catalog = Catalog::zipf(6, 1.0, &[120.0, 90.0]);
//! let plan = plan_weighted(&catalog, 30, &[1.0, 2.0, 5.0, 10.0, 20.0])
//!     .expect("30 streams fit at some delay mix");
//! assert!(plan.total_peak <= 30);
//! // Popular titles never wait longer than the long tail.
//! assert!(plan.delays_minutes[0] <= plan.delays_minutes[5]);
//!
//! // A day of Poisson requests: nobody is declined (§5's claim).
//! let report = simulate_requests(&catalog, &plan, 1440.0, 2.0, 7);
//! assert_eq!(report.declined, 0);
//! ```

pub mod admission;
pub mod catalog;
pub mod dynamic;
pub mod memo;
pub mod planner;
pub mod zipf;

pub use admission::{
    aggregate_profile, aggregate_profile_with, simulate_requests, AggregateReport, RequestReport,
};
pub use catalog::{Catalog, Title};
pub use dynamic::{
    simulate_dynamic, simulate_dynamic_sequential, simulate_dynamic_sequential_with,
    simulate_dynamic_with, DynamicConfig, DynamicError, DynamicReport, Epoch, EpochBreakdown,
    EpochPlan,
};
pub use memo::PlannerMemo;
pub use planner::{brute_force_plan, plan_weighted, plan_weighted_with, DelayPlan};
pub use zipf::Zipf;
