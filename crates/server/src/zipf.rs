//! Exact inverse-CDF Zipf sampler.
//!
//! VoD request popularity is conventionally modeled as Zipf-distributed: the
//! `i`-th most popular of `n` titles is requested with probability
//! proportional to `1/i^s`. The sampler precomputes the normalized CDF once
//! and draws by binary search, so sampling is `O(log n)` with no rejection.

use rand::{Rng, RngExt};

/// A Zipf(`n`, `s`) distribution over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[n−1] == 1.0` exactly (forced).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n ≥ 1` titles with exponent `s ≥ 0`
    /// (`s = 0` is uniform; classic VoD studies use `s ≈ 0.7..1.0`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one title");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (i as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against float rounding at the top end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff there are no ranks (never — construction requires n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn classic_zipf_one() {
        // s = 1, n = 3: weights 1, 1/2, 1/3; total 11/6.
        let z = Zipf::new(3, 1.0);
        assert!((z.pmf(0) - 6.0 / 11.0).abs() < 1e-12);
        assert!((z.pmf(1) - 3.0 / 11.0).abs() < 1e-12);
        assert!((z.pmf(2) - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let draws = 200_000;
        let mut counts = [0u64; 10];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - z.pmf(i)).abs() < 0.01,
                "rank {i}: freq {freq} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn binary_search_sampler_matches_linear_scan_exactly() {
        // Pin: the O(log n) partition-point draw must agree *exactly* with
        // the old O(n) linear scan over the identical normalized CDF, on
        // the same seeded RNG stream.
        fn reference_cdf(n: usize, s: f64) -> Vec<f64> {
            // Byte-for-byte the construction in `Zipf::new`, so the float
            // rounding is identical.
            let mut cdf: Vec<f64> = Vec::with_capacity(n);
            let mut acc = 0.0;
            for i in 1..=n {
                acc += (i as f64).powf(-s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            *cdf.last_mut().unwrap() = 1.0;
            cdf
        }
        for (n, s, seed) in [
            (1usize, 0.9, 5u64),
            (10, 1.0, 7),
            (500, 0.7, 42),
            (97, 0.0, 3),
        ] {
            let z = Zipf::new(n, s);
            let cdf = reference_cdf(n, s);
            let mut fast_rng = SmallRng::seed_from_u64(seed);
            let mut slow_rng = SmallRng::seed_from_u64(seed);
            for draw in 0..10_000 {
                let fast = z.sample(&mut fast_rng);
                let u: f64 = slow_rng.random();
                let slow = cdf.iter().position(|&c| c >= u).unwrap_or(n - 1).min(n - 1);
                assert_eq!(fast, slow, "n = {n}, s = {s}, draw {draw}");
            }
        }
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic]
    fn zero_titles_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_exponent_rejected() {
        let _ = Zipf::new(3, -0.5);
    }
}
