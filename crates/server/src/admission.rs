//! Aggregate bandwidth and request-level simulation of the multi-title
//! server.
//!
//! The Delay Guaranteed algorithm's bandwidth is *deterministic*: streams
//! start on the slot grid whether or not clients arrived, so a title's
//! steady-state load is a fixed periodic profile (period `F_h` slots). The
//! aggregate load of a catalog is the phase-aligned sum of those profiles on
//! a common minute grid — [`aggregate_profile`] computes it and shows the
//! planned worst case (`Σ` per-title peaks) is honored, usually with slack
//! (titles do not peak simultaneously).
//!
//! [`simulate_requests`] drives Zipf-popular Poisson requests against the
//! plan: every request is served at its title's next slot boundary, so the
//! wait is bounded by the planned per-title delay and **no request is ever
//! declined** — the §5 claim, observable in the report.
//!
//! ```
//! use sm_server::{aggregate_profile, plan_weighted, simulate_requests, Catalog};
//!
//! let catalog = Catalog::zipf(2, 1.0, &[60.0]);
//! let plan = plan_weighted(&catalog, u64::MAX, &[2.0, 5.0]).unwrap();
//! // The measured aggregate peak honors the planned worst case…
//! let agg = aggregate_profile(&catalog, &plan, 300);
//! assert!(agg.peak <= plan.total_peak);
//! // …and five hours of Poisson requests are all admitted.
//! let report = simulate_requests(&catalog, &plan, 300.0, 1.0, 7);
//! assert_eq!(report.declined, 0);
//! assert!(report.max_wait <= 5.0 + 1e-9);
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::catalog::Catalog;
use crate::memo::PlannerMemo;
use crate::planner::DelayPlan;
use sm_core::consecutive_slots;
use sm_online::delay_guaranteed::DelayGuaranteedOnline;
use sm_sim::{stream_schedule, BandwidthProfile};

/// One steady-state period of the DG bandwidth profile for `media_len`,
/// in concurrent streams per slot.
pub fn periodic_profile(media_len: u64) -> Vec<u32> {
    let alg = DelayGuaranteedOnline::new(media_len);
    let period = alg.tree_size();
    let periods_needed = media_len.div_ceil(period) + 2;
    let n = ((2 * periods_needed + 2) * period) as usize;
    let forest = alg.forest_after(n);
    let times = consecutive_slots(n);
    let specs = stream_schedule(&forest, &times, media_len).expect("slot-scale media length");
    let profile = BandwidthProfile::from_streams(&specs);
    let lo = profile.origin() + media_len as i64;
    profile.window(lo, lo + period as i64)
}

/// Minute-grained aggregate load of a planned catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReport {
    /// Concurrent streams per minute over the horizon.
    pub per_minute: Vec<u64>,
    /// Maximum aggregate concurrent streams observed.
    pub peak: u64,
    /// Average aggregate concurrent streams.
    pub average: f64,
}

/// Sums the per-title periodic DG profiles over `horizon_minutes`, with all
/// titles phase-aligned at minute 0 (the conservative alignment; servers may
/// stagger phases to do even better).
pub fn aggregate_profile(
    catalog: &Catalog,
    plan: &DelayPlan,
    horizon_minutes: u64,
) -> AggregateReport {
    aggregate_profile_with(catalog, plan, horizon_minutes, &PlannerMemo::new())
}

/// [`aggregate_profile`] with a caller-owned [`PlannerMemo`]: each distinct
/// media length's periodic profile is derived once per memo lifetime (the
/// memo's seeding stage shards the unseen lengths across threads), so
/// catalogs with repeated durations — and repeated admission checks against
/// overlapping catalogs — reuse earlier derivations. The report is
/// **bit-identical** to [`aggregate_profile`]'s.
pub fn aggregate_profile_with(
    catalog: &Catalog,
    plan: &DelayPlan,
    horizon_minutes: u64,
    memo: &PlannerMemo,
) -> AggregateReport {
    assert_eq!(plan.delays_minutes.len(), catalog.len());
    assert!(horizon_minutes > 0);
    // Each title's periodic profile is an independent forest + schedule
    // construction: the memo shards the distinct unseen ones across
    // threads (order-preserving, so the aggregate is bit-identical to a
    // sequential sum), then every title fetches its shared profile.
    let jobs: Vec<(f64, u64)> = catalog
        .titles()
        .iter()
        .zip(&plan.delays_minutes)
        .map(|(t, &d)| (d, t.media_len(d)))
        .collect();
    memo.seed_profiles(jobs.iter().map(|&(_, l)| l).collect());
    let profiles: Vec<(f64, std::sync::Arc<Vec<u32>>)> = jobs
        .iter()
        .map(|&(d, media_len)| (d, memo.periodic(media_len)))
        .collect();
    let mut per_minute = vec![0u64; horizon_minutes as usize];
    for (m, slot_count) in per_minute.iter_mut().enumerate() {
        for (delay, profile) in &profiles {
            let slot = (m as f64 / delay).floor() as usize;
            *slot_count += profile[slot % profile.len()] as u64;
        }
    }
    let peak = per_minute.iter().copied().max().unwrap_or(0);
    let average = per_minute.iter().map(|&c| c as f64).sum::<f64>() / per_minute.len() as f64;
    AggregateReport {
        per_minute,
        peak,
        average,
    }
}

/// Outcome of a request-level simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestReport {
    /// Requests served.
    pub served: u64,
    /// Requests declined — always 0 under DG (§5), kept explicit.
    pub declined: u64,
    /// Mean wait until playback, in minutes.
    pub mean_wait: f64,
    /// Largest wait observed, in minutes.
    pub max_wait: f64,
    /// The planned popularity-weighted delay bound `Σ p_i · D_i`.
    pub expected_delay_bound: f64,
    /// Requests per title.
    pub per_title: Vec<u64>,
}

/// Simulates Poisson requests (`rate_per_minute` total) with popularity
/// proportional to the catalog weights, served by the planned per-title DG
/// grids. Every request waits for its title's next slot boundary.
pub fn simulate_requests(
    catalog: &Catalog,
    plan: &DelayPlan,
    horizon_minutes: f64,
    rate_per_minute: f64,
    seed: u64,
) -> RequestReport {
    assert!(horizon_minutes > 0.0 && rate_per_minute > 0.0);
    assert_eq!(plan.delays_minutes.len(), catalog.len());
    let probs = catalog.probabilities();
    // Title CDF for sampling.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cdf.push(acc);
    }
    *cdf.last_mut().expect("non-empty catalog") = 1.0;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut served = 0u64;
    let mut wait_sum = 0.0f64;
    let mut max_wait = 0.0f64;
    let mut per_title = vec![0u64; catalog.len()];
    loop {
        let u: f64 = rng.random();
        t += -(1.0_f64 - u).ln() / rate_per_minute;
        if t > horizon_minutes {
            break;
        }
        let v: f64 = rng.random();
        let title = cdf.partition_point(|&c| c < v).min(cdf.len() - 1);
        let d = plan.delays_minutes[title];
        // Next slot boundary of this title's grid.
        let wait = ((t / d).ceil() * d - t).max(0.0);
        debug_assert!(wait <= d + 1e-9);
        served += 1;
        per_title[title] += 1;
        wait_sum += wait;
        if wait > max_wait {
            max_wait = wait;
        }
    }
    RequestReport {
        served,
        declined: 0,
        mean_wait: if served > 0 {
            wait_sum / served as f64
        } else {
            0.0
        },
        max_wait,
        expected_delay_bound: plan.expected_delay,
        per_title,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Title};
    use crate::planner::plan_weighted;
    use sm_online::capacity::steady_state_bandwidth;

    fn catalog() -> Catalog {
        Catalog::new(vec![
            Title {
                name: "hit".into(),
                duration_minutes: 100.0,
                weight: 4.0,
            },
            Title {
                name: "tail".into(),
                duration_minutes: 80.0,
                weight: 1.0,
            },
        ])
    }

    #[test]
    fn periodic_profile_matches_capacity_peak() {
        for l in [10u64, 50, 100] {
            let profile = periodic_profile(l);
            let s = steady_state_bandwidth(l);
            assert_eq!(profile.len(), s.period as usize);
            assert_eq!(profile.iter().copied().max().unwrap(), s.peak, "media {l}");
        }
    }

    #[test]
    fn aggregate_peak_within_planned_worst_case() {
        let catalog = catalog();
        let plan = plan_weighted(&catalog, u64::MAX, &[2.0, 5.0]).unwrap();
        let agg = aggregate_profile(&catalog, &plan, 2_000);
        assert!(
            agg.peak <= plan.total_peak,
            "{} > {}",
            agg.peak,
            plan.total_peak
        );
        assert!(agg.average <= agg.peak as f64);
        assert!(agg.peak > 0);
    }

    #[test]
    fn memoized_aggregate_is_bit_identical_and_reuses_profiles() {
        let catalog = catalog();
        let plan = plan_weighted(&catalog, u64::MAX, &[2.0, 5.0]).unwrap();
        let memo = PlannerMemo::new();
        let fresh = aggregate_profile(&catalog, &plan, 500);
        let memod = aggregate_profile_with(&catalog, &plan, 500, &memo);
        assert_eq!(fresh, memod, "memo must not change the aggregate");
        let derivations = memo.misses();
        assert!(derivations > 0);
        let again = aggregate_profile_with(&catalog, &plan, 500, &memo);
        assert_eq!(fresh, again);
        assert_eq!(
            memo.misses(),
            derivations,
            "repeat admission checks must reuse the cached profiles"
        );
        assert!(memo.hits() > 0);
    }

    #[test]
    fn no_request_is_declined_and_waits_are_bounded() {
        let catalog = catalog();
        let plan = plan_weighted(&catalog, u64::MAX, &[1.0, 2.0, 5.0]).unwrap();
        let report = simulate_requests(&catalog, &plan, 1_000.0, 3.0, 11);
        assert_eq!(report.declined, 0);
        assert!(report.served > 2_000);
        let max_delay = plan.delays_minutes.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(report.max_wait <= max_delay + 1e-9);
        assert!(report.mean_wait <= report.max_wait);
    }

    #[test]
    fn popular_title_draws_more_requests() {
        let catalog = catalog();
        let plan = plan_weighted(&catalog, u64::MAX, &[1.0]).unwrap();
        let report = simulate_requests(&catalog, &plan, 5_000.0, 2.0, 3);
        // Weights 4:1 — the hit should see roughly 4x the tail's requests.
        let ratio = report.per_title[0] as f64 / report.per_title[1] as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mean_wait_is_about_half_the_uniform_delay() {
        // Single title, delay D: Poisson arrivals wait U(0, D) on average
        // D/2.
        let one = Catalog::new(vec![Title {
            name: "solo".into(),
            duration_minutes: 60.0,
            weight: 1.0,
        }]);
        let plan = plan_weighted(&one, u64::MAX, &[4.0]).unwrap();
        let report = simulate_requests(&one, &plan, 20_000.0, 1.0, 5);
        assert!(
            (report.mean_wait - 2.0).abs() < 0.1,
            "mean {}",
            report.mean_wait
        );
    }
}
