//! Cross-epoch planner memo: one shared cache of the Delay Guaranteed
//! steady-state analyses.
//!
//! Every expensive per-title computation in this crate is a deterministic
//! function of the title's **media length** alone: the planner's
//! [`steady_state_bandwidth`] peak and the admission layer's
//! [`periodic_profile`]. Catalogs overlap heavily in practice — epochs
//! share titles, different titles share durations, and different
//! `(duration, delay)` pairs collide on the same media length — so
//! re-deriving those analyses per epoch (or per run) pays the same forest
//! construction over and over.
//!
//! [`PlannerMemo`] is a cheaply cloneable handle (an `Arc` around the
//! caches) that callers thread through
//! [`plan_weighted_with`](crate::planner::plan_weighted_with),
//! [`simulate_dynamic_with`](crate::dynamic::simulate_dynamic_with) / the
//! sequential spine (`crate::dynamic`, via
//! [`DynamicConfig`](crate::dynamic::DynamicConfig)), and
//! [`aggregate_profile_with`](crate::admission::aggregate_profile_with):
//! each distinct media
//! length is analyzed **once per memo lifetime** instead of once per epoch.
//! The [`seed_peaks`](PlannerMemo::seed_peaks) bulk stage shards the
//! analyses across threads with [`parallel_map`] — and only analyzes
//! lengths the memo has not seen — while point lookups go through
//! [`peak`](PlannerMemo::peak) / [`periodic`](PlannerMemo::periodic).
//!
//! Because the cached functions are pure, a memo-carrying run is
//! **bit-identical** to a memo-free one (pinned by proptest in
//! `crates/server/tests/proptests.rs`); the memo only changes how often the
//! analyses execute, which the [`hits`](PlannerMemo::hits) /
//! [`misses`](PlannerMemo::misses) counters make observable (and
//! `benches/scale.rs` records in `BENCH_scale.json` as `memo_hits`).
//!
//! ```
//! use sm_server::{plan_weighted_with, Catalog, PlannerMemo};
//!
//! let memo = PlannerMemo::new();
//! let catalog = Catalog::zipf(4, 1.0, &[90.0, 120.0]);
//! let first = plan_weighted_with(&catalog, u64::MAX, &[2.0, 5.0], &memo).unwrap();
//! let analyses_after_first = memo.misses();
//! // Re-planning the same catalog is served entirely from the memo…
//! let second = plan_weighted_with(&catalog, u64::MAX, &[2.0, 5.0], &memo).unwrap();
//! assert_eq!(first, second);
//! assert_eq!(memo.misses(), analyses_after_first);
//! assert!(memo.hits() > 0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::admission::periodic_profile;
use sm_core::parallel_map;
use sm_online::capacity::steady_state_bandwidth;

/// Shared, thread-safe cache of per-media-length steady-state analyses.
///
/// Cloning is cheap and shares the underlying caches, so one handle can be
/// threaded through the planner (on the dynamic pipeline's producer thread),
/// the admission layer, and across whole simulation runs. All cached values
/// are pure functions of the media length, so sharing never changes any
/// result — only how often the analyses run.
#[derive(Debug, Clone, Default)]
pub struct PlannerMemo {
    inner: Arc<MemoInner>,
}

#[derive(Debug, Default)]
struct MemoInner {
    /// `media_len → steady_state_bandwidth(media_len).peak`.
    peaks: Mutex<HashMap<u64, u32>>,
    /// `media_len → periodic_profile(media_len)` (admission layer).
    profiles: Mutex<HashMap<u64, Arc<Vec<u32>>>>,
    /// Lookups served from a cache (either map).
    hits: AtomicU64,
    /// Fresh analyses executed (either map; bulk seeding counts each
    /// newly analyzed length once).
    misses: AtomicU64,
}

impl PlannerMemo {
    /// An empty memo: every length is analyzed on first demand.
    pub fn new() -> Self {
        Self::default()
    }

    fn peaks(&self) -> MutexGuard<'_, HashMap<u64, u32>> {
        self.inner.peaks.lock().expect("planner memo poisoned")
    }

    fn profiles(&self) -> MutexGuard<'_, HashMap<u64, Arc<Vec<u32>>>> {
        self.inner.profiles.lock().expect("planner memo poisoned")
    }

    fn count_hit(&self) {
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn count_misses(&self, n: u64) {
        self.inner.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// The steady-state Delay Guaranteed peak for `media_len`, computed on
    /// first demand and cached thereafter.
    pub fn peak(&self, media_len: u64) -> u32 {
        if let Some(&p) = self.peaks().get(&media_len) {
            self.count_hit();
            return p;
        }
        // Analyze outside the lock: concurrent callers may race to compute
        // the same (pure, deterministic) value, never a different one.
        let p = steady_state_bandwidth(media_len).peak;
        self.count_misses(1);
        self.peaks().insert(media_len, p);
        p
    }

    /// One steady-state period of the DG bandwidth profile for `media_len`
    /// (the admission layer's [`periodic_profile`]), cached behind an `Arc`
    /// so repeated titles share one allocation.
    pub fn periodic(&self, media_len: u64) -> Arc<Vec<u32>> {
        if let Some(p) = self.profiles().get(&media_len) {
            self.count_hit();
            return Arc::clone(p);
        }
        let p = Arc::new(periodic_profile(media_len));
        self.count_misses(1);
        self.profiles()
            .entry(media_len)
            .or_insert(p.clone())
            .clone()
    }

    /// Bulk-seeds the peak cache: dedups `lens`, drops every length the
    /// memo has already seen, and analyzes the remainder across threads
    /// with [`parallel_map`]. The planner calls this before its greedy
    /// relaxation so the expensive analyses shard while the greedy itself
    /// stays sequential (and bit-identical).
    pub fn seed_peaks(&self, mut lens: Vec<u64>) {
        lens.sort_unstable();
        lens.dedup();
        {
            let cache = self.peaks();
            lens.retain(|l| !cache.contains_key(l));
        }
        if lens.is_empty() {
            return;
        }
        let peaks = parallel_map(&lens, |&l| steady_state_bandwidth(l).peak);
        self.count_misses(lens.len() as u64);
        self.peaks().extend(lens.into_iter().zip(peaks));
    }

    /// Bulk-seeds the periodic-profile cache (admission's analogue of
    /// [`seed_peaks`](Self::seed_peaks)): only lengths the memo has not
    /// seen are derived, sharded across threads.
    pub fn seed_profiles(&self, mut lens: Vec<u64>) {
        lens.sort_unstable();
        lens.dedup();
        {
            let cache = self.profiles();
            lens.retain(|l| !cache.contains_key(l));
        }
        if lens.is_empty() {
            return;
        }
        let profiles = parallel_map(&lens, |&l| Arc::new(periodic_profile(l)));
        self.count_misses(lens.len() as u64);
        self.profiles().extend(lens.into_iter().zip(profiles));
    }

    /// Lookups served from a cache so far (both caches combined).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Fresh analyses executed so far (both caches combined).
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct media lengths currently cached (both caches
    /// combined; a length analyzed by both counts twice).
    pub fn distinct_lengths(&self) -> usize {
        self.peaks().len() + self.profiles().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_uncached_analysis_and_counts_hits() {
        let memo = PlannerMemo::new();
        for l in [10u64, 50, 100, 50, 10] {
            assert_eq!(memo.peak(l), steady_state_bandwidth(l).peak);
        }
        assert_eq!(memo.misses(), 3, "three distinct lengths analyzed");
        assert_eq!(memo.hits(), 2, "two repeats served from the cache");
        assert_eq!(memo.distinct_lengths(), 3);
    }

    #[test]
    fn periodic_matches_uncached_profile_and_shares_the_allocation() {
        let memo = PlannerMemo::new();
        let a = memo.periodic(40);
        assert_eq!(*a, periodic_profile(40));
        let b = memo.periodic(40);
        assert!(Arc::ptr_eq(&a, &b), "repeat lookups share one allocation");
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn seeding_skips_lengths_already_seen() {
        let memo = PlannerMemo::new();
        memo.seed_peaks(vec![20, 30, 20, 30]);
        assert_eq!(memo.misses(), 2, "duplicates dedup before analysis");
        memo.seed_peaks(vec![30, 40]);
        assert_eq!(memo.misses(), 3, "only the unseen length is analyzed");
        assert_eq!(memo.peak(40), steady_state_bandwidth(40).peak);
        assert_eq!(memo.hits(), 1);
        memo.seed_profiles(vec![20, 25]);
        memo.seed_profiles(vec![25]);
        assert_eq!(memo.misses(), 5, "profile seeding skips seen lengths too");
    }

    #[test]
    fn clones_share_the_caches() {
        let memo = PlannerMemo::new();
        let clone = memo.clone();
        clone.peak(60);
        assert_eq!(memo.misses(), 1);
        memo.peak(60);
        assert_eq!(memo.hits(), 1, "the clone's analysis serves the original");
        assert_eq!(clone.hits(), 1);
    }
}
