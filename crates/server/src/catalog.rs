//! Title catalogs with popularity weights.

use crate::zipf::Zipf;

/// One media object in the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Title {
    /// Display name.
    pub name: String,
    /// Playback duration in minutes.
    pub duration_minutes: f64,
    /// Unnormalized popularity weight (relative request rate).
    pub weight: f64,
}

impl Title {
    /// Media length in slots for a guaranteed delay of `delay_minutes`,
    /// clamped to at least 1 slot.
    pub fn media_len(&self, delay_minutes: f64) -> u64 {
        assert!(delay_minutes > 0.0);
        ((self.duration_minutes / delay_minutes).ceil() as u64).max(1)
    }
}

/// An ordered catalog of titles (most popular first by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    titles: Vec<Title>,
}

impl Catalog {
    /// Builds a catalog from explicit titles.
    ///
    /// # Panics
    /// Panics if empty, or if any duration/weight is non-positive.
    pub fn new(titles: Vec<Title>) -> Self {
        assert!(
            !titles.is_empty(),
            "catalog must contain at least one title"
        );
        for t in &titles {
            assert!(
                t.duration_minutes > 0.0,
                "{}: non-positive duration",
                t.name
            );
            assert!(t.weight > 0.0, "{}: non-positive weight", t.name);
        }
        Self { titles }
    }

    /// A synthetic catalog of `n` titles with Zipf(`s`) popularity and the
    /// given playback durations cycled over the titles (e.g. a mix of 90-
    /// and 120-minute movies).
    ///
    /// # Panics
    /// Panics if `n == 0` or `durations_minutes` is empty.
    pub fn zipf(n: usize, s: f64, durations_minutes: &[f64]) -> Self {
        assert!(n >= 1 && !durations_minutes.is_empty());
        let z = Zipf::new(n, s);
        let titles = (0..n)
            .map(|i| Title {
                name: format!("title-{:02}", i + 1),
                duration_minutes: durations_minutes[i % durations_minutes.len()],
                weight: z.pmf(i),
            })
            .collect();
        Self::new(titles)
    }

    /// The titles.
    pub fn titles(&self) -> &[Title] {
        &self.titles
    }

    /// Number of titles.
    pub fn len(&self) -> usize {
        self.titles.len()
    }

    /// `true` iff the catalog has no titles (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.titles.is_empty()
    }

    /// Normalized request probabilities, in title order.
    pub fn probabilities(&self) -> Vec<f64> {
        let total: f64 = self.titles.iter().map(|t| t.weight).sum();
        self.titles.iter().map(|t| t.weight / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_catalog_is_normalized_and_ordered() {
        let c = Catalog::zipf(10, 1.0, &[90.0, 120.0]);
        assert_eq!(c.len(), 10);
        let p = c.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for i in 1..10 {
            assert!(p[i] <= p[i - 1] + 1e-12);
        }
        // Durations cycle.
        assert_eq!(c.titles()[0].duration_minutes, 90.0);
        assert_eq!(c.titles()[1].duration_minutes, 120.0);
        assert_eq!(c.titles()[2].duration_minutes, 90.0);
    }

    #[test]
    fn media_len_rounds_up() {
        let t = Title {
            name: "m".into(),
            duration_minutes: 100.0,
            weight: 1.0,
        };
        assert_eq!(t.media_len(15.0), 7); // ceil(100/15)
        assert_eq!(t.media_len(1.0), 100);
        assert_eq!(t.media_len(500.0), 1); // clamped
    }

    #[test]
    #[should_panic]
    fn empty_catalog_rejected() {
        let _ = Catalog::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        let _ = Catalog::new(vec![Title {
            name: "bad".into(),
            duration_minutes: 90.0,
            weight: 0.0,
        }]);
    }
}
