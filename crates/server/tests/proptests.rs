//! Property-based tests for the multi-object server substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sm_server::{
    plan_weighted, simulate_dynamic, simulate_dynamic_sequential, simulate_dynamic_sequential_with,
    simulate_dynamic_with, simulate_requests, Catalog, DynamicConfig, DynamicError, DynamicReport,
    Epoch, PlannerMemo, Title, Zipf,
};

fn arb_catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec((30.0f64..=180.0, 0.1f64..=10.0), 1..=4).prop_map(|specs| {
        Catalog::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (dur, w))| Title {
                    name: format!("t{i}"),
                    duration_minutes: dur,
                    weight: w,
                })
                .collect(),
        )
    })
}

/// Multi-epoch scenarios: 1–4 epochs whose catalogs grow, shrink, and flip
/// popularity freely, spaced 40–400 minutes apart. Each epoch either draws
/// an independent (usually disjoint) catalog or re-uses its predecessor's
/// verbatim — the overlapping case a cross-epoch memo exists for. The
/// budget menu spans "mostly infeasible" through "unconstrained", and the
/// horizon can fall short of the last switch so skipped epochs are
/// exercised too.
fn arb_dynamic_scenario() -> impl Strategy<Value = (Vec<Epoch>, u64, u64)> {
    (
        proptest::collection::vec((arb_catalog(), 40u64..=400, 0u8..3), 1..=4),
        0usize..5,
        10u64..=500,
    )
        .prop_map(|(specs, budget_idx, tail)| {
            let budgets = [6u64, 12, 24, 48, u64::MAX];
            let mut epochs: Vec<Epoch> = Vec::new();
            let mut start = 0u64;
            for (catalog, gap, reuse) in specs {
                // One case in three repeats the previous epoch's catalog.
                let catalog = match epochs.last() {
                    Some(prev) if reuse == 0 => prev.catalog.clone(),
                    _ => catalog,
                };
                epochs.push(Epoch {
                    start_minute: start,
                    catalog,
                });
                start += gap;
            }
            let last_start = epochs.last().expect("at least one epoch").start_minute;
            // Sometimes shorter than the last switch (that epoch is skipped),
            // sometimes well past it.
            let horizon = (last_start / 2 + tail).max(1);
            (epochs, budgets[budget_idx], horizon)
        })
}

/// Field-by-field equality of two dynamic reports, excluding only the
/// wall-clock latency fields — delegates to the one canonical definition
/// on `DynamicReport`.
fn assert_dynamic_reports_identical(a: &DynamicReport, b: &DynamicReport) {
    if let Some(diff) = a.deterministic_diff(b) {
        panic!("spines diverge: {diff}");
    }
}

/// Two outcomes (report or typed error) agree bit-for-bit.
fn assert_outcomes_identical(
    what: &str,
    got: &Result<DynamicReport, DynamicError>,
    baseline: &Result<DynamicReport, DynamicError>,
) {
    match (got, baseline) {
        (Ok(a), Ok(b)) => {
            if let Some(diff) = a.deterministic_diff(b) {
                panic!("{what} diverges from the baseline: {diff}");
            }
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{what}: different error than the baseline"),
        (a, b) => panic!("{what} disagrees with the baseline: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pipelined dynamic spine is bit-identical to the sequential
    /// reference on arbitrary multi-epoch catalogs — growing, shrinking,
    /// popularity-flipping, under budget squeezes — including *which* error
    /// fires when the budget is infeasible.
    #[test]
    fn pipelined_dynamic_matches_sequential_spine(
        (epochs, budget, horizon) in arb_dynamic_scenario(),
    ) {
        let cands = [1.0, 2.0, 4.0, 8.0, 16.0];
        let piped = simulate_dynamic(&epochs, budget, &cands, horizon);
        let seq = simulate_dynamic_sequential(&epochs, budget, &cands, horizon);
        match (piped, seq) {
            (Ok(a), Ok(b)) => {
                assert_dynamic_reports_identical(&a, &b);
                // The per-epoch breakdown tiles the horizon: global peaks
                // are the maxima over the epoch windows.
                if !a.per_epoch.is_empty() {
                    prop_assert_eq!(
                        a.peak,
                        a.per_epoch.iter().map(|e| e.peak).max().unwrap()
                    );
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "spines disagree: {:?} vs {:?}", a, b),
        }
    }

    /// The full knob matrix is pinned against the memo-free sequential
    /// spine: depth-K plan-ahead for K ∈ {1, 2, 4}, each with and without
    /// a shared cross-run memo, plus the sequential spine carrying the
    /// memo itself. Reports and typed errors must be bit-identical in
    /// every cell — the knobs may only change wall-clock behavior. The
    /// shared memo lives in a `static`, so it genuinely survives the whole
    /// matrix *and* every generated case: a stale or mis-keyed cache entry
    /// left by one scenario would surface as divergence in a later one.
    #[test]
    fn depth_k_and_memo_matrix_matches_sequential_spine(
        (epochs, budget, horizon) in arb_dynamic_scenario(),
    ) {
        static SHARED: std::sync::OnceLock<PlannerMemo> = std::sync::OnceLock::new();
        let cands = [1.0, 2.0, 4.0, 8.0, 16.0];
        let baseline = simulate_dynamic_sequential(&epochs, budget, &cands, horizon);
        let shared = SHARED.get_or_init(PlannerMemo::new).clone();
        for plan_ahead in [1usize, 2, 4] {
            for memo in [None, Some(shared.clone())] {
                let label = format!(
                    "pipelined K = {plan_ahead}, memo = {}",
                    if memo.is_some() { "shared" } else { "none" }
                );
                let config = DynamicConfig { plan_ahead, memo };
                let got = simulate_dynamic_with(&epochs, budget, &cands, horizon, &config);
                assert_outcomes_identical(&label, &got, &baseline);
            }
        }
        let config = DynamicConfig::default().with_memo(shared.clone());
        let seq = simulate_dynamic_sequential_with(&epochs, budget, &cands, horizon, &config);
        assert_outcomes_identical("sequential with shared memo", &seq, &baseline);
        // Every case plans at least one epoch's smallest-delay lengths, so
        // the shared memo must have performed real analyses by now.
        prop_assert!(shared.misses() > 0);
    }

    /// The Zipf CDF is a proper distribution and sampling stays in range.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..=64, s in 0.0f64..=2.5, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Plans always fit their budget, and a larger budget never yields a
    /// worse expected delay.
    #[test]
    fn plans_fit_budget_and_are_monotone(catalog in arb_catalog()) {
        let cands = [1.0, 2.0, 4.0, 8.0, 16.0];
        let unconstrained = plan_weighted(&catalog, u64::MAX, &cands).unwrap();
        let tightest = plan_weighted(&catalog, 0, &cands);
        prop_assert!(tightest.is_none() || tightest.unwrap().total_peak == 0);

        let full = unconstrained.total_peak;
        // Iterating budgets downwards: expected delay must be non-decreasing.
        let mut last_delay = 0.0f64;
        for budget in [full, full * 3 / 4, full / 2, full / 4] {
            if let Some(plan) = plan_weighted(&catalog, budget, &cands) {
                prop_assert!(plan.total_peak <= budget);
                prop_assert!(plan.expected_delay + 1e-9 >= last_delay);
                last_delay = plan.expected_delay;
                // Per-title delays come from the candidate menu.
                for d in &plan.delays_minutes {
                    prop_assert!(cands.contains(d));
                }
            }
        }
    }

    /// Request simulation never declines, bounds every wait by that title's
    /// planned delay, and conserves the request count.
    #[test]
    fn requests_never_declined_waits_bounded(
        catalog in arb_catalog(),
        seed in 0u64..1000,
    ) {
        let cands = [2.0, 5.0];
        let plan = plan_weighted(&catalog, u64::MAX, &cands).unwrap();
        let report = simulate_requests(&catalog, &plan, 300.0, 1.0, seed);
        prop_assert_eq!(report.declined, 0);
        prop_assert_eq!(report.per_title.iter().sum::<u64>(), report.served);
        let max_planned = plan.delays_minutes.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(report.max_wait <= max_planned + 1e-9);
    }
}
