//! Property-based tests for the multi-object server substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sm_server::{plan_weighted, simulate_requests, Catalog, Title, Zipf};

fn arb_catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec((30.0f64..=180.0, 0.1f64..=10.0), 1..=4).prop_map(|specs| {
        Catalog::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (dur, w))| Title {
                    name: format!("t{i}"),
                    duration_minutes: dur,
                    weight: w,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Zipf CDF is a proper distribution and sampling stays in range.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..=64, s in 0.0f64..=2.5, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Plans always fit their budget, and a larger budget never yields a
    /// worse expected delay.
    #[test]
    fn plans_fit_budget_and_are_monotone(catalog in arb_catalog()) {
        let cands = [1.0, 2.0, 4.0, 8.0, 16.0];
        let unconstrained = plan_weighted(&catalog, u64::MAX, &cands).unwrap();
        let tightest = plan_weighted(&catalog, 0, &cands);
        prop_assert!(tightest.is_none() || tightest.unwrap().total_peak == 0);

        let full = unconstrained.total_peak;
        // Iterating budgets downwards: expected delay must be non-decreasing.
        let mut last_delay = 0.0f64;
        for budget in [full, full * 3 / 4, full / 2, full / 4] {
            if let Some(plan) = plan_weighted(&catalog, budget, &cands) {
                prop_assert!(plan.total_peak <= budget);
                prop_assert!(plan.expected_delay + 1e-9 >= last_delay);
                last_delay = plan.expected_delay;
                // Per-title delays come from the candidate menu.
                for d in &plan.delays_minutes {
                    prop_assert!(cands.contains(d));
                }
            }
        }
    }

    /// Request simulation never declines, bounds every wait by that title's
    /// planned delay, and conserves the request count.
    #[test]
    fn requests_never_declined_waits_bounded(
        catalog in arb_catalog(),
        seed in 0u64..1000,
    ) {
        let cands = [2.0, 5.0];
        let plan = plan_weighted(&catalog, u64::MAX, &cands).unwrap();
        let report = simulate_requests(&catalog, &plan, 300.0, 1.0, seed);
        prop_assert_eq!(report.declined, 0);
        prop_assert_eq!(report.per_title.iter().sum::<u64>(), report.served);
        let max_planned = plan.delays_minutes.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(report.max_wait <= max_planned + 1e-9);
    }
}
