//! Scale: the event-driven engine at a million arrivals.
//!
//! Two million-client shapes, both streamed through
//! [`sm_sim::simulate_streaming`] so per-client reports are consumed and
//! dropped as their part-deadlines fire — peak memory is the schedule plus
//! the active-stream heap, never a per-slot array over the horizon:
//!
//! * the Delay Guaranteed grid (one merged client per slot, the §4.1
//!   steady-state server shape);
//! * a flash-crowd workload (Poisson with a ×20 premiere spike), co-slot
//!   arrivals batched into star trees — one full stream per occupied slot,
//!   spike clients riding the batch.
//!
//! `SM_SCALE_ARRIVALS` overrides the arrival count (CI smoke-runs a small
//! N; the default is 10⁶).

use criterion::{criterion_group, criterion_main, Criterion};
use sm_core::{consecutive_slots, MergeForest, MergeTree};
use sm_online::DelayGuaranteedOnline;
use sm_sim::{simulate_streaming, SimConfig};
use sm_workload::{ArrivalProcess, FlashCrowd};
use std::hint::black_box;

fn scale_arrivals() -> usize {
    std::env::var("SM_SCALE_ARRIVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Batches co-slot arrivals into star trees: every occupied slot opens one
/// full stream, and the rest of its batch merges into it with zero-length
/// streams — the classical batching service plan, always feasible.
fn batched_star_forest(slots: &[i64]) -> (MergeForest, Vec<i64>) {
    let mut trees = Vec::new();
    let mut times = Vec::with_capacity(slots.len());
    let mut i = 0usize;
    while i < slots.len() {
        let batch = slots[i..].iter().take_while(|&&s| s == slots[i]).count();
        trees.push(if batch == 1 {
            MergeTree::singleton()
        } else {
            MergeTree::star(batch)
        });
        times.extend(std::iter::repeat_n(slots[i], batch));
        i += batch;
    }
    (
        MergeForest::from_trees(trees).expect("at least one arrival"),
        times,
    )
}

fn bench_scale(c: &mut Criterion) {
    let n = scale_arrivals();
    let media_len = 100u64;
    let mut g = c.benchmark_group("scale");
    g.sample_size(10);

    // Delay Guaranteed grid: n slots, one client each.
    let alg = DelayGuaranteedOnline::new(media_len);
    let forest = alg.forest_after(n);
    let times = consecutive_slots(n);
    g.bench_function(format!("events_dg_L{media_len}_n{n}"), |b| {
        b.iter(|| {
            let mut served = 0usize;
            let summary = simulate_streaming(
                black_box(&forest),
                black_box(&times),
                media_len,
                SimConfig::events(),
                |report| {
                    served += 1;
                    black_box(report.max_buffer);
                },
            )
            .expect("DG plan must execute");
            assert_eq!(served, n);
            black_box(summary.total_units)
        })
    });
    drop((forest, times));

    // Flash crowd: Poisson background, ×20 spike, batched per slot.
    let horizon = (n as f64 * 0.45).max(100.0);
    let mut crowd = FlashCrowd::new(0.5, horizon * 0.4, horizon * 0.01, 20.0, 42);
    let slots: Vec<i64> = crowd
        .generate(horizon)
        .into_iter()
        .map(|t| t.floor() as i64)
        .collect();
    let (forest, times) = batched_star_forest(&slots);
    let clients = times.len();
    g.bench_function(format!("events_flash_crowd_L{media_len}_n{clients}"), |b| {
        b.iter(|| {
            let mut served = 0usize;
            let summary = simulate_streaming(
                black_box(&forest),
                black_box(&times),
                media_len,
                SimConfig::events(),
                |report| {
                    served += 1;
                    black_box(report.min_slack);
                },
            )
            .expect("batched flash-crowd plan must execute");
            assert_eq!(served, clients);
            black_box(summary.bandwidth.peak())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
